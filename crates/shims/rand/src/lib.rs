//! Minimal, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses. The build environment has no access to crates.io, so the
//! workspace vendors this shim and points the `rand` workspace dependency at
//! it.
//!
//! Only the API surface used by `dc-rfidgen` and the tests is provided:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256** generator,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over integer `Range` / `RangeInclusive`,
//!   [`Rng::gen_bool`], and [`Rng::gen`] for a raw `u64`.
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`, which is
//! fine here: generated datasets only need to be *deterministic per seed*,
//! not bit-compatible with any external implementation.

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be sampled uniformly from a range.
pub trait SampleUniform: Copy {
    fn sample_range(rng: &mut impl RngCore, lo: Self, hi_inclusive: Self) -> Self;
}

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Range argument for [`Rng::gen_range`]: half-open or inclusive.
pub trait SampleRange<T> {
    fn bounds(self) -> (T, T);
    fn is_empty_range(&self) -> bool;
}

impl<T: SampleUniform + PartialOrd + Dec> SampleRange<T> for Range<T> {
    fn bounds(self) -> (T, T) {
        (self.start, self.end.dec())
    }
    fn is_empty_range(&self) -> bool {
        self.start >= self.end
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        (*self.start(), *self.end())
    }
    fn is_empty_range(&self) -> bool {
        self.start() > self.end()
    }
}

/// Decrement helper so `a..b` can be turned into the inclusive `[a, b-1]`.
pub trait Dec {
    fn dec(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Dec for $t {
            fn dec(self) -> Self {
                self - 1
            }
        }
        impl SampleUniform for $t {
            fn sample_range(rng: &mut impl RngCore, lo: Self, hi_inclusive: Self) -> Self {
                debug_assert!(lo <= hi_inclusive);
                // Unbiased-enough modulo draw over the span; spans here are
                // tiny relative to 2^64 so modulo bias is negligible for the
                // synthetic-data use case.
                let span = (hi_inclusive as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let draw = rng.next_u64() % (span + 1);
                ((lo as $wide).wrapping_add(draw as $wide)) as $t
            }
        }
    )*};
}

impl_uniform_int! {
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
}

/// The user-facing sampling interface (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform + PartialOrd, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        assert!(!range.is_empty_range(), "gen_range called with empty range");
        let (lo, hi) = range.bounds();
        T::sample_range(self, lo, hi)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 uniform mantissa bits -> [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A raw uniform `u64`.
    fn gen(&mut self) -> u64
    where
        Self: Sized,
    {
        self.next_u64()
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1000)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1000)).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1000)).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3i64..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
        }
        // Degenerate inclusive range.
        assert_eq!(r.gen_range(4i64..=4), 4);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!(0..100).map(|_| r.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| r.gen_bool(1.0)).all(|b| b));
    }
}
