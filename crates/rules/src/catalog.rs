//! The rules table (paper §3, step 2): persistent storage of cleansing
//! rules, grouped per application, ordered by creation time.

use crate::compile::{compile_rule, RuleTemplate};
use crate::template::render_sql_template;
use dc_json::Json;
use dc_relational::error::{Error, Result};
use dc_relational::table::Catalog;
use dc_sqlts::{parse_rule, validate_rule_against_catalog};
use parking_lot::RwLock;
use std::sync::Arc;

/// One stored rule: definition text, compiled template, creation order.
#[derive(Debug, Clone)]
pub struct StoredRule {
    pub id: u64,
    /// Application the rule belongs to; rules are applied per application.
    pub application: String,
    /// The original extended SQL-TS text (the persisted source of truth).
    pub text: String,
    /// Compiled SQL/OLAP template.
    pub template: Arc<RuleTemplate>,
    /// The rendered SQL/OLAP statement (for inspection / the paper's
    /// "SQL/OLAP template is persisted in the rules table").
    pub sql_template: String,
}

/// Serialized form (only the durable fields; templates recompile from text).
#[derive(Debug)]
struct PersistedRule {
    id: u64,
    application: String,
    text: String,
}

#[derive(Debug)]
struct PersistedCatalog {
    next_id: u64,
    rules: Vec<PersistedRule>,
}

impl PersistedCatalog {
    fn to_json(&self) -> Json {
        Json::obj().set("next_id", self.next_id).set(
            "rules",
            Json::Arr(
                self.rules
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .set("id", r.id)
                            .set("application", r.application.as_str())
                            .set("text", r.text.as_str())
                    })
                    .collect(),
            ),
        )
    }

    fn from_json(v: &Json) -> Result<Self> {
        let field_err = |f: &str| Error::Catalog(format!("bad rule catalog JSON: missing '{f}'"));
        let next_id = v
            .get("next_id")
            .and_then(Json::as_u64)
            .ok_or_else(|| field_err("next_id"))?;
        let rules = v
            .get("rules")
            .and_then(Json::as_arr)
            .ok_or_else(|| field_err("rules"))?
            .iter()
            .map(|r| {
                Ok(PersistedRule {
                    id: r
                        .get("id")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| field_err("id"))?,
                    application: r
                        .get("application")
                        .and_then(Json::as_str)
                        .ok_or_else(|| field_err("application"))?
                        .to_string(),
                    text: r
                        .get("text")
                        .and_then(Json::as_str)
                        .ok_or_else(|| field_err("text"))?
                        .to_string(),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(PersistedCatalog { next_id, rules })
    }
}

/// The rule catalog: thread-safe, creation-ordered per application.
#[derive(Debug, Default)]
pub struct RuleCatalog {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    next_id: u64,
    rules: Vec<StoredRule>,
}

impl RuleCatalog {
    pub fn new() -> Self {
        RuleCatalog::default()
    }

    /// Parse, validate (against the data catalog), compile, and store a rule
    /// for an application. Returns the rule id.
    pub fn define_rule(
        &self,
        application: &str,
        text: &str,
        data_catalog: &Catalog,
    ) -> Result<u64> {
        let def = parse_rule(text)?;
        validate_rule_against_catalog(&def, data_catalog)?;
        let template = compile_rule(&def)?;
        let sql_template = render_sql_template(&template, &def.from_table);
        let mut inner = self.inner.write();
        if inner
            .rules
            .iter()
            .any(|r| r.application == application && r.template.def.name == def.name)
        {
            return Err(Error::Catalog(format!(
                "application '{application}' already defines rule '{}'",
                def.name
            )));
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.rules.push(StoredRule {
            id,
            application: application.to_string(),
            text: text.to_string(),
            template: Arc::new(template),
            sql_template,
        });
        Ok(id)
    }

    /// Drop a rule by application and name.
    pub fn drop_rule(&self, application: &str, name: &str) -> Result<()> {
        let mut inner = self.inner.write();
        let before = inner.rules.len();
        inner
            .rules
            .retain(|r| !(r.application == application && r.template.def.name == name));
        if inner.rules.len() == before {
            return Err(Error::Catalog(format!(
                "no rule '{name}' for application '{application}'"
            )));
        }
        Ok(())
    }

    /// All rules for an application, in creation order (paper §4.4: "rules
    /// are ordered by their creation time and applied in this order").
    pub fn rules_for(&self, application: &str) -> Vec<Arc<RuleTemplate>> {
        let inner = self.inner.read();
        let mut rules: Vec<&StoredRule> = inner
            .rules
            .iter()
            .filter(|r| r.application == application)
            .collect();
        rules.sort_by_key(|r| r.id);
        rules.iter().map(|r| Arc::clone(&r.template)).collect()
    }

    /// Stored entries for an application (for inspection).
    pub fn entries_for(&self, application: &str) -> Vec<StoredRule> {
        let inner = self.inner.read();
        let mut rules: Vec<StoredRule> = inner
            .rules
            .iter()
            .filter(|r| r.application == application)
            .cloned()
            .collect();
        rules.sort_by_key(|r| r.id);
        rules
    }

    pub fn applications(&self) -> Vec<String> {
        let inner = self.inner.read();
        let mut apps: Vec<String> = inner.rules.iter().map(|r| r.application.clone()).collect();
        apps.sort_unstable();
        apps.dedup();
        apps
    }

    pub fn len(&self) -> usize {
        self.inner.read().rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize the catalog to JSON (rule texts + ids).
    pub fn to_json(&self) -> String {
        let inner = self.inner.read();
        let persisted = PersistedCatalog {
            next_id: inner.next_id,
            rules: inner
                .rules
                .iter()
                .map(|r| PersistedRule {
                    id: r.id,
                    application: r.application.clone(),
                    text: r.text.clone(),
                })
                .collect(),
        };
        persisted.to_json().pretty()
    }

    /// Restore a catalog from JSON, recompiling every rule against the data
    /// catalog.
    pub fn from_json(json: &str, data_catalog: &Catalog) -> Result<Self> {
        let value = dc_json::parse(json)
            .map_err(|e| Error::Catalog(format!("bad rule catalog JSON: {e}")))?;
        let persisted = PersistedCatalog::from_json(&value)?;
        let mut rules = Vec::with_capacity(persisted.rules.len());
        for p in persisted.rules {
            let def = parse_rule(&p.text)?;
            validate_rule_against_catalog(&def, data_catalog)?;
            let template = compile_rule(&def)?;
            let sql_template = render_sql_template(&template, &def.from_table);
            rules.push(StoredRule {
                id: p.id,
                application: p.application,
                text: p.text,
                template: Arc::new(template),
                sql_template,
            });
        }
        Ok(RuleCatalog {
            inner: RwLock::new(Inner {
                next_id: persisted.next_id,
                rules,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::batch::{schema_ref, Batch};
    use dc_relational::schema::{Field, Schema};
    use dc_relational::table::Table;
    use dc_relational::value::DataType;

    fn data_catalog() -> Catalog {
        let cat = Catalog::new();
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
            Field::new("reader", DataType::Str),
        ]));
        cat.register(Table::new("caser", Batch::empty(schema)));
        cat
    }

    const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
        WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";
    const READER: &str = "DEFINE reader ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
        WHERE B.reader = 'readerX' and B.rtime - A.rtime < 10 mins ACTION DELETE A";

    #[test]
    fn define_and_order() {
        let data = data_catalog();
        let rc = RuleCatalog::new();
        rc.define_rule("app1", DUP, &data).unwrap();
        rc.define_rule("app1", READER, &data).unwrap();
        rc.define_rule("app2", READER, &data).unwrap();
        let rules = rc.rules_for("app1");
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].def.name, "duplicate");
        assert_eq!(rules[1].def.name, "reader");
        assert_eq!(rc.rules_for("app2").len(), 1);
        assert_eq!(rc.applications(), vec!["app1", "app2"]);
    }

    #[test]
    fn duplicate_name_rejected_per_app() {
        let data = data_catalog();
        let rc = RuleCatalog::new();
        rc.define_rule("app1", DUP, &data).unwrap();
        assert!(rc.define_rule("app1", DUP, &data).is_err());
        // ... but allowed for another application.
        rc.define_rule("app2", DUP, &data).unwrap();
    }

    #[test]
    fn invalid_rule_rejected() {
        let data = data_catalog();
        let rc = RuleCatalog::new();
        let bad = "DEFINE x ON nosuch CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
            WHERE A.rtime = B.rtime ACTION DELETE B";
        assert!(rc.define_rule("app1", bad, &data).is_err());
        assert!(rc.is_empty());
    }

    #[test]
    fn drop_rule() {
        let data = data_catalog();
        let rc = RuleCatalog::new();
        rc.define_rule("app1", DUP, &data).unwrap();
        rc.drop_rule("app1", "duplicate").unwrap();
        assert!(rc.rules_for("app1").is_empty());
        assert!(rc.drop_rule("app1", "duplicate").is_err());
    }

    #[test]
    fn json_roundtrip() {
        let data = data_catalog();
        let rc = RuleCatalog::new();
        rc.define_rule("app1", DUP, &data).unwrap();
        rc.define_rule("app1", READER, &data).unwrap();
        let json = rc.to_json();
        let rc2 = RuleCatalog::from_json(&json, &data).unwrap();
        assert_eq!(rc2.len(), 2);
        let rules = rc2.rules_for("app1");
        assert_eq!(rules[0].def.name, "duplicate");
        // Ids keep advancing after restore.
        rc2.define_rule(
            "app1",
            "DEFINE third ON caseR CLUSTER BY epc SEQUENCE BY rtime \
            AS (A, B) WHERE A.biz_loc != B.biz_loc ACTION DELETE B",
            &data,
        )
        .unwrap();
        assert_eq!(rc2.rules_for("app1").len(), 3);
    }

    #[test]
    fn sql_template_stored() {
        let data = data_catalog();
        let rc = RuleCatalog::new();
        rc.define_rule("app1", DUP, &data).unwrap();
        let entries = rc.entries_for("app1");
        assert!(entries[0].sql_template.contains("partition by epc"));
    }
}
