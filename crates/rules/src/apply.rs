//! Building Φ plans: applying compiled rules to an input plan.
//!
//! `Φ_C(input)` becomes `Window → Filter/Project` on top of `input`; rule
//! chains compose left-to-right in creation order (paper §4.4). All rules of
//! an application share cluster/sequence keys, so consecutive windows sort
//! identically and the optimizer's order sharing leaves only the first sort
//! standing — the effect measured in the paper's Figure 9.
//!
//! Rules are compiled against the reads table's bare column names. When the
//! rewrite engine runs cleansing over an *aliased* scan — or over the reads
//! table already joined with dimension tables (paper §5.2's "push joins
//! before cleansing") — the reads columns are qualified (`c.epc`). The
//! `qualifier` parameter re-targets the compiled template to those columns
//! while leaving dimension columns untouched.

use crate::compile::RuleTemplate;
use dc_relational::error::{Error, Result};
use dc_relational::exec::Executor;
use dc_relational::expr::{ColumnRef, Expr};
use dc_relational::physical::ExecOptions;
use dc_relational::plan::LogicalPlan;
use dc_relational::schema::Schema;
use dc_relational::sort::SortKey;
use dc_relational::table::Catalog;
use dc_relational::value::{DataType, Value};
use dc_relational::window::WindowExpr;
use dc_sqlts::Action;

/// Requalify every unqualified, non-internal column reference in `e`.
fn requalify(e: &Expr, qualifier: Option<&str>) -> Expr {
    let Some(q) = qualifier else {
        return e.clone();
    };
    let q = q.to_string();
    e.transform(&|node| match node {
        Expr::Column(c) if c.qualifier.is_none() && !c.name.starts_with("__") => {
            Expr::Column(ColumnRef::qualified(q.clone(), c.name))
        }
        other => other,
    })
}

fn flat(qualifier: Option<&str>, name: &str) -> String {
    match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    }
}

/// Apply one compiled rule on top of `input`.
///
/// `qualifier` names the alias under which the reads columns appear in
/// `input`'s schema (`None` when they are unqualified). The output schema
/// equals the input schema plus any new columns introduced by MODIFY
/// (created on the fly, default-initialized — paper §4.2); window internals
/// (`__*`) are projected away.
pub fn apply_rule_qualified(
    input: LogicalPlan,
    template: &RuleTemplate,
    catalog: &Catalog,
    qualifier: Option<&str>,
) -> Result<LogicalPlan> {
    let in_schema = input.schema(catalog)?;

    let partition_by: Vec<Expr> = template
        .partition_by
        .iter()
        .map(|e| requalify(e, qualifier))
        .collect();
    let order_by: Vec<SortKey> = template
        .order_by
        .iter()
        .map(|k| SortKey {
            expr: requalify(&k.expr, qualifier),
            ascending: k.ascending,
            nulls_first: k.nulls_first,
        })
        .collect();
    let windows: Vec<WindowExpr> = template
        .windows
        .iter()
        .map(|w| WindowExpr {
            func: w.func,
            arg: w.arg.as_ref().map(|a| requalify(a, qualifier)),
            frame: w.frame.clone(),
            alias: w.alias.clone(),
        })
        .collect();
    let cond = requalify(&template.condition, qualifier);

    let windowed = input.window(partition_by, order_by, windows);

    match &template.action {
        Action::Keep(_) => {
            let filtered = windowed.filter(cond);
            Ok(project_original(filtered, &in_schema, &[]))
        }
        Action::Delete(_) => {
            // Keep rows where the condition is NOT TRUE (false or NULL) —
            // the paper's "negated for DELETE with proper handling of the
            // null semantics".
            let keep = Expr::Case {
                branches: vec![(cond, Expr::lit(false))],
                else_expr: Some(Box::new(Expr::lit(true))),
            };
            let filtered = windowed.filter(keep);
            Ok(project_original(filtered, &in_schema, &[]))
        }
        Action::Modify { assignments, .. } => {
            // Each assigned column becomes CASE WHEN cond THEN value ELSE old.
            // A column that does not exist is created, defaulting to the
            // zero value of the assignment's type elsewhere.
            let mut new_cols: Vec<(String, Expr)> = Vec::new();
            let mut overrides: Vec<(String, Expr)> = Vec::new();
            for (col, value_expr) in assignments {
                // MODIFY expressions reference the target; map T.col to the
                // (possibly qualified) input column.
                let target = template.def.target().to_string();
                let value_expr = value_expr.transform(&|e| match e {
                    Expr::Column(c) if c.qualifier.as_deref() == Some(target.as_str()) => {
                        Expr::Column(ColumnRef::new(flat(qualifier, &c.name)))
                    }
                    other => other,
                });
                let exists = in_schema.index_of(qualifier, col).is_ok();
                let else_branch = if exists {
                    Expr::Column(ColumnRef::new(flat(qualifier, col)))
                } else {
                    default_for(&value_expr, &in_schema)?
                };
                let case = Expr::Case {
                    branches: vec![(cond.clone(), value_expr)],
                    else_expr: Some(Box::new(else_branch)),
                };
                if exists {
                    overrides.push((col.clone(), case));
                } else {
                    new_cols.push((flat(qualifier, col), case));
                }
            }
            let mut exprs: Vec<(Expr, String)> = Vec::new();
            for f in in_schema.fields() {
                let is_target_col = match qualifier {
                    Some(q) => f.qualifier.as_deref() == Some(q),
                    None => f.qualifier.is_none(),
                };
                let over = overrides
                    .iter()
                    .find(|(c, _)| is_target_col && *c == f.name);
                match over {
                    Some((_, e)) => exprs.push((e.clone(), f.qualified_name())),
                    None => exprs.push((
                        Expr::Column(ColumnRef {
                            qualifier: f.qualifier.clone(),
                            name: f.name.clone(),
                        }),
                        f.qualified_name(),
                    )),
                }
            }
            for (c, e) in new_cols {
                exprs.push((e, c));
            }
            Ok(windowed.project(exprs))
        }
    }
}

/// [`apply_rule_qualified`] with unqualified reads columns.
pub fn apply_rule(
    input: LogicalPlan,
    template: &RuleTemplate,
    catalog: &Catalog,
) -> Result<LogicalPlan> {
    apply_rule_qualified(input, template, catalog, None)
}

/// Project back to the original schema's columns (dropping `__*` internals),
/// appending `extra` named columns.
fn project_original(plan: LogicalPlan, schema: &Schema, extra: &[(Expr, String)]) -> LogicalPlan {
    let mut exprs: Vec<(Expr, String)> = schema
        .fields()
        .iter()
        .map(|f| {
            (
                Expr::Column(ColumnRef {
                    qualifier: f.qualifier.clone(),
                    name: f.name.clone(),
                }),
                f.qualified_name(),
            )
        })
        .collect();
    exprs.extend(extra.iter().cloned());
    plan.project(exprs)
}

/// The default ("zero") value for a newly created MODIFY column, by the
/// assignment expression's type.
fn default_for(value_expr: &Expr, schema: &Schema) -> Result<Expr> {
    // For expressions referencing internals we cannot type; fall back to Int.
    let dt = value_expr.data_type(schema).unwrap_or(DataType::Int);
    Ok(match dt {
        DataType::Int => Expr::lit(0i64),
        DataType::Double => Expr::lit(0.0f64),
        DataType::Bool => Expr::lit(false),
        DataType::Str => Expr::Literal(Value::Null),
    })
}

/// Build `Φ_{Cn}(…Φ_{C1}(input))` for a chain of compiled rules, applied in
/// slice order (the caller is responsible for creation-time ordering).
pub fn cleansing_plan(
    input: LogicalPlan,
    templates: &[&RuleTemplate],
    catalog: &Catalog,
) -> Result<LogicalPlan> {
    cleansing_plan_qualified(input, templates, catalog, None)
}

/// [`cleansing_plan`] over reads columns qualified by `qualifier`.
pub fn cleansing_plan_qualified(
    input: LogicalPlan,
    templates: &[&RuleTemplate],
    catalog: &Catalog,
    qualifier: Option<&str>,
) -> Result<LogicalPlan> {
    let mut plan = input;
    for t in templates {
        plan = apply_rule_qualified(plan, t, catalog, qualifier)?;
    }
    Ok(plan)
}

/// Build and *execute* `Φ_{Cn}(…Φ_{C1}(input))`, materializing the cleansed
/// relation. `options` controls partition-parallel window evaluation —
/// results and work counters are identical at any parallelism, so callers
/// may freely raise it. Returns the batch plus the executor's stats.
pub fn materialize_phi(
    input: LogicalPlan,
    templates: &[&RuleTemplate],
    catalog: &Catalog,
    options: ExecOptions,
) -> Result<(dc_relational::batch::Batch, dc_relational::exec::ExecStats)> {
    let phi = cleansing_plan(input, templates, catalog)?;
    let mut ex = Executor::with_options(catalog, options);
    let batch = ex.execute(&phi)?;
    Ok((batch, ex.stats))
}

/// Validate that a chain of rules is applicable together: same ON table and
/// identical cluster/sequence keys and FROM input (paper §4.4 / §5.4).
pub fn validate_chain(templates: &[&RuleTemplate]) -> Result<()> {
    let Some(first) = templates.first() else {
        return Ok(());
    };
    for t in templates.iter().skip(1) {
        if t.def.on_table != first.def.on_table {
            return Err(Error::Plan(format!(
                "rules '{}' and '{}' are defined ON different tables",
                first.def.name, t.def.name
            )));
        }
        if t.def.cluster_by != first.def.cluster_by || t.def.sequence_by != first.def.sequence_by {
            return Err(Error::Plan(format!(
                "rules '{}' and '{}' use different cluster/sequence keys",
                first.def.name, t.def.name
            )));
        }
        if t.def.from_table != first.def.from_table {
            return Err(Error::Plan(format!(
                "rules '{}' and '{}' read FROM different inputs — an application's \
                 rules must share one input (paper §4.4)",
                first.def.name, t.def.name
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_rule;
    use dc_relational::batch::{schema_ref, Batch};
    use dc_relational::exec::Executor;
    use dc_relational::optimizer::optimize_default;
    use dc_relational::schema::Field;
    use dc_relational::table::Table;
    use dc_relational::value::Value;
    use dc_sqlts::parse_rule;

    /// reads(epc, rtime, biz_loc, reader)
    fn catalog(rows: &[(&str, i64, &str, &str)]) -> Catalog {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
            Field::new("reader", DataType::Str),
        ]));
        let data: Vec<Vec<Value>> = rows
            .iter()
            .map(|(e, t, l, r)| {
                vec![
                    Value::str(*e),
                    Value::Int(*t),
                    Value::str(*l),
                    Value::str(*r),
                ]
            })
            .collect();
        let cat = Catalog::new();
        cat.register(Table::new("r", Batch::from_rows(schema, &data).unwrap()));
        cat
    }

    fn clean(cat: &Catalog, rule_texts: &[&str]) -> Batch {
        let templates: Vec<RuleTemplate> = rule_texts
            .iter()
            .map(|t| compile_rule(&parse_rule(t).unwrap()).unwrap())
            .collect();
        let refs: Vec<&RuleTemplate> = templates.iter().collect();
        validate_chain(&refs).unwrap();
        let plan = cleansing_plan(LogicalPlan::scan("r"), &refs, cat).unwrap();
        let plan = optimize_default(plan, cat);
        Executor::new(cat).execute(&plan).unwrap()
    }

    const DUP: &str = "DEFINE duplicate ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
        WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";
    const CYCLE: &str = "DEFINE cycle ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B, C) \
        WHERE A.biz_loc = C.biz_loc and A.biz_loc != B.biz_loc ACTION DELETE B";
    const READER: &str = "DEFINE reader ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
        WHERE B.reader = 'readerX' and B.rtime - A.rtime < 5 mins ACTION DELETE A";

    #[test]
    fn duplicate_rule_keeps_first_read() {
        let cat = catalog(&[
            ("e1", 0, "x", "r1"),
            ("e1", 100, "x", "r1"),  // dup of t=0 (within 300s)
            ("e1", 200, "x", "r1"),  // dup of t=100
            ("e1", 1000, "x", "r1"), // not a dup (>300s gap)
            ("e2", 50, "y", "r1"),
        ]);
        let out = clean(&cat, &[DUP]);
        let mut times: Vec<i64> = (0..out.num_rows())
            .filter(|&i| out.row(i)[0] == Value::str("e1"))
            .map(|i| out.row(i)[1].as_int().unwrap())
            .collect();
        times.sort_unstable();
        assert_eq!(times, vec![0, 1000]);
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn cycle_rule_collapses_xyxyxy() {
        // [X Y X Y X Y] -> [X Y] (first X, last Y), paper Example 4.
        let cat = catalog(&[
            ("e1", 10, "X", "r"),
            ("e1", 20, "Y", "r"),
            ("e1", 30, "X", "r"),
            ("e1", 40, "Y", "r"),
            ("e1", 50, "X", "r"),
            ("e1", 60, "Y", "r"),
        ]);
        let out = clean(&cat, &[CYCLE]);
        let rows = out.sorted_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], Value::Int(10));
        assert_eq!(rows[0][2], Value::str("X"));
        assert_eq!(rows[1][1], Value::Int(60));
        assert_eq!(rows[1][2], Value::str("Y"));
    }

    #[test]
    fn reader_rule_deletes_reads_before_readerx() {
        // Paper Fig. 3(a): r1 removed because readerX reads within 5 min after.
        let cat = catalog(&[
            ("e1", 1000, "l1", "readerY"),
            ("e1", 1240, "l2", "readerX"), // 4 min later
        ]);
        let out = clean(&cat, &[READER]);
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[3], Value::str("readerX"));
    }

    #[test]
    fn reader_rule_keeps_when_gap_too_large() {
        let cat = catalog(&[
            ("e1", 1000, "l1", "readerY"),
            ("e1", 1400, "l2", "readerX"), // 400s > 300s
        ]);
        let out = clean(&cat, &[READER]);
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn modify_rewrites_location() {
        // Paper Example 3 (replacing rule).
        let replacing = "DEFINE replacing ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
            WHERE A.biz_loc = 'loc2' and B.biz_loc = 'locA' and B.rtime - A.rtime < 20 mins \
            ACTION MODIFY A.biz_loc = 'loc1'";
        let cat = catalog(&[
            ("e1", 0, "loc2", "r"), // cross read: becomes loc1
            ("e1", 600, "locA", "r"),
            ("e2", 0, "loc2", "r"), // no locA follow-up: stays loc2
            ("e2", 600, "locB", "r"),
        ]);
        let out = clean(&cat, &[replacing]);
        assert_eq!(out.num_rows(), 4);
        let locs: Vec<(Value, Value)> = out
            .sorted_rows()
            .into_iter()
            .map(|r| (r[0].clone(), r[2].clone()))
            .collect();
        assert!(locs.contains(&(Value::str("e1"), Value::str("loc1"))));
        assert!(locs.contains(&(Value::str("e2"), Value::str("loc2"))));
    }

    #[test]
    fn modify_creates_column_on_the_fly() {
        let rule = "DEFINE flag ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
            WHERE A.biz_loc = B.biz_loc ACTION MODIFY A.flagged = 1";
        let cat = catalog(&[("e1", 0, "x", "r"), ("e1", 10, "x", "r")]);
        let out = clean(&cat, &[rule]);
        let flagged = out.column_by_name("flagged").unwrap();
        // First read has a duplicate after it at the same loc -> flagged.
        let by_time: Vec<(i64, i64)> = (0..2)
            .map(|i| (out.row(i)[1].as_int().unwrap(), flagged.int_at(i).unwrap()))
            .collect();
        assert!(by_time.contains(&(0, 1)));
        assert!(by_time.contains(&(10, 0))); // default 0, not NULL
    }

    #[test]
    fn rule_order_matters_cycle_then_dup() {
        // Paper §4.4: [X Y X] cleaned by cycle-then-duplicate gives [X];
        // duplicate-then-cycle gives [X X] (no time constraint on dup here).
        let dup_nolimit = "DEFINE dup ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
            WHERE A.biz_loc = B.biz_loc ACTION DELETE B";
        let rows = [
            ("e1", 0, "X", "r"),
            ("e1", 10, "Y", "r"),
            ("e1", 20, "X", "r"),
        ];

        let cat = catalog(&rows);
        let out = clean(&cat, &[CYCLE, dup_nolimit]);
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[1], Value::Int(0));

        let cat = catalog(&rows);
        let out = clean(&cat, &[dup_nolimit, CYCLE]);
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn chained_rules_share_one_sort() {
        let cat = catalog(&[("e1", 0, "x", "r"), ("e1", 10, "x", "r")]);
        let t1 = compile_rule(&parse_rule(DUP).unwrap()).unwrap();
        let t2 = compile_rule(&parse_rule(CYCLE).unwrap()).unwrap();
        let plan = cleansing_plan(LogicalPlan::scan("r"), &[&t1, &t2], &cat).unwrap();
        let plan = optimize_default(plan, &cat);
        let mut ex = Executor::new(&cat);
        ex.execute(&plan).unwrap();
        assert_eq!(ex.stats.sorts_performed, 1, "plan:\n{plan}");
        // The two rows are already in (epc, rtime) order, so the one shared
        // sort detects a single run and elides the merge entirely — an
        // elided sort still counts as performed (order sharing is about
        // plan shape, elision about data shape).
        assert_eq!(ex.stats.sorts_elided, 1);
        assert_eq!(ex.stats.merge_runs_used, 0);
    }

    #[test]
    fn chain_validation() {
        let t1 = compile_rule(&parse_rule(DUP).unwrap()).unwrap();
        let other = "DEFINE o ON R CLUSTER BY reader SEQUENCE BY rtime AS (A, B) \
            WHERE A.biz_loc = B.biz_loc ACTION DELETE B";
        let t2 = compile_rule(&parse_rule(other).unwrap()).unwrap();
        assert!(validate_chain(&[&t1, &t2]).is_err());
        assert!(validate_chain(&[&t1]).is_ok());
        assert!(validate_chain(&[]).is_ok());
    }

    #[test]
    fn empty_input_stays_empty() {
        let cat = catalog(&[]);
        let out = clean(&cat, &[DUP, CYCLE, READER]);
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn keep_action_via_flag_pipeline() {
        // MODIFY sets a flag, then a KEEP rule retains flagged rows plus all
        // rows of another kind — exercising the r1 -> r2 pipeline shape.
        let flag = "DEFINE f ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
            WHERE A.biz_loc = B.biz_loc ACTION MODIFY A.keepme = 1";
        let keep = "DEFINE k ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
            WHERE A.keepme = 1 or B.keepme = 1 ACTION KEEP A";
        let cat = catalog(&[
            ("e1", 0, "x", "r"),
            ("e1", 10, "x", "r"), // same loc as prev: t=0 flagged
            ("e1", 20, "y", "r"), // not flagged, nothing flagged after -> dropped
        ]);
        let out = clean(&cat, &[flag, keep]);
        let times: Vec<i64> = out
            .sorted_rows()
            .iter()
            .map(|r| r[1].as_int().unwrap())
            .collect();
        assert_eq!(times, vec![0]);
    }

    #[test]
    fn qualified_cleansing_over_aliased_scan() {
        let cat = catalog(&[
            ("e1", 0, "x", "r1"),
            ("e1", 100, "x", "r1"),
            ("e2", 50, "y", "r1"),
        ]);
        let t = compile_rule(&parse_rule(DUP).unwrap()).unwrap();
        let plan =
            apply_rule_qualified(LogicalPlan::scan_as("r", "c"), &t, &cat, Some("c")).unwrap();
        let plan = optimize_default(plan, &cat);
        let out = Executor::new(&cat).execute(&plan).unwrap();
        assert_eq!(out.num_rows(), 2);
        // Output keeps the alias-qualified schema.
        assert!(out.column_by_name("c.epc").is_ok());
    }

    #[test]
    fn qualified_cleansing_over_joined_input() {
        // Join reads with a dimension that also has an `epc` column, then
        // cleanse: the qualifier disambiguates.
        let cat = catalog(&[
            ("e1", 0, "x", "r1"),
            ("e1", 100, "x", "r1"),
            ("e2", 50, "y", "r1"),
        ]);
        let dim_schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("lot", DataType::Int),
        ]));
        let dim = Batch::from_rows(
            dim_schema,
            &[
                vec![Value::str("e1"), Value::Int(7)],
                vec![Value::str("e2"), Value::Int(8)],
            ],
        )
        .unwrap();
        cat.register(Table::new("epc_info", dim));
        let joined = LogicalPlan::scan_as("r", "c").join(
            LogicalPlan::scan_as("epc_info", "i"),
            vec![Expr::col("c.epc")],
            vec![Expr::col("i.epc")],
            dc_relational::join::JoinType::Inner,
        );
        let t = compile_rule(&parse_rule(DUP).unwrap()).unwrap();
        let plan = apply_rule_qualified(joined, &t, &cat, Some("c")).unwrap();
        let out = Executor::new(&cat)
            .execute(&optimize_default(plan, &cat))
            .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert!(out.column_by_name("i.lot").is_ok());
    }

    #[test]
    fn qualified_modify_keeps_dimension_columns() {
        let cat = catalog(&[("e1", 0, "loc2", "r"), ("e1", 600, "locA", "r")]);
        let replacing = "DEFINE replacing ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
            WHERE A.biz_loc = 'loc2' and B.biz_loc = 'locA' and B.rtime - A.rtime < 20 mins \
            ACTION MODIFY A.biz_loc = 'loc1'";
        let t = compile_rule(&parse_rule(replacing).unwrap()).unwrap();
        let plan =
            apply_rule_qualified(LogicalPlan::scan_as("r", "c"), &t, &cat, Some("c")).unwrap();
        let out = Executor::new(&cat)
            .execute(&optimize_default(plan, &cat))
            .unwrap();
        let locs: Vec<Value> = out.column_by_name("c.biz_loc").unwrap().iter().collect();
        assert!(locs.contains(&Value::str("loc1")));
        assert!(!locs.contains(&Value::str("loc2")));
    }
}
