//! Rendering compiled rules as SQL/OLAP text.
//!
//! The paper's rule engine "generates a SQL/OLAP template for each rule"
//! (§3 step 1) and persists it in the rules table. Our engine executes the
//! structured [`RuleTemplate`] directly, but renders the equivalent SQL text
//! for persistence, EXPLAIN output, and documentation — it is exactly the
//! statement a SQL99 DBMS would run for Φ_C.

use crate::compile::RuleTemplate;
use dc_sqlts::Action;
use std::fmt::Write as _;

/// Render the SQL/OLAP statement implementing `Φ_C(<input>)`.
///
/// `input_sql` is the FROM source (a table name or a parenthesized subquery).
pub fn render_sql_template(template: &RuleTemplate, input_sql: &str) -> String {
    let mut sql = String::new();
    let over_clause = |frame: &dc_relational::window::Frame| {
        format!(
            "over (partition by {} order by {} asc {})",
            template.def.cluster_by, template.def.sequence_by, frame
        )
        .to_ascii_lowercase()
    };

    // Inner block: input columns plus the window scalar aggregates.
    let _ = write!(sql, "with __w as (\n  select t.*");
    for w in &template.windows {
        let arg = match &w.arg {
            Some(a) => a.to_string(),
            None => "*".to_string(),
        };
        let _ = write!(
            sql,
            ",\n    {}({}) {} as {}",
            w.func,
            arg,
            over_clause(&w.frame),
            w.alias
        );
    }
    let _ = write!(sql, "\n  from {input_sql} t\n)\n");

    // Outer block: apply the action.
    match &template.action {
        Action::Keep(_) => {
            let _ = write!(sql, "select * from __w\nwhere {}", template.condition);
        }
        Action::Delete(_) => {
            let _ = write!(
                sql,
                "select * from __w\nwhere case when {} then false else true end",
                template.condition
            );
        }
        Action::Modify {
            assignments,
            target,
        } => {
            let _ = write!(sql, "select *");
            for (col, val) in assignments {
                let _ = write!(
                    sql,
                    ",\n  case when {} then {} else {} end as {}",
                    template.condition, val, col, col
                );
                let _ = target;
            }
            let _ = write!(sql, "\nfrom __w");
        }
    }
    sql
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_rule;
    use dc_sqlts::parse_rule;

    #[test]
    fn duplicate_template_text() {
        let t = compile_rule(
            &parse_rule(
                "DEFINE duplicate ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
                 WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B",
            )
            .unwrap(),
        )
        .unwrap();
        let sql = render_sql_template(&t, "caser");
        assert!(sql.contains("partition by epc"));
        assert!(sql.contains("order by rtime"));
        assert!(sql.contains("rows between 1 preceding and 1 preceding"));
        assert!(sql.contains("from caser"));
        assert!(sql.contains("case when"));
    }

    #[test]
    fn reader_template_has_range_window() {
        let t = compile_rule(
            &parse_rule(
                "DEFINE reader ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
                 WHERE B.reader = 'readerX' and B.rtime - A.rtime < 5 mins ACTION DELETE A",
            )
            .unwrap(),
        )
        .unwrap();
        let sql = render_sql_template(&t, "caser");
        assert!(sql.contains("range between 1 following and 299 following"));
    }

    #[test]
    fn modify_template_emits_case_projection() {
        let t = compile_rule(
            &parse_rule(
                "DEFINE rep ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
                 WHERE A.biz_loc = 'loc2' and B.biz_loc = 'locA' \
                 ACTION MODIFY A.biz_loc = 'loc1'",
            )
            .unwrap(),
        )
        .unwrap();
        let sql = render_sql_template(&t, "caser");
        assert!(sql.contains("end as biz_loc"));
    }
}
