//! Compilation of extended SQL-TS rules into SQL/OLAP templates (paper §4.2).
//!
//! The conversion follows the paper exactly:
//!
//! * A **singleton context reference** at relative pattern offset *d* from the
//!   target becomes, per referenced column, one scalar aggregate over a
//!   one-row window: `max(col) OVER (ROWS BETWEEN d PRECEDING AND d
//!   PRECEDING)` (or FOLLOWING). Border rows get NULL, which the SQL
//!   three-valued condition handles.
//! * A **set context reference** (`*B`) becomes a window over the rows before
//!   or after the target. Sequence-key conjuncts linking the set to the
//!   target (`B.rtime - A.rtime < t`) are folded into RANGE frame bounds
//!   (the paper's "we construct the window by exploiting the constraint on
//!   the sequence key"); each maximal condition subtree referencing only the
//!   set reference becomes `max(CASE WHEN <subtree> THEN 1 ELSE 0 END)` —
//!   the existential semantics of SQL-TS set conditions.
//! * The rewritten condition then drives the action: `KEEP` filters on it,
//!   `DELETE` filters on its Kleene negation (NULL ⇒ keep), and `MODIFY`
//!   becomes CASE expressions in a projection.

use dc_relational::constraint::{normalize_conjunct, CmpOp, Normalized};
use dc_relational::error::{Error, Result};
use dc_relational::expr::{conjoin, split_conjuncts, ColumnRef, Expr};
use dc_relational::sort::SortKey;
use dc_relational::window::{Frame, FrameBound, WindowExpr, WindowFuncKind};
use dc_sqlts::{validate_rule, Action, RuleDef};
use std::collections::HashMap;

/// A compiled rule: the SQL/OLAP template the rewrite engine plugs into
/// queries at rewrite time.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleTemplate {
    /// The original rule definition (kept for the rewrite engine's
    /// correlation analysis and for persistence).
    pub def: RuleDef,
    /// `PARTITION BY` — the cluster key.
    pub partition_by: Vec<Expr>,
    /// `ORDER BY` — the sequence key, ascending.
    pub order_by: Vec<SortKey>,
    /// Scalar aggregates over windows, one per context column / existential
    /// subcondition. Aliases are `__`-prefixed internals.
    pub windows: Vec<WindowExpr>,
    /// The rule condition rewritten over (input columns + window aliases),
    /// evaluated per target row.
    pub condition: Expr,
    /// The action (from the definition).
    pub action: Action,
}

/// Compile a validated rule definition into its SQL/OLAP template.
pub fn compile_rule(def: &RuleDef) -> Result<RuleTemplate> {
    validate_rule(def)?;
    let target = def.target().to_string();
    let skey = def.sequence_by.clone();

    // Relative offsets of singleton references (positions counted among
    // singletons only — set references sit outside the adjacency chain).
    let singletons: Vec<&str> = def
        .pattern
        .refs
        .iter()
        .filter(|r| !r.is_set)
        .map(|r| r.name.as_str())
        .collect();
    let target_idx = singletons
        .iter()
        .position(|s| *s == target)
        .ok_or_else(|| Error::Internal("target must be a singleton".into()))?;
    let mut singleton_offset: HashMap<String, i64> = HashMap::new();
    for (i, s) in singletons.iter().enumerate() {
        singleton_offset.insert((*s).to_string(), i as i64 - target_idx as i64);
    }

    // Set references: before (pattern start) or after (pattern end).
    let mut set_before: HashMap<String, bool> = HashMap::new();
    let n = def.pattern.refs.len();
    for (i, r) in def.pattern.refs.iter().enumerate() {
        if r.is_set {
            set_before.insert(r.name.clone(), i == 0);
        }
        let _ = n;
    }

    let mut ctx = CompileCtx {
        target: target.clone(),
        skey: skey.clone(),
        singleton_offset,
        set_before,
        frames: HashMap::new(),
        windows: Vec::new(),
        window_ids: HashMap::new(),
    };

    // 1. Extract top-level sequence-key conjuncts between each set reference
    //    and the target; they become frame bounds.
    let conjuncts = split_conjuncts(&def.condition);
    let mut frames: HashMap<String, (Option<i64>, Option<i64>)> = HashMap::new(); // name -> (lo_extra, hi_extra) offsets vs skey
    let mut remaining: Vec<Expr> = Vec::new();
    for c in &conjuncts {
        if let Some(set_name) = ctx.frame_conjunct_target(c) {
            let entry = frames.entry(set_name.clone()).or_insert((None, None));
            ctx.apply_frame_conjunct(c, &set_name, entry)?;
        } else {
            remaining.push(c.clone());
        }
    }
    ctx.frames = frames;

    // 2. Rewrite the remaining condition tree.
    let rebuilt = conjoin(remaining).unwrap_or(Expr::lit(true));
    let mut used_sets: Vec<String> = Vec::new();
    let condition = ctx.rewrite(&rebuilt, &mut used_sets)?;

    // 3. Any set reference constrained only through its frame still needs an
    //    existence test (`∃ row in window`).
    let mut condition = condition;
    for set_name in ctx.set_before.keys().cloned().collect::<Vec<_>>() {
        if !used_sets.contains(&set_name) && ctx.frames.contains_key(&set_name) {
            let alias = ctx.alias_for(&set_name, "__exists");
            let frame = ctx.frame_for(&set_name)?;
            ctx.windows.push(WindowExpr {
                func: WindowFuncKind::Count,
                arg: None,
                frame,
                alias: alias.clone(),
            });
            condition = condition.and(Expr::col(alias).gt_eq(Expr::lit(1i64)));
        }
    }

    Ok(RuleTemplate {
        def: def.clone(),
        partition_by: vec![Expr::col(def.cluster_by.clone())],
        order_by: vec![SortKey::asc(Expr::col(def.sequence_by.clone()))],
        windows: ctx.windows,
        condition,
        action: def.action.clone(),
    })
}

struct CompileCtx {
    target: String,
    skey: String,
    singleton_offset: HashMap<String, i64>,
    set_before: HashMap<String, bool>,
    frames: HashMap<String, (Option<i64>, Option<i64>)>,
    windows: Vec<WindowExpr>,
    /// (ref, kind/column) -> alias, to deduplicate window expressions.
    window_ids: HashMap<(String, String), String>,
}

impl CompileCtx {
    fn default_frames() -> (Option<i64>, Option<i64>) {
        (None, None)
    }

    /// If `conjunct` is a sequence-key constraint between a *set* reference
    /// and the target, return the set reference's name.
    fn frame_conjunct_target(&self, conjunct: &Expr) -> Option<String> {
        let Some(Normalized::Diff(d)) = normalize_conjunct(conjunct) else {
            return None;
        };
        for d in [d.clone(), d.swapped()] {
            let xq = d.x.qualifier.as_deref()?;
            let yq = d.y.qualifier.as_deref()?;
            if self.set_before.contains_key(xq)
                && yq == self.target
                && d.x.name == self.skey
                && d.y.name == self.skey
            {
                return Some(xq.to_string());
            }
        }
        None
    }

    /// Fold a sequence-key conjunct into the (lo, hi) extra bounds of a set
    /// reference's frame. Bounds are expressed as offsets of `X.skey`
    /// relative to `T.skey` (inclusive).
    fn apply_frame_conjunct(
        &self,
        conjunct: &Expr,
        set_name: &str,
        entry: &mut (Option<i64>, Option<i64>),
    ) -> Result<()> {
        let Some(Normalized::Diff(d)) = normalize_conjunct(conjunct) else {
            return Err(Error::Internal("frame conjunct vanished".into()));
        };
        // Put the set reference on the left.
        let d = if d.x.qualifier.as_deref() == Some(set_name) {
            d
        } else {
            d.swapped()
        };
        // X.skey OP T.skey + c
        match d.op {
            CmpOp::Lt => tighten_upper(entry, d.offset - 1),
            CmpOp::LtEq => tighten_upper(entry, d.offset),
            CmpOp::Gt => tighten_lower(entry, d.offset + 1),
            CmpOp::GtEq => tighten_lower(entry, d.offset),
            CmpOp::Eq => {
                tighten_lower(entry, d.offset);
                tighten_upper(entry, d.offset);
            }
            CmpOp::NotEq => {
                return Err(Error::Plan(format!(
                    "!= sequence-key constraints on set reference '{set_name}' are unsupported"
                )))
            }
        }
        Ok(())
    }

    /// The RANGE frame for a set reference, combining the implied position
    /// (strictly before / strictly after the target) with extracted bounds.
    fn frame_for(&self, set_name: &str) -> Result<Frame> {
        let before = *self
            .set_before
            .get(set_name)
            .ok_or_else(|| Error::Internal(format!("unknown set ref {set_name}")))?;
        let (lo, hi) = self
            .frames
            .get(set_name)
            .copied()
            .unwrap_or_else(Self::default_frames);
        // Implied: strictly after (>= +1) or strictly before (<= -1) in
        // sequence-key units (granularity 1; the paper's "1 microsec").
        let (lo, hi) = if before {
            (lo, Some(hi.unwrap_or(-1).min(-1)))
        } else {
            (Some(lo.unwrap_or(1).max(1)), hi)
        };
        let bound = |v: Option<i64>, is_start: bool| match v {
            None if is_start => FrameBound::UnboundedPreceding,
            None => FrameBound::UnboundedFollowing,
            Some(v) if v < 0 => FrameBound::Preceding(-v),
            Some(v) => FrameBound::Following(v),
        };
        let start = bound(lo, true);
        let end = bound(hi, false);
        Ok(Frame::range(start, end))
    }

    fn alias_for(&mut self, ref_name: &str, suffix: &str) -> String {
        let base = format!("__{ref_name}{suffix}");
        let mut alias = base.clone();
        let mut k = 1;
        while self.windows.iter().any(|w| w.alias == alias) {
            alias = format!("{base}{k}");
            k += 1;
        }
        alias
    }

    /// Which pattern references does this subtree mention?
    fn refs_of(expr: &Expr) -> Vec<String> {
        let mut cols = Vec::new();
        expr.referenced_columns(&mut cols);
        let mut refs: Vec<String> = cols.iter().filter_map(|c| c.qualifier.clone()).collect();
        refs.sort_unstable();
        refs.dedup();
        refs
    }

    /// Is this node boolean-valued (a predicate)?
    fn is_boolean(expr: &Expr) -> bool {
        matches!(
            expr,
            Expr::Binary { op, .. } if op.is_comparison() || matches!(op, dc_relational::expr::BinaryOp::And | dc_relational::expr::BinaryOp::Or)
        ) || matches!(
            expr,
            Expr::Not(_) | Expr::IsNull { .. } | Expr::InList { .. } | Expr::InSet { .. }
        )
    }

    /// Lower `count(inner) CMP k` (the §4.3 count() extension) when `inner`
    /// references exactly one set reference: the count of qualifying rows in
    /// the set's window, compared against the threshold. Returns `None` when
    /// the expression is not of that shape.
    fn try_count_threshold(
        &mut self,
        expr: &Expr,
        used_sets: &mut Vec<String>,
    ) -> Result<Option<Expr>> {
        let Expr::Binary { left, op, right } = expr else {
            return Ok(None);
        };
        if !op.is_comparison() {
            return Ok(None);
        }
        let (count, cmp_op, threshold) = match (left.as_ref(), right.as_ref()) {
            (Expr::CountIf(inner), Expr::Literal(v)) => (inner, *op, v.clone()),
            (Expr::Literal(v), Expr::CountIf(inner)) => (inner, op.swap(), v.clone()),
            _ => return Ok(None),
        };
        let refs = Self::refs_of(count);
        if refs.len() != 1 || !self.set_before.contains_key(&refs[0]) {
            return Err(Error::Plan(format!(
                "count(<predicate>) must reference exactly one set pattern \
                 reference, found [{}]",
                refs.join(", ")
            )));
        }
        let set_name = refs[0].clone();
        let sn = set_name.clone();
        let inner = count.transform(&|e| match e {
            Expr::Column(c) if c.qualifier.as_deref() == Some(sn.as_str()) => {
                Expr::Column(ColumnRef {
                    qualifier: None,
                    name: c.name,
                })
            }
            other => other,
        });
        let alias = self.alias_for(&set_name, "_count");
        let frame = self.frame_for(&set_name)?;
        // count(CASE WHEN inner THEN 1 END) counts qualifying rows; an empty
        // window yields 0 (not NULL), so thresholds behave arithmetically.
        self.windows.push(WindowExpr {
            func: WindowFuncKind::Count,
            arg: Some(Expr::Case {
                branches: vec![(inner, Expr::lit(1i64))],
                else_expr: None,
            }),
            frame,
            alias: alias.clone(),
        });
        if !used_sets.contains(&set_name) {
            used_sets.push(set_name);
        }
        Ok(Some(Expr::binary(
            Expr::col(alias),
            cmp_op,
            Expr::Literal(threshold),
        )))
    }

    /// Rewrite the condition tree: target columns become bare columns,
    /// singleton-context columns become window-aggregate aliases, and
    /// maximal set-only boolean subtrees become existential window tests.
    fn rewrite(&mut self, expr: &Expr, used_sets: &mut Vec<String>) -> Result<Expr> {
        // Count thresholds take precedence over the existential lowering.
        if let Some(lowered) = self.try_count_threshold(expr, used_sets)? {
            return Ok(lowered);
        }
        // Maximal subtree referencing exactly one set reference and nothing
        // else, in a boolean position → existential aggregate. (Subtrees
        // containing count() are handled by the threshold lowering instead.)
        let refs = Self::refs_of(expr);
        if refs.len() == 1
            && self.set_before.contains_key(&refs[0])
            && Self::is_boolean(expr)
            && !contains_count_if(expr)
        {
            let set_name = refs[0].clone();
            // The CASE condition is the subtree with `X.col` → bare `col`
            // (evaluated per window row).
            let sn = set_name.clone();
            let inner = expr.transform(&|e| match e {
                Expr::Column(c) if c.qualifier.as_deref() == Some(sn.as_str()) => {
                    Expr::Column(ColumnRef {
                        qualifier: None,
                        name: c.name,
                    })
                }
                other => other,
            });
            let alias = self.alias_for(&set_name, "_exists");
            let frame = self.frame_for(&set_name)?;
            self.windows.push(WindowExpr {
                func: WindowFuncKind::Max,
                arg: Some(Expr::Case {
                    branches: vec![(inner, Expr::lit(1i64))],
                    else_expr: Some(Box::new(Expr::lit(0i64))),
                }),
                frame,
                alias: alias.clone(),
            });
            if !used_sets.contains(&set_name) {
                used_sets.push(set_name);
            }
            return Ok(Expr::col(alias).eq(Expr::lit(1i64)));
        }

        match expr {
            Expr::Column(c) => {
                let Some(q) = &c.qualifier else {
                    return Err(Error::Plan(format!(
                        "unqualified column '{}' in rule condition",
                        c.name
                    )));
                };
                if q == &self.target {
                    return Ok(Expr::col(c.name.clone()));
                }
                if let Some(&offset) = self.singleton_offset.get(q) {
                    let key = (q.clone(), c.name.clone());
                    if let Some(alias) = self.window_ids.get(&key) {
                        return Ok(Expr::col(alias.clone()));
                    }
                    let alias = self.alias_for(q, &format!("_{}", c.name));
                    let frame = if offset < 0 {
                        Frame::rows(
                            FrameBound::Preceding(-offset),
                            FrameBound::Preceding(-offset),
                        )
                    } else {
                        Frame::rows(FrameBound::Following(offset), FrameBound::Following(offset))
                    };
                    self.windows.push(WindowExpr {
                        func: WindowFuncKind::Max,
                        arg: Some(Expr::col(c.name.clone())),
                        frame,
                        alias: alias.clone(),
                    });
                    self.window_ids.insert(key, alias.clone());
                    return Ok(Expr::col(alias));
                }
                Err(Error::Plan(format!(
                    "set reference '{q}' used outside a set-only boolean subcondition \
                     (its columns cannot be compared directly with other references \
                     except on the sequence key)"
                )))
            }
            Expr::Literal(_) => Ok(expr.clone()),
            Expr::CountIf(_) => Err(Error::Plan(
                "count(<predicate>) must be compared against an integer \
                 threshold, e.g. count(B.reader = 'readerX') >= 2"
                    .into(),
            )),
            Expr::Binary { left, op, right } => Ok(Expr::Binary {
                left: Box::new(self.rewrite(left, used_sets)?),
                op: *op,
                right: Box::new(self.rewrite(right, used_sets)?),
            }),
            Expr::Not(e) => Ok(Expr::Not(Box::new(self.rewrite(e, used_sets)?))),
            Expr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(self.rewrite(expr, used_sets)?),
                negated: *negated,
            }),
            Expr::InList {
                expr,
                list,
                negated,
            } => Ok(Expr::InList {
                expr: Box::new(self.rewrite(expr, used_sets)?),
                list: list.clone(),
                negated: *negated,
            }),
            Expr::InSet {
                expr,
                set,
                negated,
                label,
            } => Ok(Expr::InSet {
                expr: Box::new(self.rewrite(expr, used_sets)?),
                set: set.clone(),
                negated: *negated,
                label: label.clone(),
            }),
            Expr::Case {
                branches,
                else_expr,
            } => Ok(Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, r)| Ok((self.rewrite(c, used_sets)?, self.rewrite(r, used_sets)?)))
                    .collect::<Result<_>>()?,
                else_expr: else_expr
                    .as_ref()
                    .map(|e| self.rewrite(e, used_sets).map(Box::new))
                    .transpose()?,
            }),
        }
    }
}

/// Does the expression contain a `count()` node anywhere?
pub fn contains_count_if(expr: &Expr) -> bool {
    let mut found = false;
    fn walk(e: &Expr, found: &mut bool) {
        match e {
            Expr::CountIf(_) => *found = true,
            Expr::Binary { left, right, .. } => {
                walk(left, found);
                walk(right, found);
            }
            Expr::Not(i) => walk(i, found),
            Expr::IsNull { expr, .. } | Expr::InList { expr, .. } | Expr::InSet { expr, .. } => {
                walk(expr, found)
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, r) in branches {
                    walk(c, found);
                    walk(r, found);
                }
                if let Some(e) = else_expr {
                    walk(e, found);
                }
            }
            _ => {}
        }
    }
    walk(expr, &mut found);
    found
}

fn tighten_upper(entry: &mut (Option<i64>, Option<i64>), v: i64) {
    entry.1 = Some(match entry.1 {
        None => v,
        Some(cur) => cur.min(v),
    });
}

fn tighten_lower(entry: &mut (Option<i64>, Option<i64>), v: i64) {
    entry.0 = Some(match entry.0 {
        None => v,
        Some(cur) => cur.max(v),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_sqlts::parse_rule;

    fn compile(text: &str) -> RuleTemplate {
        compile_rule(&parse_rule(text).unwrap()).unwrap()
    }

    #[test]
    fn duplicate_rule_template() {
        let t = compile(
            "DEFINE duplicate ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B",
        );
        // Context A is one row before target B: two one-row-preceding windows.
        assert_eq!(t.windows.len(), 2);
        for w in &t.windows {
            assert_eq!(
                w.frame,
                Frame::rows(FrameBound::Preceding(1), FrameBound::Preceding(1))
            );
            assert_eq!(w.func, WindowFuncKind::Max);
        }
        let c = t.condition.to_string();
        assert!(c.contains("__a_biz_loc"), "condition: {c}");
        assert!(c.contains("__a_rtime"), "condition: {c}");
    }

    #[test]
    fn reader_rule_folds_skey_into_range_frame() {
        let t = compile(
            "DEFINE reader ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
             WHERE B.reader = 'readerX' and B.rtime - A.rtime < 10 mins ACTION DELETE A",
        );
        assert_eq!(t.windows.len(), 1);
        let w = &t.windows[0];
        // B strictly after A, within < 600s  =>  RANGE [+1, +599].
        assert_eq!(
            w.frame,
            Frame::range(FrameBound::Following(1), FrameBound::Following(599))
        );
        // Existential: max(case when reader='readerX' then 1 else 0 end).
        assert!(
            w.arg.as_ref().unwrap().to_string().contains("readerx")
                || w.arg.as_ref().unwrap().to_string().contains("readerX")
        );
        assert!(t.condition.to_string().contains("__b_exists"));
    }

    #[test]
    fn cycle_rule_two_singleton_contexts() {
        let t = compile(
            "DEFINE cycle ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B, C) \
             WHERE A.biz_loc = C.biz_loc and A.biz_loc != B.biz_loc ACTION DELETE B",
        );
        // A at -1 (preceding), C at +1 (following); A.biz_loc deduplicated.
        assert_eq!(t.windows.len(), 2);
        let frames: Vec<&Frame> = t.windows.iter().map(|w| &w.frame).collect();
        assert!(frames.contains(&&Frame::rows(
            FrameBound::Preceding(1),
            FrameBound::Preceding(1)
        )));
        assert!(frames.contains(&&Frame::rows(
            FrameBound::Following(1),
            FrameBound::Following(1)
        )));
    }

    #[test]
    fn replacing_rule_modify() {
        let t = compile(
            "DEFINE replacing ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.biz_loc = 'loc2' and B.biz_loc = 'locA' and B.rtime - A.rtime < 20 mins \
             ACTION MODIFY A.biz_loc = 'loc1'",
        );
        // Target is A; context B is one row after.
        assert!(matches!(t.action, Action::Modify { .. }));
        for w in &t.windows {
            assert_eq!(
                w.frame,
                Frame::rows(FrameBound::Following(1), FrameBound::Following(1))
            );
        }
    }

    #[test]
    fn set_with_or_condition_keeps_structure() {
        // Paper's missing rule r2.
        let t = compile(
            "DEFINE r2 ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
             WHERE A.is_pallet = 0 or (A.has_case_nearby = 0 and B.has_case_nearby = 1) \
             ACTION KEEP A",
        );
        assert_eq!(t.windows.len(), 1);
        // No skey constraint: unbounded following window starting at +1.
        assert_eq!(
            t.windows[0].frame,
            Frame::range(FrameBound::Following(1), FrameBound::UnboundedFollowing)
        );
        let c = t.condition.to_string();
        assert!(c.contains("OR"), "structure preserved: {c}");
        assert!(c.contains("is_pallet"));
    }

    #[test]
    fn set_before_target() {
        let t = compile(
            "DEFINE w ON R CLUSTER BY epc SEQUENCE BY rtime AS (*X, A) \
             WHERE X.reader = 'r9' and A.rtime - X.rtime < 2 mins ACTION DELETE A",
        );
        assert_eq!(
            t.windows[0].frame,
            // X.rtime > A.rtime - 120  =>  >= -119; strictly before => <= -1.
            Frame::range(FrameBound::Preceding(119), FrameBound::Preceding(1))
        );
    }

    #[test]
    fn frame_only_set_gets_existence_test() {
        // "Delete A if any read follows within 5 minutes."
        let t = compile(
            "DEFINE trailing ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
             WHERE B.rtime - A.rtime < 5 mins ACTION DELETE A",
        );
        assert_eq!(t.windows.len(), 1);
        assert_eq!(t.windows[0].func, WindowFuncKind::Count);
        assert!(t.condition.to_string().contains("__b__exists"));
    }

    #[test]
    fn missing_rule_r1_compiles() {
        let t = compile(
            "DEFINE r1 ON R CLUSTER BY epc SEQUENCE BY rtime AS (X, A, Y) \
             WHERE A.is_pallet = 1 and \
               ((X.is_pallet = 0 and A.biz_loc = X.biz_loc and A.rtime - X.rtime < 5 mins) or \
                (Y.is_pallet = 0 and A.biz_loc = Y.biz_loc and Y.rtime - A.rtime < 5 mins)) \
             ACTION MODIFY A.has_case_nearby = 1",
        );
        // X: -1 window for is_pallet, biz_loc, rtime; Y: +1 for the same.
        assert_eq!(t.windows.len(), 6);
    }

    #[test]
    fn set_column_compared_to_target_nonskey_rejected() {
        let err = compile_rule(
            &parse_rule(
                "DEFINE bad ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
                 WHERE B.biz_loc = A.biz_loc ACTION DELETE A",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("set reference"));
    }

    #[test]
    fn partition_and_order_from_keys() {
        let t = compile(
            "DEFINE d ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.biz_loc = B.biz_loc ACTION DELETE B",
        );
        assert_eq!(t.partition_by, vec![Expr::col("epc")]);
        assert_eq!(t.order_by, vec![SortKey::asc(Expr::col("rtime"))]);
    }

    #[test]
    fn invalid_rule_rejected_at_compile() {
        let def = parse_rule(
            "DEFINE bad ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
             WHERE B.x = 1 ACTION DELETE B",
        )
        .unwrap();
        assert!(compile_rule(&def).is_err());
    }
}

#[cfg(test)]
mod count_extension_tests {
    use super::*;
    use dc_sqlts::parse_rule;

    const COUNT_RULE: &str = "DEFINE reader2 ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
        WHERE count(B.reader = 'readerX') >= 2 and B.rtime - A.rtime < 5 mins ACTION DELETE A";

    #[test]
    fn count_threshold_lowers_to_count_window() {
        let t = compile_rule(&parse_rule(COUNT_RULE).unwrap()).unwrap();
        assert_eq!(t.windows.len(), 1);
        let w = &t.windows[0];
        assert_eq!(w.func, WindowFuncKind::Count);
        assert_eq!(
            w.frame,
            Frame::range(FrameBound::Following(1), FrameBound::Following(299))
        );
        // count(CASE WHEN reader='readerX' THEN 1 END) — no ELSE, so only
        // qualifying rows are counted.
        let arg = w.arg.as_ref().unwrap().to_string();
        assert!(arg.contains("CASE WHEN"), "{arg}");
        assert!(!arg.contains("ELSE"), "{arg}");
        assert!(t.condition.to_string().contains("__b_count >= 2"));
    }

    #[test]
    fn count_compared_from_the_left_and_right() {
        let r = "DEFINE r ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
            WHERE 3 <= count(B.reader = 'rX') ACTION DELETE A";
        let t = compile_rule(&parse_rule(r).unwrap()).unwrap();
        assert!(t.condition.to_string().contains(">= 3"));
    }

    #[test]
    fn bare_count_rejected() {
        let r = "DEFINE r ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
            WHERE count(B.reader = 'rX') ACTION DELETE A";
        let err = compile_rule(&parse_rule(r).unwrap()).unwrap_err();
        assert!(err.to_string().contains("threshold"), "{err}");
    }

    #[test]
    fn count_over_singleton_rejected() {
        let r = "DEFINE r ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
            WHERE count(B.reader = 'rX') >= 1 ACTION DELETE A";
        let err = compile_rule(&parse_rule(r).unwrap()).unwrap_err();
        assert!(err.to_string().contains("set pattern"), "{err}");
    }

    #[test]
    fn count_rule_executes() {
        use dc_relational::batch::{schema_ref, Batch};
        use dc_relational::exec::Executor;
        use dc_relational::plan::LogicalPlan;
        use dc_relational::schema::{Field, Schema};
        use dc_relational::table::{Catalog, Table};
        use dc_relational::value::{DataType, Value};

        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("reader", DataType::Str),
        ]));
        // e1: followed by TWO readerX reads within 5 min -> deleted.
        // e2: followed by only ONE -> kept.
        let rows = vec![
            vec![Value::str("e1"), Value::Int(0), Value::str("r0")],
            vec![Value::str("e1"), Value::Int(100), Value::str("readerX")],
            vec![Value::str("e1"), Value::Int(200), Value::str("readerX")],
            vec![Value::str("e2"), Value::Int(0), Value::str("r0")],
            vec![Value::str("e2"), Value::Int(100), Value::str("readerX")],
        ];
        let cat = Catalog::new();
        cat.register(Table::new("r", Batch::from_rows(schema, &rows).unwrap()));
        let rule = "DEFINE reader2 ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
            WHERE count(B.reader = 'readerX') >= 2 and B.rtime - A.rtime < 5 mins \
            ACTION DELETE A";
        let t = compile_rule(&parse_rule(rule).unwrap()).unwrap();
        let plan = crate::apply::apply_rule(LogicalPlan::scan("r"), &t, &cat).unwrap();
        let out = Executor::new(&cat).execute(&plan).unwrap();
        // Only e1@0 is deleted (the readerX reads themselves have <2 readerX
        // reads after them).
        assert_eq!(out.num_rows(), 4);
        let has_e1_t0 = (0..out.num_rows())
            .any(|i| out.row(i)[0] == Value::str("e1") && out.row(i)[1] == Value::Int(0));
        assert!(!has_e1_t0);
        let has_e2_t0 = (0..out.num_rows())
            .any(|i| out.row(i)[0] == Value::str("e2") && out.row(i)[1] == Value::Int(0));
        assert!(has_e2_t0);
    }
}
