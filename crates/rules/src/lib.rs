//! # dc-rules — the cleansing rule engine
//!
//! Implements the paper's Cleansing Rule engine (§3 steps 1–2 and §4):
//!
//! * [`compile`] turns an extended SQL-TS [`dc_sqlts::RuleDef`] into a
//!   **SQL/OLAP template** — scalar aggregates over `PARTITION BY ckey ORDER
//!   BY skey` windows plus a rewritten condition — evaluable in one sorted
//!   pass per rule (one sorted pass per *chain* after order sharing).
//! * [`apply`] builds the `Φ_C` cleansing plans: `Window → Filter/Project`
//!   for DELETE/KEEP/MODIFY actions, and chains rules in creation order.
//! * [`template`] renders the equivalent SQL/OLAP statement text.
//! * [`catalog`] is the persistent rules table, grouped per application.
//!
//! ```
//! use dc_relational::prelude::*;
//! use dc_rules::{compile_rule, apply_rule};
//! use dc_sqlts::parse_rule;
//!
//! # let catalog = Catalog::new();
//! # let schema = schema_ref(Schema::new(vec![
//! #     Field::new("epc", DataType::Str),
//! #     Field::new("rtime", DataType::Int),
//! #     Field::new("biz_loc", DataType::Str),
//! # ]));
//! # catalog.register(Table::new("caser", Batch::empty(schema)));
//! let rule = parse_rule(
//!     "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime \
//!      AS (A, B) WHERE A.biz_loc = B.biz_loc ACTION DELETE B").unwrap();
//! let template = compile_rule(&rule).unwrap();
//! let phi = apply_rule(LogicalPlan::scan("caser"), &template, &catalog).unwrap();
//! let cleaned = Executor::new(&catalog).execute(&phi).unwrap();
//! assert_eq!(cleaned.num_rows(), 0);
//! ```

pub mod apply;
pub mod catalog;
pub mod compile;
pub mod template;

pub use apply::{
    apply_rule, apply_rule_qualified, cleansing_plan, cleansing_plan_qualified, materialize_phi,
    validate_chain,
};
pub use catalog::{RuleCatalog, StoredRule};
pub use compile::{compile_rule, RuleTemplate};
pub use template::render_sql_template;
