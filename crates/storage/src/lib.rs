//! `dc-storage` — segmented storage primitives.
//!
//! The paper's deferred-cleansing bet (§5) is that σ_ec(R) touches a small
//! slice of the reads table. This crate supplies the storage-side machinery
//! that makes "small slice" cheap in practice, deliberately free of any
//! dependency on the relational layer so it can sit below it:
//!
//! * [`zone`] — per-column [`ZoneMap`]s (min/max, null count, row count)
//!   and [`ZonePredicate`]s that conservatively decide whether a segment
//!   can contain matching rows;
//! * [`segment`] — [`Segment`] metadata describing one sealed row group of
//!   a table (contiguous row range + one zone map per column);
//! * [`cache`] — a size-bounded, deterministically evicting [`SeqCache`]
//!   used to memoize Φ_C output per cleansing sequence, with hit/miss/
//!   invalidation/eviction counters;
//! * [`wire`] — a little-endian, length-prefixed byte format with a
//!   non-panicking reader, shared by the durable commit log (`dc-log`)
//!   and the columnar segment files;
//! * [`persist`] — [`ZoneMap`]/[`Segment`] (de)serialization over any
//!   value type that supplies a [`ValueCodec`].
//!
//! Everything is generic over the value type through [`ZoneValue`] (a total
//! order), so `dc-relational` can plug its `Value` in without this crate
//! knowing about it.

pub mod cache;
pub mod persist;
pub mod segment;
pub mod wire;
pub mod zone;

pub use cache::{CacheLookup, CacheStats, SeqCache};
pub use persist::ValueCodec;
pub use segment::Segment;
pub use wire::{ByteReader, ByteWriter, WireError};
pub use zone::{ZoneBound, ZoneMap, ZonePredicate, ZoneValue};

/// A 64-bit FNV-1a hasher with a stable, documented algorithm.
///
/// Used for rule-set fingerprints in cache keys: unlike
/// `std::collections::hash_map::DefaultHasher`, the output is specified and
/// stable across Rust releases and processes, so fingerprints recorded in
/// benchmark artifacts stay comparable.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv1a_streaming_matches_oneshot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }
}
