//! Segment metadata: one sealed row group of a table.
//!
//! A table's data is a sequence of segments, each covering a contiguous row
//! range `[start, start + rows)` with one [`ZoneMap`] per column computed at
//! seal time. Segments are immutable once sealed; ingest appends new ones.
//! Ids are assigned in seal order and never reused, so a set of segment ids
//! identifies a specific snapshot of the rows covering a key — which is what
//! the cleansed-sequence cache uses for invalidation.

use crate::zone::{ZoneMap, ZonePredicate, ZoneValue};

/// Metadata for one sealed segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment<V: ZoneValue> {
    /// Seal-order id, unique within the table and never reused.
    pub id: u64,
    /// First row of the segment in table row order.
    pub start: usize,
    /// Number of rows in the segment.
    pub rows: usize,
    /// One zone map per table column, in schema order.
    pub zones: Vec<ZoneMap<V>>,
}

impl<V: ZoneValue> Segment<V> {
    /// The zone map for a column position, if the segment summarizes it.
    pub fn zone(&self, column: usize) -> Option<&ZoneMap<V>> {
        self.zones.get(column)
    }

    /// One past the last row of the segment.
    pub fn end(&self) -> usize {
        self.start + self.rows
    }

    /// Whether every predicate admits this segment (AND semantics). An
    /// unknown column position admits conservatively.
    pub fn may_match_all(&self, predicates: &[ZonePredicate<V>]) -> bool {
        predicates
            .iter()
            .all(|p| self.zone(p.column).is_none_or(|z| p.may_match(z)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::ZoneBound;

    fn seg(id: u64, start: usize, vals: &[i64]) -> Segment<i64> {
        let mut z = ZoneMap::new();
        for v in vals {
            z.observe(v);
        }
        Segment {
            id,
            start,
            rows: vals.len(),
            zones: vec![z],
        }
    }

    #[test]
    fn may_match_all_is_conjunctive() {
        let s = seg(0, 0, &[10, 20]);
        let admit = ZonePredicate::range(0, ZoneBound::Inclusive(15), ZoneBound::Unbounded);
        let reject = ZonePredicate::range(0, ZoneBound::Inclusive(25), ZoneBound::Unbounded);
        assert!(s.may_match_all(std::slice::from_ref(&admit)));
        assert!(!s.may_match_all(&[admit, reject]));
        assert!(s.may_match_all(&[]));
    }

    #[test]
    fn unknown_column_admits() {
        let s = seg(0, 0, &[10, 20]);
        let p = ZonePredicate::range(7, ZoneBound::Inclusive(999), ZoneBound::Unbounded);
        assert!(s.may_match_all(&[p]));
        assert_eq!(s.end(), 2);
    }
}
