//! Segment metadata: one sealed row group of a table.
//!
//! A table's data is a sequence of segments, each covering a contiguous row
//! range `[start, start + rows)` with one [`ZoneMap`] per column computed at
//! seal time. Segments are immutable once sealed; ingest appends new ones.
//! Ids are assigned in seal order and never reused, so a set of segment ids
//! identifies a specific snapshot of the rows covering a key — which is what
//! the cleansed-sequence cache uses for invalidation.

use crate::zone::{ZoneMap, ZonePredicate, ZoneValue};

/// Metadata for one sealed segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment<V: ZoneValue> {
    /// Seal-order id, unique within the table and never reused.
    pub id: u64,
    /// First row of the segment in table row order.
    pub start: usize,
    /// Number of rows in the segment.
    pub rows: usize,
    /// One zone map per table column, in schema order.
    pub zones: Vec<ZoneMap<V>>,
    /// Column positions this segment's rows are verified non-descending on,
    /// lexicographically, under [`ZoneValue::zcmp`] with NULLs ordered first
    /// (the same total order zone maps and the engine's sorts use). Empty
    /// means no order was verified.
    ///
    /// Like a zone map, this is *derived from the sealed rows themselves* at
    /// seal time and segments are immutable, so trusting it later can never
    /// change results — it only lets a sort treat the segment as one
    /// pre-sorted run instead of re-discovering that by comparison.
    pub sorted_by: Vec<usize>,
}

impl<V: ZoneValue> Segment<V> {
    /// The zone map for a column position, if the segment summarizes it.
    pub fn zone(&self, column: usize) -> Option<&ZoneMap<V>> {
        self.zones.get(column)
    }

    /// One past the last row of the segment.
    pub fn end(&self) -> usize {
        self.start + self.rows
    }

    /// Whether every predicate admits this segment (AND semantics). An
    /// unknown column position admits conservatively.
    pub fn may_match_all(&self, predicates: &[ZonePredicate<V>]) -> bool {
        predicates
            .iter()
            .all(|p| self.zone(p.column).is_none_or(|z| p.may_match(z)))
    }

    /// Whether the segment's verified order covers a requested lexicographic
    /// key. Sortedness on `(a, b)` implies sortedness on `(a)`, so the
    /// request is covered when it is a prefix of the verified columns.
    pub fn covers_order(&self, columns: &[usize]) -> bool {
        !columns.is_empty() && self.sorted_by.starts_with(columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::ZoneBound;

    fn seg(id: u64, start: usize, vals: &[i64]) -> Segment<i64> {
        let mut z = ZoneMap::new();
        for v in vals {
            z.observe(v);
        }
        Segment {
            id,
            start,
            rows: vals.len(),
            zones: vec![z],
            sorted_by: vec![],
        }
    }

    #[test]
    fn may_match_all_is_conjunctive() {
        let s = seg(0, 0, &[10, 20]);
        let admit = ZonePredicate::range(0, ZoneBound::Inclusive(15), ZoneBound::Unbounded);
        let reject = ZonePredicate::range(0, ZoneBound::Inclusive(25), ZoneBound::Unbounded);
        assert!(s.may_match_all(std::slice::from_ref(&admit)));
        assert!(!s.may_match_all(&[admit, reject]));
        assert!(s.may_match_all(&[]));
    }

    #[test]
    fn covers_order_is_prefix_closed() {
        let mut s = seg(0, 0, &[10, 20]);
        assert!(!s.covers_order(&[0]), "no verified order");
        s.sorted_by = vec![0, 1];
        assert!(s.covers_order(&[0]));
        assert!(s.covers_order(&[0, 1]));
        assert!(!s.covers_order(&[1]));
        assert!(!s.covers_order(&[0, 1, 2]));
        assert!(!s.covers_order(&[]));
    }

    #[test]
    fn unknown_column_admits() {
        let s = seg(0, 0, &[10, 20]);
        let p = ZonePredicate::range(7, ZoneBound::Inclusive(999), ZoneBound::Unbounded);
        assert!(s.may_match_all(&[p]));
        assert_eq!(s.end(), 2);
    }
}
