//! A size-bounded cache with deterministic LRU eviction and explicit
//! invalidation, used to memoize cleansed sequences (Φ_C output per
//! cluster key) for the join-back rewrite.
//!
//! Determinism matters more than raw speed here: the benchmark gate diffs
//! hit/miss/eviction counts across runs, so the cache must behave
//! identically for an identical operation sequence. Entries live in a
//! `BTreeMap` (ordered, hash-free) and eviction removes the
//! least-recently-used entry by an explicit logical clock.

use std::collections::BTreeMap;

/// Cumulative counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries removed to respect the capacity bound.
    pub evictions: u64,
    /// Entries removed because their validity check failed (stale data).
    pub invalidations: u64,
}

/// Outcome of a validated lookup.
#[derive(Debug, PartialEq, Eq)]
pub enum CacheLookup<V> {
    /// Present and valid.
    Hit(V),
    /// Absent.
    Miss,
    /// Present but stale: the entry was removed and returned.
    Stale(V),
}

#[derive(Debug, Clone)]
struct Entry<V> {
    value: V,
    /// Last-touch logical time, for LRU eviction.
    tick: u64,
}

/// The bounded cache. `K` needs only a total order (no hashing), which is
/// what lets callers key it with values ordered by a custom comparison.
#[derive(Debug, Clone)]
pub struct SeqCache<K: Ord + Clone, V> {
    capacity: usize,
    map: BTreeMap<K, Entry<V>>,
    clock: u64,
    stats: CacheStats,
}

impl<K: Ord + Clone, V: Clone> SeqCache<K, V> {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        SeqCache {
            capacity: capacity.max(1),
            map: BTreeMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Look up `key`, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: &K) -> Option<V> {
        match self.lookup_where(key, |_| true) {
            CacheLookup::Hit(v) => Some(v),
            _ => None,
        }
    }

    /// Look up `key` with a validity check. A present-but-invalid entry is
    /// removed (counted as an invalidation *and* a miss, so hits + misses
    /// equals the number of lookups) and returned as [`CacheLookup::Stale`].
    pub fn lookup_where(&mut self, key: &K, valid: impl FnOnce(&V) -> bool) -> CacheLookup<V> {
        let tick = self.tick();
        match self.map.get_mut(key) {
            None => {
                self.stats.misses += 1;
                CacheLookup::Miss
            }
            Some(entry) if valid(&entry.value) => {
                entry.tick = tick;
                self.stats.hits += 1;
                CacheLookup::Hit(entry.value.clone())
            }
            Some(_) => {
                let entry = self.map.remove(key).expect("entry just observed");
                self.stats.invalidations += 1;
                self.stats.misses += 1;
                CacheLookup::Stale(entry.value)
            }
        }
    }

    /// Insert or replace `key`, evicting least-recently-used entries as
    /// needed to stay within capacity.
    pub fn insert(&mut self, key: K, value: V) {
        let tick = self.tick();
        self.map.insert(key, Entry { value, tick });
        while self.map.len() > self.capacity {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| k.clone())
                .expect("non-empty while over capacity");
            self.map.remove(&lru);
            self.stats.evictions += 1;
        }
    }

    /// Remove `key` if present, counting an invalidation.
    pub fn invalidate(&mut self, key: &K) -> Option<V> {
        let removed = self.map.remove(key);
        if removed.is_some() {
            self.stats.invalidations += 1;
        }
        removed.map(|e| e.value)
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_counting() {
        let mut c: SeqCache<u32, &str> = SeqCache::new(4);
        assert_eq!(c.get(&1), None);
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some("one"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn eviction_is_lru_and_counted() {
        let mut c: SeqCache<u32, u32> = SeqCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.get(&1); // 2 is now least recently used
        c.insert(3, 30);
        assert_eq!(c.get(&2), None, "LRU entry evicted");
        assert_eq!(c.get(&1), Some(10));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn stale_entries_are_removed_and_counted() {
        let mut c: SeqCache<u32, u32> = SeqCache::new(4);
        c.insert(1, 10);
        assert_eq!(c.lookup_where(&1, |v| *v > 99), CacheLookup::Stale(10));
        assert_eq!(c.get(&1), None);
        let s = c.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.hits + s.misses, 2, "every lookup is a hit or a miss");
    }

    #[test]
    fn explicit_invalidation() {
        let mut c: SeqCache<u32, u32> = SeqCache::new(4);
        c.insert(1, 10);
        assert_eq!(c.invalidate(&1), Some(10));
        assert_eq!(c.invalidate(&1), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut c: SeqCache<u32, u32> = SeqCache::new(3);
            for i in 0..10 {
                c.get(&(i % 4));
                c.insert(i % 5, i);
            }
            c.stats()
        };
        assert_eq!(run(), run());
    }
}
