//! Wire (de)serialization for segment metadata and zone maps.
//!
//! The storage layer is generic over the summarized value type through
//! [`ZoneValue`]; persistence adds one more capability — encoding a value
//! to bytes and back — expressed by [`ValueCodec`]. `dc-relational`
//! implements it for its `Value` type; this module then serializes
//! [`ZoneMap`]s and [`Segment`] metadata without knowing what the values
//! are. Decoding trusts nothing: every length and tag is validated and
//! failures surface as typed [`WireError`]s.

use crate::segment::Segment;
use crate::wire::{ByteReader, ByteWriter, WireError};
use crate::zone::{ZoneMap, ZoneValue};

/// Encode/decode for one zone-summarizable value type.
pub trait ValueCodec {
    type Value: ZoneValue;

    fn encode_value(&self, v: &Self::Value, w: &mut ByteWriter);
    fn decode_value(&self, r: &mut ByteReader<'_>) -> Result<Self::Value, WireError>;
}

fn put_opt<C: ValueCodec>(codec: &C, v: &Option<C::Value>, w: &mut ByteWriter) {
    match v {
        None => w.put_u8(0),
        Some(v) => {
            w.put_u8(1);
            codec.encode_value(v, w);
        }
    }
}

fn get_opt<C: ValueCodec>(
    codec: &C,
    r: &mut ByteReader<'_>,
) -> Result<Option<C::Value>, WireError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(codec.decode_value(r)?)),
        other => Err(WireError::Malformed(format!("bad option tag {other}"))),
    }
}

/// Serialize one zone map.
pub fn encode_zone_map<C: ValueCodec>(codec: &C, zone: &ZoneMap<C::Value>, w: &mut ByteWriter) {
    put_opt(codec, &zone.min, w);
    put_opt(codec, &zone.max, w);
    w.put_u64(zone.null_count);
    w.put_u64(zone.row_count);
}

/// Deserialize one zone map.
pub fn decode_zone_map<C: ValueCodec>(
    codec: &C,
    r: &mut ByteReader<'_>,
) -> Result<ZoneMap<C::Value>, WireError> {
    let min = get_opt(codec, r)?;
    let max = get_opt(codec, r)?;
    let null_count = r.get_u64()?;
    let row_count = r.get_u64()?;
    if null_count > row_count {
        return Err(WireError::Malformed(format!(
            "zone map null_count {null_count} exceeds row_count {row_count}"
        )));
    }
    Ok(ZoneMap {
        min,
        max,
        null_count,
        row_count,
    })
}

/// Serialize one segment's metadata (id, row range, verified order, zones).
pub fn encode_segment_meta<C: ValueCodec>(codec: &C, seg: &Segment<C::Value>, w: &mut ByteWriter) {
    w.put_u64(seg.id);
    w.put_u64(seg.start as u64);
    w.put_u64(seg.rows as u64);
    w.put_u32(seg.sorted_by.len() as u32);
    for &c in &seg.sorted_by {
        w.put_u32(c as u32);
    }
    w.put_u32(seg.zones.len() as u32);
    for z in &seg.zones {
        encode_zone_map(codec, z, w);
    }
}

/// Deserialize one segment's metadata.
pub fn decode_segment_meta<C: ValueCodec>(
    codec: &C,
    r: &mut ByteReader<'_>,
) -> Result<Segment<C::Value>, WireError> {
    let id = r.get_u64()?;
    let start = r.get_u64()? as usize;
    let rows = r.get_u64()? as usize;
    let n_sorted = r.get_count(4)?;
    let mut sorted_by = Vec::with_capacity(n_sorted);
    for _ in 0..n_sorted {
        sorted_by.push(r.get_u32()? as usize);
    }
    let n_zones = r.get_count(18)?; // min tag + max tag + two u64 counts
    let mut zones = Vec::with_capacity(n_zones);
    for _ in 0..n_zones {
        let z = decode_zone_map(codec, r)?;
        if z.row_count != rows as u64 {
            return Err(WireError::Malformed(format!(
                "zone map covers {} rows, segment has {rows}",
                z.row_count
            )));
        }
        zones.push(z);
    }
    Ok(Segment {
        id,
        start,
        rows,
        zones,
        sorted_by,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct I64Codec;

    impl ValueCodec for I64Codec {
        type Value = i64;

        fn encode_value(&self, v: &i64, w: &mut ByteWriter) {
            w.put_i64(*v);
        }

        fn decode_value(&self, r: &mut ByteReader<'_>) -> Result<i64, WireError> {
            r.get_i64()
        }
    }

    fn sample_segment() -> Segment<i64> {
        let mut dense = ZoneMap::new();
        for v in [5i64, -2, 9] {
            dense.observe(&v);
        }
        dense.observe_null();
        let mut empty = ZoneMap::new();
        for _ in 0..4 {
            empty.observe_null();
        }
        Segment {
            id: 7,
            start: 128,
            rows: 4,
            zones: vec![dense, empty],
            sorted_by: vec![1, 0],
        }
    }

    #[test]
    fn segment_meta_roundtrip() {
        let seg = sample_segment();
        let mut w = ByteWriter::new();
        encode_segment_meta(&I64Codec, &seg, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = decode_segment_meta(&I64Codec, &mut r).unwrap();
        assert_eq!(back, seg);
        assert!(r.is_empty());
    }

    #[test]
    fn every_truncation_is_typed() {
        let seg = sample_segment();
        let mut w = ByteWriter::new();
        encode_segment_meta(&I64Codec, &seg, &mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(
                decode_segment_meta(&I64Codec, &mut r).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn inconsistent_counts_are_malformed() {
        let mut z = ZoneMap::<i64>::new();
        z.observe(&1);
        let seg = Segment {
            id: 0,
            start: 0,
            rows: 2, // zone says 1 row
            zones: vec![z],
            sorted_by: vec![],
        };
        let mut w = ByteWriter::new();
        encode_segment_meta(&I64Codec, &seg, &mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(
            decode_segment_meta(&I64Codec, &mut r),
            Err(WireError::Malformed(_))
        ));
    }
}
