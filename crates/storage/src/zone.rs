//! Zone maps: per-column min/max summaries over a row range, and the
//! conservative predicates that consult them.
//!
//! A zone map never proves a segment *does* contain matching rows — it only
//! proves, sometimes, that it *cannot*. [`ZonePredicate::may_match`] is the
//! pruning test: `false` means every row of the segment is guaranteed to
//! fail the predicate, so the scan may skip the whole segment without
//! changing its result. `true` means "fetch and let the residual filter
//! decide", which is always safe.

use std::cmp::Ordering;

/// A value a zone map can summarize: anything with a total order.
///
/// The order must agree with the order the execution engine uses for
/// comparisons on the same values (for `dc-relational` that is
/// `Value::total_cmp`), otherwise pruning would be unsound.
pub trait ZoneValue: Clone + std::fmt::Debug {
    fn zcmp(&self, other: &Self) -> Ordering;
}

impl ZoneValue for i64 {
    fn zcmp(&self, other: &Self) -> Ordering {
        self.cmp(other)
    }
}

impl ZoneValue for String {
    fn zcmp(&self, other: &Self) -> Ordering {
        self.cmp(other)
    }
}

/// Min/max + null/row counts for one column over one segment.
///
/// `min`/`max` are `None` iff the segment has no non-null values in the
/// column (all-null or zero rows) — such a segment can never satisfy a
/// value predicate on that column.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap<V: ZoneValue> {
    pub min: Option<V>,
    pub max: Option<V>,
    pub null_count: u64,
    pub row_count: u64,
}

impl<V: ZoneValue> Default for ZoneMap<V> {
    fn default() -> Self {
        ZoneMap {
            min: None,
            max: None,
            null_count: 0,
            row_count: 0,
        }
    }
}

impl<V: ZoneValue> ZoneMap<V> {
    pub fn new() -> Self {
        ZoneMap::default()
    }

    /// Fold one non-null value into the summary.
    pub fn observe(&mut self, v: &V) {
        self.row_count += 1;
        match &self.min {
            Some(m) if v.zcmp(m) != Ordering::Less => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if v.zcmp(m) != Ordering::Greater => {}
            _ => self.max = Some(v.clone()),
        }
    }

    /// Fold one null into the summary.
    pub fn observe_null(&mut self) {
        self.row_count += 1;
        self.null_count += 1;
    }

    /// Whether `v` falls within `[min, max]`. `false` when the segment has
    /// no non-null values.
    pub fn contains(&self, v: &V) -> bool {
        match (&self.min, &self.max) {
            (Some(min), Some(max)) => {
                v.zcmp(min) != Ordering::Less && v.zcmp(max) != Ordering::Greater
            }
            _ => false,
        }
    }
}

/// One end of a range constraint, mirroring the executor's scan bounds.
#[derive(Debug, Clone, PartialEq)]
pub enum ZoneBound<V: ZoneValue> {
    Unbounded,
    Inclusive(V),
    Exclusive(V),
}

/// A conservative per-column predicate against zone maps: an optional range
/// plus an optional IN-list, both of which must admit the segment.
///
/// The constraint must be a *necessary* condition of the row-level filter
/// (every row the filter accepts satisfies it); `may_match` then soundly
/// skips segments whose zone ranges exclude it entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct ZonePredicate<V: ZoneValue> {
    /// Column position the zone maps are indexed by.
    pub column: usize,
    pub lower: ZoneBound<V>,
    pub upper: ZoneBound<V>,
    pub in_values: Option<Vec<V>>,
}

impl<V: ZoneValue> ZonePredicate<V> {
    /// A pure range predicate.
    pub fn range(column: usize, lower: ZoneBound<V>, upper: ZoneBound<V>) -> Self {
        ZonePredicate {
            column,
            lower,
            upper,
            in_values: None,
        }
    }

    /// A pure IN-list predicate.
    pub fn in_list(column: usize, values: Vec<V>) -> Self {
        ZonePredicate {
            column,
            lower: ZoneBound::Unbounded,
            upper: ZoneBound::Unbounded,
            in_values: Some(values),
        }
    }

    /// Whether the predicate carries any constraint at all.
    pub fn is_trivial(&self) -> bool {
        matches!(self.lower, ZoneBound::Unbounded)
            && matches!(self.upper, ZoneBound::Unbounded)
            && self.in_values.is_none()
    }

    /// `false` = no row in a segment with this zone map can satisfy the
    /// row-level filter; the segment may be skipped.
    pub fn may_match(&self, zone: &ZoneMap<V>) -> bool {
        let (Some(min), Some(max)) = (&zone.min, &zone.max) else {
            // No non-null values: a range or IN constraint on this column
            // (a necessary condition of the filter) cannot be met.
            return self.is_trivial();
        };
        let lower_ok = match &self.lower {
            ZoneBound::Unbounded => true,
            ZoneBound::Inclusive(l) => l.zcmp(max) != Ordering::Greater,
            ZoneBound::Exclusive(l) => l.zcmp(max) == Ordering::Less,
        };
        let upper_ok = match &self.upper {
            ZoneBound::Unbounded => true,
            ZoneBound::Inclusive(u) => u.zcmp(min) != Ordering::Less,
            ZoneBound::Exclusive(u) => u.zcmp(min) == Ordering::Greater,
        };
        let in_ok = match &self.in_values {
            None => true,
            Some(vals) => vals.iter().any(|v| zone.contains(v)),
        };
        lower_ok && upper_ok && in_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone(vals: &[i64], nulls: u64) -> ZoneMap<i64> {
        let mut z = ZoneMap::new();
        for v in vals {
            z.observe(v);
        }
        for _ in 0..nulls {
            z.observe_null();
        }
        z
    }

    #[test]
    fn observe_tracks_min_max_and_counts() {
        let z = zone(&[5, 1, 9, 3], 2);
        assert_eq!(z.min, Some(1));
        assert_eq!(z.max, Some(9));
        assert_eq!(z.null_count, 2);
        assert_eq!(z.row_count, 6);
        assert!(z.contains(&5));
        assert!(!z.contains(&10));
    }

    #[test]
    fn range_predicate_prunes_disjoint_zones() {
        let z = zone(&[10, 20], 0);
        // [25, ∞) vs [10,20]: disjoint.
        let p = ZonePredicate::range(0, ZoneBound::Inclusive(25), ZoneBound::Unbounded);
        assert!(!p.may_match(&z));
        // (20, ∞): still disjoint — exclusive bound at the max.
        let p = ZonePredicate::range(0, ZoneBound::Exclusive(20), ZoneBound::Unbounded);
        assert!(!p.may_match(&z));
        // [20, ∞): touches.
        let p = ZonePredicate::range(0, ZoneBound::Inclusive(20), ZoneBound::Unbounded);
        assert!(p.may_match(&z));
        // (-∞, 10) excludes, (-∞, 10] touches.
        let p = ZonePredicate::range(0, ZoneBound::Unbounded, ZoneBound::Exclusive(10));
        assert!(!p.may_match(&z));
        let p = ZonePredicate::range(0, ZoneBound::Unbounded, ZoneBound::Inclusive(10));
        assert!(p.may_match(&z));
    }

    #[test]
    fn in_list_predicate_checks_membership_range() {
        let z = zone(&[10, 20], 0);
        assert!(ZonePredicate::in_list(0, vec![15]).may_match(&z));
        assert!(!ZonePredicate::in_list(0, vec![1, 2, 30]).may_match(&z));
    }

    #[test]
    fn all_null_zone_is_prunable_by_any_constraint() {
        let z = zone(&[], 4);
        assert!(
            !ZonePredicate::range(0, ZoneBound::Inclusive(0), ZoneBound::Unbounded).may_match(&z)
        );
        assert!(!ZonePredicate::in_list(0, vec![0]).may_match(&z));
        // ...but a trivial predicate keeps it.
        assert!(
            ZonePredicate::<i64>::range(0, ZoneBound::Unbounded, ZoneBound::Unbounded)
                .may_match(&z)
        );
    }

    #[test]
    fn string_zones_work() {
        let mut z = ZoneMap::new();
        z.observe(&"case-003".to_string());
        z.observe(&"case-007".to_string());
        assert!(z.contains(&"case-005".to_string()));
        assert!(!z.contains(&"case-100".to_string()));
    }
}
