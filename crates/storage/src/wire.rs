//! Minimal byte-level wire format shared by the durable log and the
//! columnar segment files.
//!
//! Everything is little-endian and length-prefixed; strings are UTF-8
//! with a `u32` byte length. The reader never panics on malformed
//! input — every accessor returns a typed [`WireError`] so callers can
//! surface corruption instead of crashing mid-recovery.

use std::fmt;

/// Typed decode failure for the wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the requested number of bytes.
    Truncated { need: usize, have: usize },
    /// Structurally invalid payload (bad UTF-8, impossible length, ...).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated input: need {need} bytes, have {have}")
            }
            WireError::Malformed(msg) => write!(f, "malformed input: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only byte buffer builder.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Raw append without a length prefix (caller frames it).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over a byte slice with typed, non-panicking accessors.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Malformed(format!("bad bool byte {other}"))),
        }
    }

    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(self.get_u64()? as i64)
    }

    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes).map_err(|e| WireError::Malformed(format!("bad utf-8: {e}")))
    }

    /// Reads a `u32` count and sanity-checks it against the bytes left,
    /// assuming each element takes at least `min_elem_bytes`. Prevents
    /// huge-allocation attacks from corrupt length fields.
    pub fn get_count(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.get_u32()? as usize;
        let floor = n.saturating_mul(min_elem_bytes.max(1));
        if floor > self.remaining() {
            return Err(WireError::Malformed(format!(
                "count {n} needs at least {floor} bytes, have {}",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(2.5);
        w.put_str("reader-λ");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert_eq!(r.get_str().unwrap(), "reader-λ");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_typed() {
        let mut w = ByteWriter::new();
        w.put_u64(9);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(r.get_u64(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn bad_utf8_and_bool_are_malformed() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_str(), Err(WireError::Malformed(_))));
        let mut r = ByteReader::new(&[9u8]);
        assert!(matches!(r.get_bool(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn count_guard_rejects_absurd_lengths() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_count(8), Err(WireError::Malformed(_))));
    }
}
