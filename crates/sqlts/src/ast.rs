//! AST for the extended SQL-TS cleansing-rule language (paper §4.2).
//!
//! ```text
//! DEFINE      <rule name>
//! ON          <table name>
//! [FROM       <table name>]          -- defaults to the ON table
//! CLUSTER BY  <cluster key>          -- typically epc
//! SEQUENCE BY <sequence key>         -- typically rtime
//! AS          (<pattern>)            -- e.g. (A, B) or (A, *B)
//! WHERE       <condition>
//! ACTION      DELETE r | KEEP r | MODIFY r.col = expr [, r.col = expr]...
//! ```
//!
//! Conditions are ordinary scalar expressions ([`dc_relational::expr::Expr`])
//! in which a column's *qualifier* names a pattern reference: `b.rtime`
//! is "column rtime of the row(s) bound to reference B". Time-unit literals
//! (`5 mins`) are folded to seconds at parse time.

use dc_relational::expr::Expr;
use std::fmt;

/// One reference in a rule pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternRef {
    /// Reference name, lowercase.
    pub name: String,
    /// `true` for a `*`-designated set reference.
    pub is_set: bool,
}

impl fmt::Display for PatternRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_set {
            write!(f, "*{}", self.name.to_ascii_uppercase())
        } else {
            write!(f, "{}", self.name.to_ascii_uppercase())
        }
    }
}

/// An ordered pattern of references; adjacency between singletons implies
/// consecutive sequence positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    pub refs: Vec<PatternRef>,
}

impl Pattern {
    /// Position of a reference by name.
    pub fn position_of(&self, name: &str) -> Option<usize> {
        self.refs
            .iter()
            .position(|r| r.name.eq_ignore_ascii_case(name))
    }

    pub fn get(&self, name: &str) -> Option<&PatternRef> {
        self.refs.iter().find(|r| r.name.eq_ignore_ascii_case(name))
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, r) in self.refs.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{r}")?;
        }
        f.write_str(")")
    }
}

/// The ACTION clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Remove the rows bound to the named singleton reference when the
    /// condition holds.
    Delete(String),
    /// Keep *only* the rows bound to the named reference for which the
    /// condition holds (everything else is dropped).
    Keep(String),
    /// Set columns of the rows bound to the named reference when the
    /// condition holds. Assigning to a column that does not exist creates it
    /// on the fly (initialized to 0 / NULL elsewhere).
    Modify {
        target: String,
        assignments: Vec<(String, Expr)>,
    },
}

impl Action {
    /// The *target reference* of the rule (paper Definition 1): the
    /// reference the action applies to.
    pub fn target(&self) -> &str {
        match self {
            Action::Delete(r) | Action::Keep(r) => r,
            Action::Modify { target, .. } => target,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Delete(r) => write!(f, "DELETE {}", r.to_ascii_uppercase()),
            Action::Keep(r) => write!(f, "KEEP {}", r.to_ascii_uppercase()),
            Action::Modify {
                target,
                assignments,
            } => {
                f.write_str("MODIFY ")?;
                for (i, (col, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}.{col} = {e}", target.to_ascii_uppercase())?;
                }
                Ok(())
            }
        }
    }
}

/// A complete cleansing rule definition.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDef {
    pub name: String,
    /// Table the rule is defined ON (anomaly target; always the reads table
    /// in the paper).
    pub on_table: String,
    /// Table (or registered derived input) the rule reads FROM. Must include
    /// all columns of `on_table` and may add extra ones (paper §4.2).
    pub from_table: String,
    /// Cluster key (`partition by`), typically `epc`.
    pub cluster_by: String,
    /// Sequence key (`order by`), typically `rtime`.
    pub sequence_by: String,
    pub pattern: Pattern,
    pub condition: Expr,
    pub action: Action,
}

impl RuleDef {
    /// The target reference name.
    pub fn target(&self) -> &str {
        self.action.target()
    }

    /// Context references (every pattern reference except the target),
    /// in pattern order.
    pub fn context_refs(&self) -> Vec<&PatternRef> {
        self.pattern
            .refs
            .iter()
            .filter(|r| !r.name.eq_ignore_ascii_case(self.target()))
            .collect()
    }

    /// Is `name` declared in the pattern?
    pub fn has_ref(&self, name: &str) -> bool {
        self.pattern.position_of(name).is_some()
    }
}

impl fmt::Display for RuleDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DEFINE {}", self.name)?;
        writeln!(f, "ON {}", self.on_table)?;
        if self.from_table != self.on_table {
            writeln!(f, "FROM {}", self.from_table)?;
        }
        writeln!(f, "CLUSTER BY {}", self.cluster_by)?;
        writeln!(f, "SEQUENCE BY {}", self.sequence_by)?;
        writeln!(f, "AS {}", self.pattern)?;
        writeln!(f, "WHERE {}", self.condition)?;
        write!(f, "ACTION {}", self.action)
    }
}
