//! Semantic validation of rule definitions (paper §4.2 constraints).

use crate::ast::{Action, RuleDef};
use dc_relational::error::{Error, Result};
use dc_relational::expr::Expr;
use dc_relational::table::Catalog;
use std::collections::HashSet;

/// Validate the structural constraints of a rule (no catalog needed):
///
/// * pattern is non-empty with unique reference names;
/// * `*` set references appear only at the beginning or end of the pattern;
/// * the action targets a declared **singleton** reference;
/// * the condition references only declared pattern references;
/// * MODIFY assignment expressions reference only the target reference.
pub fn validate_rule(rule: &RuleDef) -> Result<()> {
    if rule.pattern.refs.is_empty() {
        return Err(Error::Plan(format!("rule '{}': empty pattern", rule.name)));
    }
    let mut seen = HashSet::new();
    for r in &rule.pattern.refs {
        if !seen.insert(r.name.clone()) {
            return Err(Error::Plan(format!(
                "rule '{}': duplicate pattern reference '{}'",
                rule.name, r.name
            )));
        }
    }
    let n = rule.pattern.refs.len();
    for (i, r) in rule.pattern.refs.iter().enumerate() {
        if r.is_set && i != 0 && i != n - 1 {
            return Err(Error::Plan(format!(
                "rule '{}': set reference '*{}' may only appear at the beginning or end of the pattern",
                rule.name,
                r.name.to_ascii_uppercase()
            )));
        }
    }
    let target = rule.target();
    match rule.pattern.get(target) {
        None => {
            return Err(Error::Plan(format!(
                "rule '{}': action targets undeclared reference '{}'",
                rule.name, target
            )))
        }
        Some(r) if r.is_set => {
            return Err(Error::Plan(format!(
                "rule '{}': action must target a singleton reference, '{}' is a set",
                rule.name, target
            )))
        }
        Some(_) => {}
    }
    check_refs_declared(rule, &rule.condition, "condition")?;
    if let Action::Modify { assignments, .. } = &rule.action {
        for (col, e) in assignments {
            let mut cols = Vec::new();
            e.referenced_columns(&mut cols);
            for c in &cols {
                match &c.qualifier {
                    Some(q) if q.eq_ignore_ascii_case(target) => {}
                    Some(q) => {
                        return Err(Error::Plan(format!(
                            "rule '{}': MODIFY {target}.{col} references non-target '{q}'",
                            rule.name
                        )))
                    }
                    None => {
                        return Err(Error::Plan(format!(
                            "rule '{}': MODIFY {target}.{col} uses unqualified column '{}'",
                            rule.name, c.name
                        )))
                    }
                }
            }
        }
    }
    Ok(())
}

fn check_refs_declared(rule: &RuleDef, expr: &Expr, what: &str) -> Result<()> {
    let mut cols = Vec::new();
    expr.referenced_columns(&mut cols);
    for c in &cols {
        match &c.qualifier {
            Some(q) if rule.has_ref(q) => {}
            Some(q) => {
                return Err(Error::Plan(format!(
                    "rule '{}': {what} references undeclared pattern reference '{}'",
                    rule.name, q
                )))
            }
            None => {
                return Err(Error::Plan(format!(
                    "rule '{}': {what} uses unqualified column '{}' — qualify it with a pattern reference",
                    rule.name, c.name
                )))
            }
        }
    }
    Ok(())
}

/// Validate a rule against a catalog:
///
/// * the ON and FROM tables exist;
/// * the FROM table's schema includes every column of the ON table
///   (paper §4.2: "the input table is required to have a schema including
///   all columns in R");
/// * cluster and sequence keys exist in the FROM table;
/// * every column the condition references exists in the FROM table.
pub fn validate_rule_against_catalog(rule: &RuleDef, catalog: &Catalog) -> Result<()> {
    validate_rule(rule)?;
    let on = catalog.get(&rule.on_table)?;
    let from = catalog.get(&rule.from_table)?;
    for f in on.schema().fields() {
        if from.schema().index_of(None, &f.name).is_err() {
            return Err(Error::Plan(format!(
                "rule '{}': FROM table '{}' is missing column '{}' of ON table '{}'",
                rule.name, rule.from_table, f.name, rule.on_table
            )));
        }
    }
    for key in [&rule.cluster_by, &rule.sequence_by] {
        from.schema().index_of(None, key).map_err(|_| {
            Error::Plan(format!(
                "rule '{}': key column '{}' not found in FROM table '{}'",
                rule.name, key, rule.from_table
            ))
        })?;
    }
    let mut cols = Vec::new();
    rule.condition.referenced_columns(&mut cols);
    if let Action::Modify { assignments, .. } = &rule.action {
        for (_, e) in assignments {
            e.referenced_columns(&mut cols);
        }
    }
    for c in &cols {
        // Columns introduced by an earlier MODIFY-on-the-fly (like
        // has_case_nearby) won't be in the base schema; they are resolved at
        // compile time across the rule chain, so only warn-level strictness
        // is possible here. We accept unknown columns if some earlier rule
        // could have created them — the rule engine re-validates chains.
        let _ = c;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;
    use dc_relational::batch::{schema_ref, Batch};
    use dc_relational::schema::{Field, Schema};
    use dc_relational::table::Table;
    use dc_relational::value::DataType;

    fn rule(text: &str) -> RuleDef {
        parse_rule(text).unwrap()
    }

    #[test]
    fn valid_rule_passes() {
        let r = rule(
            "DEFINE d ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.biz_loc = B.biz_loc ACTION DELETE B",
        );
        validate_rule(&r).unwrap();
    }

    #[test]
    fn star_in_middle_rejected() {
        let r = rule(
            "DEFINE d ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B, C) \
             WHERE A.x = C.x ACTION DELETE A",
        );
        let err = validate_rule(&r).unwrap_err();
        assert!(err.to_string().contains("beginning or end"));
    }

    #[test]
    fn star_at_ends_allowed() {
        let r = rule(
            "DEFINE d ON R CLUSTER BY epc SEQUENCE BY rtime AS (*X, A, *Y) \
             WHERE X.v = 1 or Y.v = 1 ACTION DELETE A",
        );
        validate_rule(&r).unwrap();
    }

    #[test]
    fn action_on_set_rejected() {
        let r = rule(
            "DEFINE d ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
             WHERE B.x = 1 ACTION DELETE B",
        );
        let err = validate_rule(&r).unwrap_err();
        assert!(err.to_string().contains("singleton"));
    }

    #[test]
    fn action_on_undeclared_rejected() {
        let r = rule(
            "DEFINE d ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.x = 1 ACTION DELETE Z",
        );
        assert!(validate_rule(&r).is_err());
    }

    #[test]
    fn condition_on_undeclared_rejected() {
        let r = rule(
            "DEFINE d ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.x = Z.x ACTION DELETE B",
        );
        let err = validate_rule(&r).unwrap_err();
        assert!(err.to_string().contains("undeclared"));
    }

    #[test]
    fn unqualified_condition_column_rejected() {
        let r = rule(
            "DEFINE d ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE rtime < 5 ACTION DELETE B",
        );
        let err = validate_rule(&r).unwrap_err();
        assert!(err.to_string().contains("qualify"));
    }

    #[test]
    fn duplicate_refs_rejected() {
        let r = rule(
            "DEFINE d ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, A) \
             WHERE A.x = 1 ACTION DELETE A",
        );
        assert!(validate_rule(&r).is_err());
    }

    #[test]
    fn modify_referencing_other_ref_rejected() {
        let r = rule(
            "DEFINE d ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.x = 1 ACTION MODIFY A.x = B.y",
        );
        let err = validate_rule(&r).unwrap_err();
        assert!(err.to_string().contains("non-target"));
    }

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
        ]));
        cat.register(Table::new("r", Batch::empty(schema.clone())));
        // Derived input missing biz_loc.
        let partial = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]));
        cat.register(Table::new("partial", Batch::empty(partial)));
        cat
    }

    #[test]
    fn catalog_validation() {
        let cat = catalog();
        let r = rule(
            "DEFINE d ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.biz_loc = B.biz_loc ACTION DELETE B",
        );
        validate_rule_against_catalog(&r, &cat).unwrap();

        let r = rule(
            "DEFINE d ON R FROM partial CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.rtime = B.rtime ACTION DELETE B",
        );
        let err = validate_rule_against_catalog(&r, &cat).unwrap_err();
        assert!(err.to_string().contains("missing column 'biz_loc'"));

        let r = rule(
            "DEFINE d ON R CLUSTER BY nope SEQUENCE BY rtime AS (A, B) \
             WHERE A.rtime = B.rtime ACTION DELETE B",
        );
        let err = validate_rule_against_catalog(&r, &cat).unwrap_err();
        assert!(err.to_string().contains("key column 'nope'"));
    }
}
