//! Parser for the extended SQL-TS rule language.
//!
//! Reuses the relational crate's SQL tokenizer; conditions follow SQL
//! expression grammar extended with time-unit literals (`5 mins`, `2 hours`)
//! which fold to integer seconds.

use crate::ast::{Action, Pattern, PatternRef, RuleDef};
use dc_relational::error::{Error, Result};
use dc_relational::expr::{BinaryOp, ColumnRef, Expr};
use dc_relational::sql::lexer::{tokenize, Token};
use dc_relational::value::Value;

/// Parse one rule definition.
pub fn parse_rule(text: &str) -> Result<RuleDef> {
    let tokens = tokenize(text)?;
    let mut p = RuleParser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let rule = p.parse_rule()?;
    p.expect_eof()?;
    Ok(rule)
}

/// Parse a rule condition on its own (useful for tests and tooling).
pub fn parse_condition(text: &str) -> Result<Expr> {
    let tokens = tokenize(text)?;
    let mut p = RuleParser {
        tokens,
        pos: 0,
        depth: 0,
    };
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// Seconds multiplier for a time-unit word.
fn time_unit_seconds(word: &str) -> Option<i64> {
    match word.to_ascii_lowercase().as_str() {
        "sec" | "secs" | "second" | "seconds" => Some(1),
        "min" | "mins" | "minute" | "minutes" => Some(60),
        "hour" | "hours" => Some(3600),
        "day" | "days" => Some(86400),
        _ => None,
    }
}

/// Maximum condition nesting depth; the descent is recursive, so wildly
/// nested input must fail with a parse error, not a stack overflow.
const MAX_EXPR_DEPTH: usize = 64;

struct RuleParser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl RuleParser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected keyword {kw}, found {}",
                self.peek()
            )))
        }
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(Error::Parse(format!("expected {t}, found {}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "unexpected trailing token {}",
                self.peek()
            )))
        }
    }

    fn expect_word(&mut self) -> Result<String> {
        match self.next() {
            Token::Word(w) => Ok(w),
            other => Err(Error::Parse(format!("expected identifier, found {other}"))),
        }
    }

    fn parse_rule(&mut self) -> Result<RuleDef> {
        self.expect_kw("define")?;
        let name = self.expect_word()?.to_ascii_lowercase();
        self.expect_kw("on")?;
        let on_table = self.expect_word()?.to_ascii_lowercase();
        let from_table = if self.eat_kw("from") {
            self.expect_word()?.to_ascii_lowercase()
        } else {
            on_table.clone()
        };
        self.expect_kw("cluster")?;
        self.expect_kw("by")?;
        let cluster_by = self.expect_word()?.to_ascii_lowercase();
        self.expect_kw("sequence")?;
        self.expect_kw("by")?;
        let sequence_by = self.expect_word()?.to_ascii_lowercase();
        self.expect_kw("as")?;
        let pattern = self.parse_pattern()?;
        self.expect_kw("where")?;
        let condition = self.parse_expr()?;
        self.expect_kw("action")?;
        let action = self.parse_action()?;
        Ok(RuleDef {
            name,
            on_table,
            from_table,
            cluster_by,
            sequence_by,
            pattern,
            condition,
            action,
        })
    }

    fn parse_pattern(&mut self) -> Result<Pattern> {
        self.expect(&Token::LParen)?;
        let mut refs = Vec::new();
        loop {
            let is_set = self.eat(&Token::Star);
            let name = self.expect_word()?.to_ascii_lowercase();
            refs.push(PatternRef { name, is_set });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Pattern { refs })
    }

    fn parse_action(&mut self) -> Result<Action> {
        if self.eat_kw("delete") {
            return Ok(Action::Delete(self.expect_word()?.to_ascii_lowercase()));
        }
        if self.eat_kw("keep") {
            return Ok(Action::Keep(self.expect_word()?.to_ascii_lowercase()));
        }
        self.expect_kw("modify")?;
        let mut target: Option<String> = None;
        let mut assignments = Vec::new();
        loop {
            let r = self.expect_word()?.to_ascii_lowercase();
            self.expect(&Token::Dot)?;
            let col = self.expect_word()?.to_ascii_lowercase();
            self.expect(&Token::Eq)?;
            let value = self.parse_additive()?;
            match &target {
                None => target = Some(r),
                Some(t) if *t == r => {}
                Some(t) => {
                    return Err(Error::Parse(format!(
                        "MODIFY must target a single reference, found both {t} and {r}"
                    )))
                }
            }
            assignments.push((col, value));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok(Action::Modify {
            target: target.expect("at least one assignment parsed"),
            assignments,
        })
    }

    // --- condition expression grammar (subset of SQL + time units) ---

    fn parse_expr(&mut self) -> Result<Expr> {
        self.guarded(|p| p.parse_or())
    }

    /// Run `f` one nesting level deeper, erroring out past the bound.
    fn guarded<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<T> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(Error::Parse(format!(
                "condition nesting exceeds {MAX_EXPR_DEPTH} levels"
            )));
        }
        let result = f(self);
        self.depth -= 1;
        result
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            left = left.or(self.parse_and()?);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            left = left.and(self.parse_not()?);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            // Direct self-recursion bypasses parse_expr's charge.
            self.guarded(|p| Ok(Expr::Not(Box::new(p.parse_not()?))))
        } else {
            self.parse_predicate()
        }
    }

    fn parse_predicate(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        let op = match self.peek() {
            Token::Eq => Some(BinaryOp::Eq),
            Token::NotEq => Some(BinaryOp::NotEq),
            Token::Lt => Some(BinaryOp::Lt),
            Token::LtEq => Some(BinaryOp::LtEq),
            Token::Gt => Some(BinaryOp::Gt),
            Token::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.peek().is_kw("not") {
            let next = self.tokens.get(self.pos + 1);
            if next.is_some_and(|t| t.is_kw("in")) {
                self.pos += 1;
                true
            } else {
                false
            }
        } else {
            false
        };
        if self.eat_kw("in") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                match self.next() {
                    Token::Int(v) => list.push(Value::Int(v)),
                    Token::Float(v) => list.push(Value::Double(v)),
                    Token::Str(s) => list.push(Value::str(s)),
                    other => {
                        return Err(Error::Parse(format!(
                            "IN list supports literals only, found {other}"
                        )))
                    }
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_term()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Plus,
                Token::Minus => BinaryOp::Minus,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_term()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_term(&mut self) -> Result<Expr> {
        let mut left = self.parse_factor()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Multiply,
                Token::Slash => BinaryOp::Divide,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_factor()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_factor(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.pos += 1;
                // Time-unit suffix?
                if let Token::Word(w) = self.peek().clone() {
                    if let Some(mult) = time_unit_seconds(&w) {
                        self.pos += 1;
                        return Ok(Expr::lit(v * mult));
                    }
                }
                Ok(Expr::lit(v))
            }
            Token::Float(v) => {
                self.pos += 1;
                if let Token::Word(w) = self.peek().clone() {
                    if let Some(mult) = time_unit_seconds(&w) {
                        self.pos += 1;
                        return Ok(Expr::lit((v * mult as f64) as i64));
                    }
                }
                Ok(Expr::lit(v))
            }
            Token::Str(s) => {
                self.pos += 1;
                Ok(Expr::lit(s.as_str()))
            }
            Token::Minus => {
                self.pos += 1;
                let inner = self.guarded(|p| p.parse_factor())?;
                Ok(match inner {
                    Expr::Literal(Value::Int(v)) => Expr::lit(-v),
                    Expr::Literal(Value::Double(v)) => Expr::lit(-v),
                    other => Expr::binary(Expr::lit(0i64), BinaryOp::Minus, other),
                })
            }
            Token::LParen => {
                self.pos += 1;
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Word(w) if w.eq_ignore_ascii_case("null") => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null))
            }
            // The §4.3 count() extension: count(<predicate over a set ref>).
            Token::Word(w)
                if w.eq_ignore_ascii_case("count")
                    && self.tokens.get(self.pos + 1) == Some(&Token::LParen) =>
            {
                self.pos += 2; // consume `count` and `(`
                let inner = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::CountIf(Box::new(inner)))
            }
            Token::Word(w) => {
                self.pos += 1;
                if self.eat(&Token::Dot) {
                    let col = self.expect_word()?;
                    Ok(Expr::Column(ColumnRef::qualified(w, col)))
                } else {
                    Ok(Expr::Column(ColumnRef::new(w)))
                }
            }
            other => Err(Error::Parse(format!(
                "unexpected token {other} in rule condition"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DUP_RULE: &str = "\
        DEFINE duplicate ON R CLUSTER BY epc SEQUENCE BY rtime \
        AS (A, B) \
        WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins \
        ACTION DELETE B";

    #[test]
    fn parse_duplicate_rule() {
        let r = parse_rule(DUP_RULE).unwrap();
        assert_eq!(r.name, "duplicate");
        assert_eq!(r.on_table, "r");
        assert_eq!(r.from_table, "r");
        assert_eq!(r.cluster_by, "epc");
        assert_eq!(r.sequence_by, "rtime");
        assert_eq!(r.pattern.refs.len(), 2);
        assert!(!r.pattern.refs[0].is_set);
        assert_eq!(r.target(), "b");
        assert_eq!(r.context_refs().len(), 1);
        assert_eq!(r.context_refs()[0].name, "a");
    }

    #[test]
    fn time_units_fold_to_seconds() {
        let e = parse_condition("B.rtime - A.rtime < 5 mins").unwrap();
        assert!(e.to_string().contains("300"));
        let e = parse_condition("x < 2 hours").unwrap();
        assert!(e.to_string().contains("7200"));
        let e = parse_condition("x < 30 secs").unwrap();
        assert!(e.to_string().contains("30"));
    }

    #[test]
    fn star_reference() {
        let r = parse_rule(
            "DEFINE reader ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
             WHERE B.reader = 'readerX' and B.rtime - A.rtime < 10 mins ACTION DELETE A",
        )
        .unwrap();
        assert!(r.pattern.refs[1].is_set);
        assert_eq!(r.target(), "a");
    }

    #[test]
    fn modify_action_with_multiple_assignments() {
        let r = parse_rule(
            "DEFINE fix ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.biz_loc = 'loc2' ACTION MODIFY A.biz_loc = 'loc1', A.fixed = 1",
        )
        .unwrap();
        let Action::Modify {
            target,
            assignments,
        } = &r.action
        else {
            panic!()
        };
        assert_eq!(target, "a");
        assert_eq!(assignments.len(), 2);
        assert_eq!(assignments[0].0, "biz_loc");
    }

    #[test]
    fn modify_two_targets_rejected() {
        let err = parse_rule(
            "DEFINE bad ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.x = 1 ACTION MODIFY A.x = 1, B.y = 2",
        )
        .unwrap_err();
        assert!(err.to_string().contains("single reference"));
    }

    #[test]
    fn from_clause_defaults_to_on() {
        let r = parse_rule(
            "DEFINE m ON R FROM r_with_pallets CLUSTER BY epc SEQUENCE BY rtime \
             AS (A, *B) WHERE A.is_pallet = 0 ACTION KEEP A",
        )
        .unwrap();
        assert_eq!(r.on_table, "r");
        assert_eq!(r.from_table, "r_with_pallets");
    }

    #[test]
    fn keep_action() {
        let r = parse_rule(
            "DEFINE k ON R CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
             WHERE A.is_pallet = 0 or (A.x = 0 and B.x = 1) ACTION KEEP A",
        )
        .unwrap();
        assert!(matches!(r.action, Action::Keep(ref t) if t == "a"));
    }

    #[test]
    fn display_roundtrip() {
        let r = parse_rule(DUP_RULE).unwrap();
        let r2 = parse_rule(&r.to_string()).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_rule("DEFINE x ON t AS (A) WHERE 1 ACTION DELETE A").is_err()); // no cluster by
        assert!(parse_rule(
            "DEFINE x ON t CLUSTER BY epc SEQUENCE BY rtime AS () WHERE 1=1 ACTION DELETE A"
        )
        .is_err()); // empty pattern
        assert!(parse_condition("a.b <").is_err());
    }

    #[test]
    fn condition_qualifiers_are_ref_names() {
        let e = parse_condition("A.rtime < B.rtime").unwrap();
        let mut cols = vec![];
        e.referenced_columns(&mut cols);
        assert_eq!(cols[0].qualifier.as_deref(), Some("a"));
        assert_eq!(cols[1].qualifier.as_deref(), Some("b"));
    }
}
