//! # dc-sqlts — the extended SQL-TS cleansing-rule language
//!
//! The paper (§4.2) extends SQL-TS — a declarative sequence-pattern language —
//! with an `ACTION` clause (`DELETE` / `MODIFY` / `KEEP`) and a separate
//! `FROM` input table, yielding a compact way to express RFID cleansing
//! rules:
//!
//! ```
//! use dc_sqlts::parse_rule;
//!
//! let rule = parse_rule(
//!     "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime \
//!      AS (A, B) \
//!      WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins \
//!      ACTION DELETE B",
//! ).unwrap();
//! assert_eq!(rule.target(), "b");
//! ```
//!
//! A pattern `(A, B)` binds two *adjacent* rows of an EPC sequence; a
//! star reference (`*B`, only at either end) binds the set of rows before or
//! after the adjacent singletons, with existential condition semantics.
//! Conditions are ordinary scalar expressions whose column qualifiers name
//! pattern references; time-unit literals (`5 mins`) fold to seconds.
//!
//! The companion crate `dc-rules` compiles these definitions into SQL/OLAP
//! window-function templates for execution.

pub mod ast;
pub mod parser;
pub mod validate;

pub use ast::{Action, Pattern, PatternRef, RuleDef};
pub use parser::{parse_condition, parse_rule};
pub use validate::{validate_rule, validate_rule_against_catalog};
