//! Durable shard state: the commit log schema, recovery, and historical
//! snapshot materialization.
//!
//! Each shard owns one directory holding an append-only `commit.log`
//! plus a `seg/` directory of immutable columnar segment files. The log
//! is the source of truth for *metadata* — table definitions, segment
//! membership per epoch, rules versions — while segment files hold the
//! rows. Because every `SegmentAdded` record embeds the segment's zone
//! maps and verified sort order, recovery (and `AS OF` materialization)
//! can decide which files a scan even opens without touching them:
//! delta-kernel-style data skipping from log metadata alone.
//!
//! Write protocol per epoch: segment files first (atomic tmp + fsync +
//! rename + dir fsync), then `SegmentAdded` records, then `EpochCommit`,
//! then one log fsync. An epoch is durable iff its `EpochCommit` is
//! readable; everything after the last commit is a crash artifact that
//! recovery discards (and compaction truncates).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use dc_log::{read_log, LogDir, LogError, LogWriter};
use dc_relational::persist::{decode_segment_file, encode_segment_file, ValueWire};
use dc_relational::prelude::*;
use dc_storage::persist::{decode_segment_meta, encode_segment_meta};
use dc_storage::{ByteReader, ByteWriter, Segment, ZonePredicate};
use parking_lot::Mutex;
use std::sync::Arc;

use crate::DeferredCleansingSystem;

type LogResult<T> = std::result::Result<T, LogError>;

/// Relative name of a shard's commit log inside its directory.
pub const COMMIT_LOG: &str = "commit.log";

const KIND_TABLE_CREATED: u8 = 1;
const KIND_SEGMENT_ADDED: u8 = 2;
const KIND_EPOCH_COMMIT: u8 = 3;
const KIND_RULES: u8 = 4;
const KIND_TOPOLOGY: u8 = 5;
const KIND_GLOBAL_COMMIT: u8 = 6;

/// One record of the durable commit log. Shard logs carry the first
/// four kinds; the service's root manifest carries the last two.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A table registered at bootstrap: schema plus the physical knobs
    /// (segment target, declared sequence order, index set) needed to
    /// reconstruct an equivalent live table.
    TableCreated {
        name: String,
        fields: Vec<Field>,
        segment_rows: u64, // 0 = unset
        seq_order: Vec<u32>,
        indexes: Vec<String>,
    },
    /// A sealed segment written for `epoch`, with its full metadata
    /// (zone maps + verified order) embedded so pruning needs no file
    /// access.
    SegmentAdded {
        table: String,
        epoch: u64,
        file: String,
        meta: Segment<Value>,
    },
    /// Epoch barrier: everything logged since the previous commit is
    /// part of `epoch`, which is durable once this record is synced.
    EpochCommit { epoch: u64 },
    /// A rules-catalog version (serialized as JSON). Not epoch data:
    /// recovery applies the latest readable version.
    Rules { version: u64, json: String },
    /// Root-manifest: the sharded service's fixed topology.
    Topology {
        shards: u32,
        key: String,         // empty = unsharded / no partition key
        cache_capacity: u64, // 0 = cleanse cache disabled
    },
    /// Root-manifest: global epoch `global` maps to this per-shard
    /// epoch vector, durable once every shard's log covers it.
    GlobalCommit { global: u64, vector: Vec<u64> },
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Double => 2,
        DataType::Str => 3,
    }
}

fn tag_dtype(tag: u8) -> LogResult<DataType> {
    match tag {
        0 => Ok(DataType::Bool),
        1 => Ok(DataType::Int),
        2 => Ok(DataType::Double),
        3 => Ok(DataType::Str),
        other => Err(LogError::malformed(format!("bad dtype tag {other}"))),
    }
}

/// Serialize one record to a log payload (the framing — length and
/// checksum — is the log writer's job).
pub fn encode_record(rec: &LogRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match rec {
        LogRecord::TableCreated {
            name,
            fields,
            segment_rows,
            seq_order,
            indexes,
        } => {
            w.put_u8(KIND_TABLE_CREATED);
            w.put_str(name);
            w.put_u32(fields.len() as u32);
            for f in fields {
                match &f.qualifier {
                    None => w.put_u8(0),
                    Some(q) => {
                        w.put_u8(1);
                        w.put_str(q);
                    }
                }
                w.put_str(&f.name);
                w.put_u8(dtype_tag(f.data_type));
            }
            w.put_u64(*segment_rows);
            w.put_u32(seq_order.len() as u32);
            for &c in seq_order {
                w.put_u32(c);
            }
            w.put_u32(indexes.len() as u32);
            for i in indexes {
                w.put_str(i);
            }
        }
        LogRecord::SegmentAdded {
            table,
            epoch,
            file,
            meta,
        } => {
            w.put_u8(KIND_SEGMENT_ADDED);
            w.put_str(table);
            w.put_u64(*epoch);
            w.put_str(file);
            encode_segment_meta(&ValueWire, meta, &mut w);
        }
        LogRecord::EpochCommit { epoch } => {
            w.put_u8(KIND_EPOCH_COMMIT);
            w.put_u64(*epoch);
        }
        LogRecord::Rules { version, json } => {
            w.put_u8(KIND_RULES);
            w.put_u64(*version);
            w.put_str(json);
        }
        LogRecord::Topology {
            shards,
            key,
            cache_capacity,
        } => {
            w.put_u8(KIND_TOPOLOGY);
            w.put_u32(*shards);
            w.put_str(key);
            w.put_u64(*cache_capacity);
        }
        LogRecord::GlobalCommit { global, vector } => {
            w.put_u8(KIND_GLOBAL_COMMIT);
            w.put_u64(*global);
            w.put_u32(vector.len() as u32);
            for &e in vector {
                w.put_u64(e);
            }
        }
    }
    w.into_bytes()
}

/// Decode one checksummed log payload. Fails typed on unknown kinds and
/// structural damage; never panics.
pub fn decode_record(payload: &[u8]) -> LogResult<LogRecord> {
    let mut r = ByteReader::new(payload);
    let kind = r.get_u8()?;
    let rec = match kind {
        KIND_TABLE_CREATED => {
            let name = r.get_str()?.to_string();
            let nfields = r.get_count(3)?;
            let mut fields = Vec::with_capacity(nfields);
            for _ in 0..nfields {
                let qualifier = match r.get_u8()? {
                    0 => None,
                    1 => Some(r.get_str()?.to_string()),
                    other => return Err(LogError::malformed(format!("bad qualifier tag {other}"))),
                };
                let fname = r.get_str()?.to_string();
                let dt = tag_dtype(r.get_u8()?)?;
                fields.push(match qualifier {
                    Some(q) => Field::qualified(q, fname, dt),
                    None => Field::new(fname, dt),
                });
            }
            let segment_rows = r.get_u64()?;
            let n_order = r.get_count(4)?;
            let mut seq_order = Vec::with_capacity(n_order);
            for _ in 0..n_order {
                seq_order.push(r.get_u32()?);
            }
            let n_idx = r.get_count(4)?;
            let mut indexes = Vec::with_capacity(n_idx);
            for _ in 0..n_idx {
                indexes.push(r.get_str()?.to_string());
            }
            LogRecord::TableCreated {
                name,
                fields,
                segment_rows,
                seq_order,
                indexes,
            }
        }
        KIND_SEGMENT_ADDED => {
            let table = r.get_str()?.to_string();
            let epoch = r.get_u64()?;
            let file = r.get_str()?.to_string();
            let meta = decode_segment_meta(&ValueWire, &mut r)?;
            LogRecord::SegmentAdded {
                table,
                epoch,
                file,
                meta,
            }
        }
        KIND_EPOCH_COMMIT => LogRecord::EpochCommit {
            epoch: r.get_u64()?,
        },
        KIND_RULES => LogRecord::Rules {
            version: r.get_u64()?,
            json: r.get_str()?.to_string(),
        },
        KIND_TOPOLOGY => LogRecord::Topology {
            shards: r.get_u32()?,
            key: r.get_str()?.to_string(),
            cache_capacity: r.get_u64()?,
        },
        KIND_GLOBAL_COMMIT => {
            let global = r.get_u64()?;
            let n = r.get_count(8)?;
            let mut vector = Vec::with_capacity(n);
            for _ in 0..n {
                vector.push(r.get_u64()?);
            }
            LogRecord::GlobalCommit { global, vector }
        }
        other => return Err(LogError::BadKind { kind: other }),
    };
    if !r.is_empty() {
        return Err(LogError::malformed(format!(
            "{} trailing bytes after record",
            r.remaining()
        )));
    }
    Ok(rec)
}

/// Relative path of a segment file inside a shard directory.
pub fn segment_file_name(table: &str, id: u64) -> String {
    format!("seg/{table}.{id:06}.seg")
}

fn engine_err(context: &str, e: &Error) -> LogError {
    LogError::malformed(format!("{context}: {}", e.message()))
}

/// Writer for one shard's durable state: commit log + segment files.
#[derive(Debug)]
pub struct ShardLog {
    dir: LogDir,
    writer: LogWriter,
}

impl ShardLog {
    /// Open a shard directory for writing (creating `seg/` and the log
    /// as needed). Appends to an existing log — run recovery (and
    /// compaction) first when reopening after a crash.
    pub fn create(dir: LogDir) -> LogResult<Self> {
        dir.subdir("seg")?;
        let writer = LogWriter::open(&dir, COMMIT_LOG)?;
        Ok(ShardLog { dir, writer })
    }

    pub fn dir(&self) -> &LogDir {
        &self.dir
    }

    /// Append one record without syncing.
    pub fn append_record(&mut self, rec: &LogRecord) -> LogResult<()> {
        self.writer.append(&encode_record(rec))
    }

    /// Durability barrier for everything appended so far.
    pub fn sync(&mut self) -> LogResult<()> {
        self.writer.sync()
    }

    /// Record the initial catalog state as epoch 0: every table's
    /// definition and initial segments, the initial rules version, and
    /// the epoch-0 commit.
    pub fn log_bootstrap(
        &mut self,
        catalog: &Catalog,
        rules_version: u64,
        rules_json: &str,
    ) -> LogResult<()> {
        for name in catalog.table_names() {
            let table = catalog
                .get(&name)
                .map_err(|e| engine_err("bootstrap", &e))?;
            self.append_record(&LogRecord::TableCreated {
                name: name.clone(),
                fields: table.schema().fields().to_vec(),
                segment_rows: table.segment_target_rows().unwrap_or(0) as u64,
                seq_order: table.sequence_order().iter().map(|&c| c as u32).collect(),
                indexes: table
                    .indexed_columns()
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            })?;
            self.log_table_append(&table, 0, 0)?;
        }
        self.append_record(&LogRecord::Rules {
            version: rules_version,
            json: rules_json.to_string(),
        })?;
        self.commit_epoch(0)
    }

    /// Persist every segment of `table` from position `prev_segments`
    /// on as files + `SegmentAdded` records tagged with `epoch`. Files
    /// go first so a committed record never references a missing file.
    pub fn log_table_append(
        &mut self,
        table: &Table,
        prev_segments: usize,
        epoch: u64,
    ) -> LogResult<()> {
        for seg in &table.segments()[prev_segments..] {
            let file = segment_file_name(table.name(), seg.id);
            let rows = table.data().slice(seg.start, seg.rows);
            let bytes =
                encode_segment_file(&rows, seg).map_err(|e| engine_err("segment encode", &e))?;
            self.dir.write_atomic(&file, &bytes)?;
            self.append_record(&LogRecord::SegmentAdded {
                table: table.name().to_string(),
                epoch,
                file,
                meta: seg.clone(),
            })?;
        }
        Ok(())
    }

    /// Commit `epoch`: the one fsync that makes it durable.
    pub fn commit_epoch(&mut self, epoch: u64) -> LogResult<()> {
        self.append_record(&LogRecord::EpochCommit { epoch })?;
        self.sync()
    }

    /// Record and sync a new rules version.
    pub fn log_rules(&mut self, version: u64, json: &str) -> LogResult<()> {
        self.append_record(&LogRecord::Rules {
            version,
            json: json.to_string(),
        })?;
        self.sync()
    }
}

/// A recovered table definition.
#[derive(Debug, Clone)]
pub struct TableSpec {
    pub name: String,
    pub fields: Vec<Field>,
    pub segment_rows: Option<usize>,
    pub seq_order: Vec<usize>,
    pub indexes: Vec<String>,
}

/// One committed `SegmentAdded` record.
#[derive(Debug, Clone)]
pub struct SegmentEntry {
    pub table: String,
    pub epoch: u64,
    pub file: String,
    pub meta: Segment<Value>,
}

/// The durable state decoded from one shard's commit log.
#[derive(Debug)]
pub struct ShardRecovery {
    pub tables: Vec<TableSpec>,
    /// Committed segments only (epoch ≤ `durable_epoch`), in log order.
    pub segments: Vec<SegmentEntry>,
    /// Highest committed epoch; epochs are validated dense from 0.
    pub durable_epoch: u64,
    /// Latest readable rules version, if any was logged.
    pub rules: Option<(u64, String)>,
    /// Records in the valid log prefix (durable or not).
    pub records_replayed: u64,
    /// Why the log scan stopped, if it did not end on a record boundary
    /// (torn tail after a crash). The durable prefix is unaffected.
    pub tail: Option<LogError>,
}

/// Replay one shard's commit log into its durable state. A torn or
/// checksum-failing tail ends the scan (crash semantics); a record that
/// passes its checksum but does not decode is corruption and fails hard.
pub fn recover_shard(dir: &LogDir) -> LogResult<ShardRecovery> {
    let (payloads, tail) = read_log(dir, COMMIT_LOG)?;
    let mut tables: Vec<TableSpec> = Vec::new();
    let mut committed: Vec<SegmentEntry> = Vec::new();
    let mut pending: Vec<SegmentEntry> = Vec::new();
    let mut durable_epoch: Option<u64> = None;
    let mut rules: Option<(u64, String)> = None;
    for payload in &payloads {
        match decode_record(payload)? {
            LogRecord::TableCreated {
                name,
                fields,
                segment_rows,
                seq_order,
                indexes,
            } => {
                if tables.iter().any(|t| t.name == name) {
                    return Err(LogError::malformed(format!("table '{name}' created twice")));
                }
                tables.push(TableSpec {
                    name,
                    fields,
                    segment_rows: (segment_rows > 0).then_some(segment_rows as usize),
                    seq_order: seq_order.into_iter().map(|c| c as usize).collect(),
                    indexes,
                });
            }
            LogRecord::SegmentAdded {
                table,
                epoch,
                file,
                meta,
            } => {
                if !tables.iter().any(|t| t.name == table) {
                    return Err(LogError::malformed(format!(
                        "segment for unknown table '{table}'"
                    )));
                }
                pending.push(SegmentEntry {
                    table,
                    epoch,
                    file,
                    meta,
                });
            }
            LogRecord::EpochCommit { epoch } => {
                let expected = durable_epoch.map_or(0, |e| e + 1);
                if epoch != expected {
                    return Err(LogError::malformed(format!(
                        "epoch commit {epoch}, expected {expected}: history not dense"
                    )));
                }
                if let Some(bad) = pending.iter().find(|s| s.epoch != epoch) {
                    return Err(LogError::malformed(format!(
                        "segment tagged epoch {} committed under epoch {epoch}",
                        bad.epoch
                    )));
                }
                committed.append(&mut pending);
                durable_epoch = Some(epoch);
            }
            LogRecord::Rules { version, json } => rules = Some((version, json)),
            rec @ (LogRecord::Topology { .. } | LogRecord::GlobalCommit { .. }) => {
                return Err(LogError::malformed(format!(
                    "manifest record {rec:?} in a shard log"
                )));
            }
        }
    }
    let durable_epoch = durable_epoch.ok_or_else(|| {
        LogError::malformed("no committed epoch in log: bootstrap never became durable")
    })?;
    Ok(ShardRecovery {
        tables,
        segments: committed,
        durable_epoch,
        rules,
        records_replayed: payloads.len() as u64,
        tail,
    })
}

/// Rewrite a shard's commit log to exactly its durable prefix: table
/// definitions, the latest rules, and each epoch's segments + commit.
/// Run after recovery and before reopening the log for appends, so a
/// torn tail or uncommitted suffix can never corrupt later records.
pub fn compact_shard_log(dir: &LogDir, rec: &ShardRecovery) -> LogResult<()> {
    let mut buf = Vec::new();
    let mut frame = |record: &LogRecord| {
        buf.extend_from_slice(&dc_log::frame_record(&encode_record(record)));
    };
    for t in &rec.tables {
        frame(&LogRecord::TableCreated {
            name: t.name.clone(),
            fields: t.fields.clone(),
            segment_rows: t.segment_rows.unwrap_or(0) as u64,
            seq_order: t.seq_order.iter().map(|&c| c as u32).collect(),
            indexes: t.indexes.clone(),
        });
    }
    if let Some((version, json)) = &rec.rules {
        frame(&LogRecord::Rules {
            version: *version,
            json: json.clone(),
        });
    }
    for epoch in 0..=rec.durable_epoch {
        for s in rec.segments.iter().filter(|s| s.epoch == epoch) {
            frame(&LogRecord::SegmentAdded {
                table: s.table.clone(),
                epoch: s.epoch,
                file: s.file.clone(),
                meta: s.meta.clone(),
            });
        }
        frame(&LogRecord::EpochCommit { epoch });
    }
    dir.write_atomic(COMMIT_LOG, &buf)
}

/// Lazily decoded segment files with a decode-once cache and pruning
/// counters. Loads validate the file checksum *and* that the file's
/// embedded metadata matches the log's — the log and the file must
/// agree before any row is trusted.
#[derive(Debug)]
pub struct SegmentStore {
    dir: LogDir,
    cache: Mutex<HashMap<String, Arc<Batch>>>,
    loaded: AtomicU64,
    pruned: AtomicU64,
}

impl SegmentStore {
    pub fn new(dir: LogDir) -> Self {
        SegmentStore {
            dir,
            cache: Mutex::new(HashMap::new()),
            loaded: AtomicU64::new(0),
            pruned: AtomicU64::new(0),
        }
    }

    /// Rows of one committed segment, decoding the file at most once.
    pub fn load(&self, entry: &SegmentEntry) -> LogResult<Arc<Batch>> {
        if let Some(batch) = self.cache.lock().get(&entry.file) {
            return Ok(Arc::clone(batch));
        }
        let bytes = self.dir.read(&entry.file)?;
        let (batch, meta) = decode_segment_file(&bytes).map_err(|e| LogError::Corrupt {
            file: entry.file.clone(),
            detail: e.message().to_string(),
        })?;
        if meta != entry.meta {
            return Err(LogError::Corrupt {
                file: entry.file.clone(),
                detail: "file metadata disagrees with commit log".to_string(),
            });
        }
        let batch = Arc::new(batch);
        self.loaded.fetch_add(1, Ordering::Relaxed);
        self.cache
            .lock()
            .insert(entry.file.clone(), Arc::clone(&batch));
        Ok(batch)
    }

    /// Segment files decoded from disk so far (cache misses).
    pub fn segments_loaded(&self) -> u64 {
        self.loaded.load(Ordering::Relaxed)
    }

    /// Segments skipped without opening their file because the zone
    /// maps recorded in the log refuted a predicate.
    pub fn segments_pruned(&self) -> u64 {
        self.pruned.load(Ordering::Relaxed)
    }

    /// Open only the entries whose logged zone maps admit `predicates`
    /// — zone-refuted files are never read, which is the point of
    /// embedding zone maps in the log.
    pub fn open_pruned(
        &self,
        entries: &[SegmentEntry],
        predicates: &[ZonePredicate<Value>],
    ) -> LogResult<Vec<(Arc<Batch>, Segment<Value>)>> {
        let mut out = Vec::new();
        for entry in entries {
            if !entry.meta.may_match_all(predicates) {
                self.pruned.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            out.push((self.load(entry)?, entry.meta.clone()));
        }
        Ok(out)
    }
}

/// Materialize the catalog as of shard epoch `epoch`: for each table,
/// load the committed segments with `epoch ≤ E` in id order, validate
/// the schema against the table definition, and reassemble a live
/// [`Table`] with the logged segment metadata.
pub fn materialize_catalog(
    rec: &ShardRecovery,
    epoch: u64,
    store: &SegmentStore,
) -> LogResult<Catalog> {
    if epoch > rec.durable_epoch {
        return Err(LogError::malformed(format!(
            "epoch {epoch} beyond durable epoch {}",
            rec.durable_epoch
        )));
    }
    let catalog = Catalog::new();
    for spec in &rec.tables {
        let schema = schema_ref(Schema::new(spec.fields.clone()));
        let entries: Vec<&SegmentEntry> = rec
            .segments
            .iter()
            .filter(|s| s.table == spec.name && s.epoch <= epoch)
            .collect();
        let mut parts = Vec::with_capacity(entries.len());
        let mut metas = Vec::with_capacity(entries.len());
        for e in &entries {
            let batch = store.load(e)?;
            if batch.schema() != &schema {
                return Err(LogError::Corrupt {
                    file: e.file.clone(),
                    detail: format!(
                        "segment schema [{}] != table schema [{}]",
                        batch.schema(),
                        schema
                    ),
                });
            }
            parts.push((*batch).clone());
            metas.push(e.meta.clone());
        }
        let data = if parts.is_empty() {
            Batch::empty(schema)
        } else {
            Batch::concat(&parts).map_err(|e| engine_err("segment concat", &e))?
        };
        let table = Table::from_recovered(
            &spec.name,
            data,
            metas,
            spec.segment_rows,
            spec.seq_order.clone(),
            &spec.indexes,
        )
        .map_err(|e| engine_err(&format!("table '{}'", spec.name), &e))?;
        catalog.register(table);
    }
    Ok(catalog)
}

/// Summary of a standalone (unsharded) recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    pub durable_epoch: u64,
    pub log_records_replayed: u64,
    pub segments_recorded: u64,
    pub segments_loaded: u64,
    pub rules_version: u64,
}

/// Recover a standalone [`DeferredCleansingSystem`] from a shard
/// directory: replay the log, materialize the catalog at the durable
/// epoch, and restore the latest rules version.
pub fn recover_system(dir: &LogDir) -> LogResult<(DeferredCleansingSystem, RecoveryReport)> {
    let rec = recover_shard(dir)?;
    let store = SegmentStore::new(dir.clone());
    let catalog = materialize_catalog(&rec, rec.durable_epoch, &store)?;
    let mut sys = DeferredCleansingSystem::with_catalog(Arc::new(catalog));
    let mut rules_version = 0;
    if let Some((version, json)) = &rec.rules {
        sys.load_rules_from_json(json)
            .map_err(|e| engine_err("rules restore", &e))?;
        rules_version = *version;
    }
    let report = RecoveryReport {
        durable_epoch: rec.durable_epoch,
        log_records_replayed: rec.records_replayed,
        segments_recorded: rec.segments.len() as u64,
        segments_loaded: store.segments_loaded(),
        rules_version,
    };
    Ok((sys, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads_table(rows: usize) -> Table {
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
        ]));
        let data: Vec<Vec<Value>> = (0..rows)
            .map(|i| {
                vec![
                    Value::str(format!("e{:02}", i % 4)),
                    Value::Int(i as i64 * 10),
                    Value::str("dock"),
                ]
            })
            .collect();
        let mut t = Table::with_segment_rows("caser", Batch::from_rows(schema, &data).unwrap(), 4);
        t.set_sequence_order(&["epc", "rtime"]).unwrap();
        t.create_index("epc").unwrap();
        t
    }

    fn rows_of(b: &Batch) -> Vec<Vec<Value>> {
        (0..b.num_rows()).map(|i| b.row(i)).collect()
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("dc-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn record_roundtrip() {
        let t = reads_table(8);
        let records = vec![
            LogRecord::TableCreated {
                name: "caser".into(),
                fields: t.schema().fields().to_vec(),
                segment_rows: 4,
                seq_order: vec![0, 1],
                indexes: vec!["epc".into()],
            },
            LogRecord::SegmentAdded {
                table: "caser".into(),
                epoch: 3,
                file: segment_file_name("caser", 2),
                meta: t.segments()[1].clone(),
            },
            LogRecord::EpochCommit { epoch: 3 },
            LogRecord::Rules {
                version: 2,
                json: "{\"rules\":[]}".into(),
            },
            LogRecord::Topology {
                shards: 4,
                key: "epc".into(),
                cache_capacity: 64,
            },
            LogRecord::GlobalCommit {
                global: 9,
                vector: vec![3, 2, 4, 0],
            },
        ];
        for rec in &records {
            let bytes = encode_record(rec);
            assert_eq!(&decode_record(&bytes).unwrap(), rec);
            // Every truncation fails typed.
            for cut in 0..bytes.len() {
                assert!(decode_record(&bytes[..cut]).is_err());
            }
        }
        assert!(matches!(
            decode_record(&[0xEE]),
            Err(LogError::BadKind { kind: 0xEE })
        ));
    }

    #[test]
    fn bootstrap_recover_materialize_roundtrip() {
        let root = tmp("roundtrip");
        let dir = LogDir::create(&root).unwrap();
        let catalog = Catalog::new();
        let table = reads_table(10);
        let expected_rows = table.num_rows();
        catalog.register(table);
        let mut log = ShardLog::create(dir.clone()).unwrap();
        log.log_bootstrap(&catalog, 0, "{\"rules\":[]}").unwrap();

        // One append epoch.
        let before = catalog.get("caser").unwrap().segments().len();
        let appended = catalog
            .append("caser", catalog.get("caser").unwrap().data().slice(0, 3))
            .unwrap();
        log.log_table_append(&appended, before, 1).unwrap();
        log.commit_epoch(1).unwrap();

        let rec = recover_shard(&dir).unwrap();
        assert_eq!(rec.durable_epoch, 1);
        assert!(rec.tail.is_none());
        let store = SegmentStore::new(dir.clone());

        // Epoch 0 = the bootstrap rows; epoch 1 adds three.
        let at0 = materialize_catalog(&rec, 0, &store).unwrap();
        assert_eq!(at0.get("caser").unwrap().num_rows(), expected_rows);
        let at1 = materialize_catalog(&rec, 1, &store).unwrap();
        let live = catalog.get("caser").unwrap();
        let recovered = at1.get("caser").unwrap();
        assert_eq!(recovered.num_rows(), expected_rows + 3);
        assert_eq!(rows_of(recovered.data()), rows_of(live.data()));
        assert_eq!(recovered.segments(), live.segments());
        assert_eq!(recovered.sequence_order(), live.sequence_order());
        assert_eq!(recovered.indexed_columns(), live.indexed_columns());
        assert_eq!(recovered.index("epc").unwrap(), live.index("epc").unwrap());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn zone_pruning_skips_files_without_opening() {
        let root = tmp("prune");
        let dir = LogDir::create(&root).unwrap();
        let catalog = Catalog::new();
        catalog.register(reads_table(12));
        let mut log = ShardLog::create(dir.clone()).unwrap();
        log.log_bootstrap(&catalog, 0, "{\"rules\":[]}").unwrap();
        let rec = recover_shard(&dir).unwrap();
        let store = SegmentStore::new(dir.clone());
        // rtime ≥ 100 refutes the first two 4-row segments (rtime max 70).
        let pred = ZonePredicate::range(
            1,
            dc_storage::ZoneBound::Inclusive(Value::Int(100)),
            dc_storage::ZoneBound::Unbounded,
        );
        let opened = store.open_pruned(&rec.segments, &[pred]).unwrap();
        assert_eq!(opened.len(), 1);
        assert_eq!(store.segments_pruned(), 2);
        assert_eq!(store.segments_loaded(), 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn compaction_truncates_uncommitted_suffix() {
        let root = tmp("compact");
        let dir = LogDir::create(&root).unwrap();
        let catalog = Catalog::new();
        catalog.register(reads_table(8));
        let mut log = ShardLog::create(dir.clone()).unwrap();
        log.log_bootstrap(&catalog, 0, "{}").unwrap();
        // An uncommitted (never EpochCommit'd) segment record, then torn
        // garbage at the tail.
        let appended = catalog
            .append("caser", catalog.get("caser").unwrap().data().slice(0, 2))
            .unwrap();
        log.log_table_append(&appended, 2, 1).unwrap();
        drop(log);
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(root.join(COMMIT_LOG))
            .unwrap();
        f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        drop(f);

        let rec = recover_shard(&dir).unwrap();
        assert_eq!(rec.durable_epoch, 0);
        assert_eq!(rec.segments.len(), 2);
        assert!(rec.tail.is_some());
        compact_shard_log(&dir, &rec).unwrap();
        let rec2 = recover_shard(&dir).unwrap();
        assert_eq!(rec2.durable_epoch, 0);
        assert_eq!(rec2.segments.len(), 2);
        assert!(rec2.tail.is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn recover_system_restores_rules_and_answers_queries() {
        let root = tmp("system");
        let dir = LogDir::create(&root).unwrap();
        let catalog = Arc::new(Catalog::new());
        catalog.register(reads_table(8));
        let sys = DeferredCleansingSystem::with_catalog(Arc::clone(&catalog));
        sys.define_rule(
            "app",
            "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime \
             AS (A, B) WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins \
             ACTION DELETE B",
        )
        .unwrap();
        let mut log = ShardLog::create(dir.clone()).unwrap();
        log.log_bootstrap(&catalog, 1, &sys.rules_to_json())
            .unwrap();

        let (recovered, report) = recover_system(&dir).unwrap();
        assert_eq!(report.durable_epoch, 0);
        assert_eq!(report.rules_version, 1);
        assert!(report.log_records_replayed > 0);
        let live = sys.query("app", "select epc, rtime from caser").unwrap();
        let back = recovered
            .query("app", "select epc, rtime from caser")
            .unwrap();
        assert_eq!(rows_of(&live), rows_of(&back));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
