//! The deferred-cleansing system facade — the paper's Figure 1 end to end.
//!
//! 1. Applications register cleansing rules in extended SQL-TS
//!    ([`DeferredCleansingSystem::define_rule`]); the rule engine compiles
//!    each to a SQL/OLAP template persisted in the rules table.
//! 2. User SQL is intercepted ([`DeferredCleansingSystem::query`]), rewritten
//!    against the application's rules by the rewrite engine, executed, and
//!    cleansed results returned.

use dc_relational::batch::Batch;
use dc_relational::error::Result;
use dc_relational::exec::{ExecStats, Executor};
use dc_relational::physical::ExecOptions;
use dc_relational::plan::LogicalPlan;
use dc_relational::sql::{parse_query, plan_query, plan_sql};
use dc_relational::table::{Catalog, CatalogRef};
use dc_rewrite::{Candidate, RewriteEngine, Strategy};
use dc_rules::RuleCatalog;
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution report for one deferred-cleansing query.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Label of the rewrite the cost model selected.
    pub chosen: String,
    /// Every compiled candidate with its cost estimate (cheapest first).
    pub candidates: Vec<Candidate>,
    /// The expanded condition, as text, when one was derived.
    pub expanded_condition: Option<String>,
    /// Engine diagnostics (e.g. soundness fallbacks).
    pub notes: Vec<String>,
    /// Executor work counters of the final run.
    pub stats: ExecStats,
    /// Wall-clock time of rewrite + execution.
    pub elapsed: Duration,
    /// EXPLAIN rendering of the executed plan.
    pub plan: String,
    /// Result rows returned.
    pub result_rows: usize,
    /// Wall-clock nanoseconds spent in window evaluation (the Φ_C hot
    /// path) — the one quantity that should improve with parallelism.
    pub window_eval_nanos: u64,
    /// Parallelism the query ran with.
    pub parallelism: usize,
}

/// The deferred cleansing system: data catalog + rules table + rewrite
/// engine, exposed through a SQL front door.
pub struct DeferredCleansingSystem {
    catalog: CatalogRef,
    rules: RuleCatalog,
    engine: RwLock<RewriteEngine>,
    exec_options: ExecOptions,
}

impl Default for DeferredCleansingSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl DeferredCleansingSystem {
    /// A system over a fresh, empty catalog.
    pub fn new() -> Self {
        Self::with_catalog(Arc::new(Catalog::new()))
    }

    /// A system over an existing catalog (e.g. one loaded by RFIDGen).
    pub fn with_catalog(catalog: CatalogRef) -> Self {
        DeferredCleansingSystem {
            catalog,
            rules: RuleCatalog::new(),
            engine: RwLock::new(RewriteEngine::new()),
            exec_options: ExecOptions::default(),
        }
    }

    /// Set the number of worker threads for partition-parallel cleansing.
    /// Results and work counters are identical at any parallelism.
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.exec_options = ExecOptions::with_parallelism(parallelism);
    }

    /// The execution options queries run with.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec_options
    }

    /// The underlying data catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The rules table.
    pub fn rules(&self) -> &RuleCatalog {
        &self.rules
    }

    /// Define a cleansing rule for an application (Figure 1, steps 1–2).
    /// Returns the rule id.
    pub fn define_rule(&self, application: &str, rule_text: &str) -> Result<u64> {
        self.rules
            .define_rule(application, rule_text, &self.catalog)
    }

    /// Drop a rule by application and rule name.
    pub fn drop_rule(&self, application: &str, name: &str) -> Result<()> {
        self.rules.drop_rule(application, name)
    }

    /// Register the plan backing a derived rule input (a rule's FROM table
    /// that is neither the reads table nor a materialized catalog table).
    pub fn register_derived_input(&self, name: &str, plan: LogicalPlan) {
        self.engine.write().register_derived_input(name, plan);
    }

    /// Run a query for an application over cleansed data (Figure 1,
    /// steps 3–6), using the cost-based strategy choice.
    pub fn query(&self, application: &str, sql: &str) -> Result<Batch> {
        self.query_with_strategy(application, sql, Strategy::Auto)
            .map(|(batch, _)| batch)
    }

    /// [`DeferredCleansingSystem::query`] with an explicit rewrite strategy
    /// and a full execution report.
    pub fn query_with_strategy(
        &self,
        application: &str,
        sql: &str,
        strategy: Strategy,
    ) -> Result<(Batch, QueryReport)> {
        let start = Instant::now();
        let user_plan = plan_query(&parse_query(sql)?, &self.catalog)?;
        let rules = self.rules.rules_for(application);
        let rewritten =
            self.engine
                .read()
                .rewrite_plan(&user_plan, &rules, &self.catalog, strategy)?;
        let run = rewritten.execute(&self.catalog, self.exec_options)?;
        let report = QueryReport {
            chosen: rewritten.chosen,
            candidates: rewritten.candidates,
            expanded_condition: rewritten.expanded_condition.map(|e| e.to_string()),
            notes: rewritten.notes,
            stats: run.stats,
            elapsed: start.elapsed(),
            plan: rewritten.plan.display_indent(),
            result_rows: run.batch.num_rows(),
            window_eval_nanos: run.window_eval_nanos,
            parallelism: self.exec_options.parallelism,
        };
        Ok((run.batch, report))
    }

    /// Run a query directly on the (dirty) data — the paper's baseline `q`.
    /// The result is generally *not* the correct cleansed answer.
    pub fn query_dirty(&self, sql: &str) -> Result<Batch> {
        let plan = plan_sql(sql, &self.catalog)?;
        Executor::with_options(&self.catalog, self.exec_options).execute(&plan)
    }

    /// [`DeferredCleansingSystem::query_dirty`] with an execution report.
    pub fn query_dirty_with_report(&self, sql: &str) -> Result<(Batch, QueryReport)> {
        let start = Instant::now();
        let plan = plan_sql(sql, &self.catalog)?;
        let mut executor = Executor::with_options(&self.catalog, self.exec_options);
        let batch = executor.execute(&plan)?;
        let report = QueryReport {
            chosen: "dirty (no cleansing)".into(),
            candidates: vec![],
            expanded_condition: None,
            notes: vec![],
            stats: executor.stats,
            elapsed: start.elapsed(),
            plan: plan.display_indent(),
            result_rows: batch.num_rows(),
            window_eval_nanos: executor.window_eval_nanos,
            parallelism: self.exec_options.parallelism,
        };
        Ok((batch, report))
    }

    /// EXPLAIN: the rewritten plan an application query would execute.
    pub fn explain(&self, application: &str, sql: &str, strategy: Strategy) -> Result<String> {
        let user_plan = plan_query(&parse_query(sql)?, &self.catalog)?;
        let rules = self.rules.rules_for(application);
        let rewritten =
            self.engine
                .read()
                .rewrite_plan(&user_plan, &rules, &self.catalog, strategy)?;
        let mut out = format!("-- chosen: {}\n", rewritten.chosen);
        if let Some(ec) = &rewritten.expanded_condition {
            out.push_str(&format!("-- expanded condition: {ec}\n"));
        }
        for c in &rewritten.candidates {
            out.push_str(&format!("-- candidate: {} (cost {:.0})\n", c.label, c.cost));
        }
        out.push_str(&rewritten.plan.display_indent());
        Ok(out)
    }

    /// Eager cleansing (the conventional approach the paper contrasts with,
    /// §1/§6.1): materialize Φ over an application's rules into a new table.
    /// Queries against the materialized table pay no cleansing overhead —
    /// but every application would need its own copy, kept in sync as rules
    /// evolve, and the raw data is no longer what regulation may require.
    ///
    /// Returns the number of rows in the cleansed table. Indexes matching
    /// the source table's are rebuilt on the copy.
    pub fn materialize_cleansed(&self, application: &str, target_table: &str) -> Result<usize> {
        use dc_relational::table::Table;
        let rules = self.rules.rules_for(application);
        let Some(first) = rules.first() else {
            return Err(dc_relational::error::Error::Plan(format!(
                "application '{application}' has no rules to materialize"
            )));
        };
        let source = first.def.on_table.clone();
        let input = first.def.from_table.clone();
        let rule_refs: Vec<&dc_rules::RuleTemplate> =
            rules.iter().map(std::sync::Arc::as_ref).collect();
        let (cleaned, _stats) = dc_rules::materialize_phi(
            LogicalPlan::scan(input),
            &rule_refs,
            &self.catalog,
            self.exec_options,
        )?;
        // Keep only the ON table's columns (MODIFY may have appended more,
        // and a derived input carries extras like is_pallet).
        let base = self.catalog.get(&source)?;
        let cols: Vec<_> = base
            .schema()
            .fields()
            .iter()
            .map(|f| {
                cleaned
                    .schema()
                    .index_of(None, &f.name)
                    .map(|i| cleaned.column(i).clone())
            })
            .collect::<Result<_>>()?;
        let batch = dc_relational::batch::Batch::new(base.schema().clone(), cols)?;
        let rows = batch.num_rows();
        let mut table = Table::new(target_table, batch);
        for col in base.indexed_columns() {
            table.create_index(col)?;
        }
        self.catalog.register(table);
        Ok(rows)
    }

    /// Persist the rules table to JSON.
    pub fn rules_to_json(&self) -> String {
        self.rules.to_json()
    }

    /// Restore the rules table from JSON (replacing the current one).
    pub fn load_rules_from_json(&mut self, json: &str) -> Result<()> {
        self.rules = RuleCatalog::from_json(json, &self.catalog)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::batch::schema_ref;
    use dc_relational::schema::{Field, Schema};
    use dc_relational::table::Table;
    use dc_relational::value::{DataType, Value};

    fn system() -> DeferredCleansingSystem {
        let catalog = Arc::new(Catalog::new());
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
            Field::new("reader", DataType::Str),
        ]));
        let rows = vec![
            vec![
                Value::str("e1"),
                Value::Int(100),
                Value::str("x"),
                Value::str("r1"),
            ],
            vec![
                Value::str("e1"),
                Value::Int(200),
                Value::str("x"),
                Value::str("r1"),
            ],
            vec![
                Value::str("e1"),
                Value::Int(5000),
                Value::str("y"),
                Value::str("r1"),
            ],
            vec![
                Value::str("e2"),
                Value::Int(150),
                Value::str("z"),
                Value::str("r1"),
            ],
        ];
        let mut t = Table::new("caser", Batch::from_rows(schema, &rows).unwrap());
        t.create_index("rtime").unwrap();
        t.create_index("epc").unwrap();
        catalog.register(t);
        DeferredCleansingSystem::with_catalog(catalog)
    }

    const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
        WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";

    #[test]
    fn end_to_end_flow() {
        let sys = system();
        sys.define_rule("app", DUP).unwrap();
        // Dirty query sees 4 rows; cleansed sees 3 (one duplicate removed).
        let dirty = sys.query_dirty("select epc, rtime from caser").unwrap();
        assert_eq!(dirty.num_rows(), 4);
        let clean = sys.query("app", "select epc, rtime from caser").unwrap();
        assert_eq!(clean.num_rows(), 3);
        // Another application without rules sees everything.
        let other = sys
            .query("other_app", "select epc, rtime from caser")
            .unwrap();
        assert_eq!(other.num_rows(), 4);
    }

    #[test]
    fn report_contains_candidates_and_stats() {
        let sys = system();
        sys.define_rule("app", DUP).unwrap();
        let (_, report) = sys
            .query_with_strategy(
                "app",
                "select epc from caser where rtime < 300",
                Strategy::Auto,
            )
            .unwrap();
        assert!(!report.candidates.is_empty());
        assert!(report.stats.rows_scanned > 0);
        assert!(report.plan.contains("Window"));
    }

    #[test]
    fn explain_renders() {
        let sys = system();
        sys.define_rule("app", DUP).unwrap();
        let out = sys
            .explain(
                "app",
                "select epc from caser where rtime < 300",
                Strategy::Auto,
            )
            .unwrap();
        assert!(out.contains("-- chosen:"));
        assert!(out.contains("Scan caser"));
    }

    #[test]
    fn rules_json_roundtrip() {
        let mut sys = system();
        sys.define_rule("app", DUP).unwrap();
        let json = sys.rules_to_json();
        sys.load_rules_from_json(&json).unwrap();
        assert_eq!(sys.rules().len(), 1);
        let clean = sys.query("app", "select epc from caser").unwrap();
        assert_eq!(clean.num_rows(), 3);
    }

    #[test]
    fn drop_rule_restores_dirty_view() {
        let sys = system();
        sys.define_rule("app", DUP).unwrap();
        sys.drop_rule("app", "duplicate").unwrap();
        let out = sys.query("app", "select epc from caser").unwrap();
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn eager_materialization() {
        let sys = system();
        sys.define_rule("app", DUP).unwrap();
        let rows = sys.materialize_cleansed("app", "caser_clean").unwrap();
        assert_eq!(rows, 3);
        // The eager copy answers directly, matching the deferred answer.
        let eager = sys
            .query_dirty("select epc, rtime from caser_clean")
            .unwrap();
        let deferred = sys.query("app", "select epc, rtime from caser").unwrap();
        assert_eq!(eager.sorted_rows(), deferred.sorted_rows());
        // Indexes were carried over.
        assert!(sys
            .catalog()
            .get("caser_clean")
            .unwrap()
            .index("rtime")
            .is_some());
        // No rules -> nothing to materialize.
        assert!(sys.materialize_cleansed("norules", "x").is_err());
    }

    #[test]
    fn parallelism_is_transparent() {
        let sys = system();
        sys.define_rule("app", DUP).unwrap();
        let (serial, serial_report) = sys
            .query_with_strategy("app", "select epc, rtime from caser", Strategy::Auto)
            .unwrap();
        for p in [2, 8] {
            let mut par_sys = system();
            par_sys.define_rule("app", DUP).unwrap();
            par_sys.set_parallelism(p);
            assert_eq!(par_sys.exec_options().parallelism, p);
            let (par, par_report) = par_sys
                .query_with_strategy("app", "select epc, rtime from caser", Strategy::Auto)
                .unwrap();
            assert_eq!(par.sorted_rows(), serial.sorted_rows());
            assert_eq!(par_report.stats, serial_report.stats);
            assert_eq!(par_report.chosen, serial_report.chosen);
            assert_eq!(par_report.parallelism, p);
        }
    }

    #[test]
    fn bad_sql_is_an_error() {
        let sys = system();
        assert!(sys.query("app", "select from").is_err());
        assert!(sys.define_rule("app", "DEFINE nonsense").is_err());
    }
}
