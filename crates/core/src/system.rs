//! The deferred-cleansing system facade — the paper's Figure 1 end to end.
//!
//! 1. Applications register cleansing rules in extended SQL-TS
//!    ([`DeferredCleansingSystem::define_rule`]); the rule engine compiles
//!    each to a SQL/OLAP template persisted in the rules table.
//! 2. User SQL is intercepted ([`DeferredCleansingSystem::query`]), rewritten
//!    against the application's rules by the rewrite engine, executed, and
//!    cleansed results returned.

use dc_json::Json;
use dc_relational::batch::Batch;
use dc_relational::delta;
use dc_relational::error::Result;
use dc_relational::exec::{ExecStats, Executor};
use dc_relational::explain::{logical_to_json, physical_to_json};
use dc_relational::physical::{display_physical, lower, ExecOptions, OperatorMetrics, QueryBudget};
use dc_relational::plan::LogicalPlan;
use dc_relational::sql::{parse_query, plan_query, plan_sql};
use dc_relational::table::{Catalog, CatalogRef};
use dc_relational::value::Value;
use dc_rewrite::{
    CacheStats, Candidate, CleanseCache, DecisionTrace, Executed, RewriteEngine, Rewritten,
    Strategy,
};
use dc_rules::RuleCatalog;
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Execution report for one deferred-cleansing query.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Strategy the rewrite ran with (`"Auto"`, `"Expanded"`, …).
    pub strategy: String,
    /// Label of the rewrite the cost model selected.
    pub chosen: String,
    /// Every compiled candidate with its cost estimate (cheapest first).
    pub candidates: Vec<Candidate>,
    /// The expanded condition, as text, when one was derived.
    pub expanded_condition: Option<String>,
    /// The overall context condition, as text, when one was derived.
    pub context_condition: Option<String>,
    /// Engine diagnostics (e.g. soundness fallbacks).
    pub notes: Vec<String>,
    /// Executor work counters of the final run.
    pub stats: ExecStats,
    /// Wall-clock time of rewrite + execution.
    pub elapsed: Duration,
    /// EXPLAIN rendering of the executed plan.
    pub plan: String,
    /// Result rows returned.
    pub result_rows: usize,
    /// Wall-clock nanoseconds spent in window evaluation (the Φ_C hot
    /// path) — the one quantity that should improve with parallelism.
    pub window_eval_nanos: u64,
    /// Parallelism the query ran with.
    pub parallelism: usize,
    /// Per-operator metrics tree of the executed physical plan.
    pub metrics: Option<OperatorMetrics>,
}

impl QueryReport {
    /// The rewrite decision trace of this run.
    pub fn decision_trace(&self) -> DecisionTrace {
        DecisionTrace {
            strategy: self.strategy.clone(),
            chosen: self.chosen.clone(),
            candidates: self.candidates.clone(),
            expanded_condition: self.expanded_condition.clone(),
            context_condition: self.context_condition.clone(),
            notes: self.notes.clone(),
        }
    }
}

/// Cleansed-sequence cache activity of one executed query (join-back
/// rewrites only; the counters are per-run, not cache lifetime totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheActivity {
    /// Sequences answered from the cache.
    pub hits: u64,
    /// Sequences that had to be cleansed.
    pub misses: u64,
    /// Stale entries evicted because their covering segments changed.
    pub invalidations: u64,
}

/// The result of `EXPLAIN` / `EXPLAIN ANALYZE` on one application query:
/// the rewrite decision trace, the chosen logical and physical plans, and
/// — in analyze mode — the executed plan's per-operator metrics.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// Why this rewrite: strategy, candidates with costs, conditions.
    pub trace: DecisionTrace,
    /// The chosen, optimized logical plan.
    pub plan: LogicalPlan,
    /// Indented text of the lowered physical operator tree.
    pub physical_text: String,
    /// JSON tree of the lowered physical operator tree.
    pub physical_json: Json,
    /// Executed per-operator metrics (`EXPLAIN ANALYZE` only).
    pub metrics: Option<OperatorMetrics>,
    /// Result row count (`EXPLAIN ANALYZE` only).
    pub result_rows: Option<usize>,
    /// Cleansed-sequence cache activity (`EXPLAIN ANALYZE` with the cache
    /// enabled and a cacheable join-back plan only).
    pub cache: Option<CacheActivity>,
}

impl ExplainReport {
    /// Text rendering. The header lines carry the decision trace (prefixed
    /// `--` so the whole block stays valid SQL commentary); then the logical
    /// plan, and the physical plan — annotated per-operator with rows and
    /// work counters when the query was actually executed.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for line in self.trace.render_text().lines() {
            out.push_str("-- ");
            out.push_str(line);
            out.push('\n');
        }
        if let Some(rows) = self.result_rows {
            out.push_str(&format!("-- result rows: {rows}\n"));
        }
        if let Some(c) = &self.cache {
            out.push_str(&format!(
                "-- cleanse cache: hits={} misses={} invalidations={}\n",
                c.hits, c.misses, c.invalidations
            ));
        }
        out.push_str(&self.plan.display_indent());
        out.push_str("-- physical plan:\n");
        match &self.metrics {
            Some(m) => out.push_str(&m.render_text(false)),
            None => out.push_str(&self.physical_text),
        }
        out
    }

    /// Machine-readable form: decision trace + logical/physical plan trees
    /// (+ executed metrics in analyze mode). Deterministic — per-operator
    /// timings are deliberately omitted so snapshots stay byte-stable.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("trace", self.trace.to_json())
            .set("logical_plan", logical_to_json(&self.plan))
            .set("physical_plan", self.physical_json.clone())
            .set(
                "metrics",
                self.metrics
                    .as_ref()
                    .map_or(Json::Null, |m| m.to_json(false)),
            )
            .set(
                "result_rows",
                self.result_rows.map_or(Json::Null, Json::from),
            )
            .set(
                "cleanse_cache",
                self.cache.map_or(Json::Null, |c| {
                    Json::obj()
                        .set("hits", Json::from(c.hits))
                        .set("misses", Json::from(c.misses))
                        .set("invalidations", Json::from(c.invalidations))
                }),
            )
    }
}

/// The deferred cleansing system: data catalog + rules table + rewrite
/// engine, exposed through a SQL front door.
pub struct DeferredCleansingSystem {
    catalog: CatalogRef,
    rules: RuleCatalog,
    engine: RwLock<RewriteEngine>,
    exec_options: ExecOptions,
    cleanse_cache: Option<CleanseCache>,
}

impl Default for DeferredCleansingSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl DeferredCleansingSystem {
    /// A system over a fresh, empty catalog.
    pub fn new() -> Self {
        Self::with_catalog(Arc::new(Catalog::new()))
    }

    /// A system over an existing catalog (e.g. one loaded by RFIDGen).
    pub fn with_catalog(catalog: CatalogRef) -> Self {
        DeferredCleansingSystem {
            catalog,
            rules: RuleCatalog::new(),
            engine: RwLock::new(RewriteEngine::new()),
            exec_options: ExecOptions::default(),
            cleanse_cache: None,
        }
    }

    /// Enable the cleansed-sequence cache with room for `capacity` cached
    /// sequences. Join-back rewrites then memoize Φ output per
    /// (rule-set fingerprint, cluster key, covering segments); appends to
    /// the reads table invalidate exactly the touched keys. Results are
    /// byte-identical to uncached execution.
    pub fn enable_cleanse_cache(&mut self, capacity: usize) {
        self.cleanse_cache = Some(CleanseCache::new(capacity));
    }

    /// [`Self::enable_cleanse_cache`] for a shard-local system: the cache
    /// key is salted with the shard id so entries can never alias across
    /// shards that number their own segments independently from 0.
    pub fn enable_cleanse_cache_for_shard(&mut self, capacity: usize, shard: u64) {
        self.cleanse_cache = Some(CleanseCache::for_shard(capacity, shard));
    }

    /// Lifetime counters of the cleansed-sequence cache, when enabled.
    pub fn cleanse_cache_stats(&self) -> Option<CacheStats> {
        self.cleanse_cache.as_ref().map(CleanseCache::stats)
    }

    /// Execute a rewritten plan against `catalog` under `budget`, routing
    /// through the cleansed-sequence cache when it is enabled and the
    /// rewrite produced a cacheable join-back plan. The cache is shared
    /// across catalog snapshots: entries are validated against the covering
    /// segments of the *probing* snapshot's reads table, so a query running
    /// against an older epoch can never be served rows cleansed from a
    /// newer one (and vice versa).
    fn run_rewritten_at(
        &self,
        catalog: &Catalog,
        rewritten: &Rewritten,
        budget: QueryBudget,
    ) -> Result<Executed> {
        match &self.cleanse_cache {
            Some(cache) if rewritten.cache_spec.is_some() => {
                rewritten.execute_cached_with_budget(catalog, self.exec_options, cache, budget)
            }
            _ => rewritten.execute_with_budget(catalog, self.exec_options, budget),
        }
    }

    /// Set the number of worker threads for partition-parallel cleansing.
    /// Results and work counters are identical at any parallelism.
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.exec_options = ExecOptions::with_parallelism(parallelism);
    }

    /// The execution options queries run with.
    pub fn exec_options(&self) -> ExecOptions {
        self.exec_options
    }

    /// The underlying data catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The rules table.
    pub fn rules(&self) -> &RuleCatalog {
        &self.rules
    }

    /// Define a cleansing rule for an application (Figure 1, steps 1–2).
    /// Returns the rule id.
    pub fn define_rule(&self, application: &str, rule_text: &str) -> Result<u64> {
        self.rules
            .define_rule(application, rule_text, &self.catalog)
    }

    /// Drop a rule by application and rule name.
    pub fn drop_rule(&self, application: &str, name: &str) -> Result<()> {
        self.rules.drop_rule(application, name)
    }

    /// Register the plan backing a derived rule input (a rule's FROM table
    /// that is neither the reads table nor a materialized catalog table).
    pub fn register_derived_input(&self, name: &str, plan: LogicalPlan) {
        self.engine.write().register_derived_input(name, plan);
    }

    /// Run a query for an application over cleansed data (Figure 1,
    /// steps 3–6), using the cost-based strategy choice.
    pub fn query(&self, application: &str, sql: &str) -> Result<Batch> {
        self.query_with_strategy(application, sql, Strategy::Auto)
            .map(|(batch, _)| batch)
    }

    /// [`DeferredCleansingSystem::query`] with an explicit rewrite strategy
    /// and a full execution report.
    pub fn query_with_strategy(
        &self,
        application: &str,
        sql: &str,
        strategy: Strategy,
    ) -> Result<(Batch, QueryReport)> {
        self.query_snapshot(
            &self.catalog,
            application,
            sql,
            strategy,
            QueryBudget::unlimited(),
        )
    }

    /// [`DeferredCleansingSystem::query_with_strategy`] under a
    /// [`QueryBudget`] (deadline, row budget, cooperative cancellation).
    /// A tripped budget returns `Error::Aborted` and no partial rows.
    pub fn query_with_budget(
        &self,
        application: &str,
        sql: &str,
        strategy: Strategy,
        budget: QueryBudget,
    ) -> Result<(Batch, QueryReport)> {
        self.query_snapshot(&self.catalog, application, sql, strategy, budget)
    }

    /// Run an application query against an explicit catalog snapshot —
    /// planning, rewriting, and executing all see `catalog`, not the
    /// system's own. This is the service layer's entry point: the snapshot
    /// is immutable for the duration of the call, so concurrent appends to
    /// the live catalog never tear a running query. Rules, the rewrite
    /// engine, and the cleansed-sequence cache are shared (all are
    /// internally synchronized).
    pub fn query_snapshot(
        &self,
        catalog: &Catalog,
        application: &str,
        sql: &str,
        strategy: Strategy,
        budget: QueryBudget,
    ) -> Result<(Batch, QueryReport)> {
        let start = Instant::now();
        let user_plan = plan_query(&parse_query(sql)?, catalog)?;
        let rules = self.rules.rules_for(application);
        let rewritten = self
            .engine
            .read()
            .rewrite_plan(&user_plan, &rules, catalog, strategy)?;
        let run = self.run_rewritten_at(catalog, &rewritten, budget)?;
        let report = QueryReport {
            strategy: format!("{strategy:?}"),
            chosen: rewritten.chosen,
            candidates: rewritten.candidates,
            expanded_condition: rewritten.expanded_condition.map(|e| e.to_string()),
            context_condition: rewritten.context_condition.map(|e| e.to_string()),
            notes: rewritten.notes,
            stats: run.stats,
            elapsed: start.elapsed(),
            plan: rewritten.plan.display_indent(),
            result_rows: run.batch.num_rows(),
            window_eval_nanos: run.window_eval_nanos,
            parallelism: self.exec_options.parallelism,
            metrics: run.metrics,
        };
        Ok((run.batch, report))
    }

    /// [`Self::query_snapshot`] starting from an already-built user plan
    /// instead of SQL. The standing-query maintainer uses this to run
    /// *scoped* variants of a subscription's plan — the original plan with
    /// each reads-table scan restricted to the cluster keys an append
    /// touched — without round-tripping through the parser.
    pub fn query_plan_snapshot(
        &self,
        catalog: &Catalog,
        application: &str,
        user_plan: &LogicalPlan,
        strategy: Strategy,
        budget: QueryBudget,
    ) -> Result<(Batch, QueryReport)> {
        let start = Instant::now();
        let rules = self.rules.rules_for(application);
        let rewritten = self
            .engine
            .read()
            .rewrite_plan(user_plan, &rules, catalog, strategy)?;
        let run = self.run_rewritten_at(catalog, &rewritten, budget)?;
        let report = QueryReport {
            strategy: format!("{strategy:?}"),
            chosen: rewritten.chosen,
            candidates: rewritten.candidates,
            expanded_condition: rewritten.expanded_condition.map(|e| e.to_string()),
            context_condition: rewritten.context_condition.map(|e| e.to_string()),
            notes: rewritten.notes,
            stats: run.stats,
            elapsed: start.elapsed(),
            plan: rewritten.plan.display_indent(),
            result_rows: run.batch.num_rows(),
            window_eval_nanos: run.window_eval_nanos,
            parallelism: self.exec_options.parallelism,
            metrics: run.metrics,
        };
        Ok((run.batch, report))
    }

    /// Re-cleanse-by-ckey entry point: run `sql` for `application` against
    /// `catalog`, but with every scan of `table` restricted to rows whose
    /// `column` value is in `keys`. Because cleansing rules partition
    /// sequences by the cluster key, restricting the reads table to a key
    /// set commutes with cleansing, so this computes exactly the slice of
    /// the full answer owned by `keys` — the unit of work incremental
    /// maintenance re-executes per append.
    #[allow(clippy::too_many_arguments)]
    pub fn query_snapshot_scoped(
        &self,
        catalog: &Catalog,
        application: &str,
        sql: &str,
        table: &str,
        column: &str,
        keys: &[Value],
        strategy: Strategy,
        budget: QueryBudget,
    ) -> Result<(Batch, QueryReport)> {
        let user_plan = plan_query(&parse_query(sql)?, catalog)?;
        let scoped = delta::scope_plan(&user_plan, table, column, keys);
        self.query_plan_snapshot(catalog, application, &scoped, strategy, budget)
    }

    /// Parse, plan, and rewrite an application query against an explicit
    /// catalog snapshot *without executing it*. The scatter-gather
    /// coordinator uses this to rewrite once and fan the same rewritten
    /// plan out to every shard (shard catalogs share one schema, so a plan
    /// rewritten against any of them is valid on all).
    pub fn rewrite_snapshot(
        &self,
        catalog: &Catalog,
        application: &str,
        sql: &str,
        strategy: Strategy,
    ) -> Result<Rewritten> {
        let user_plan = plan_query(&parse_query(sql)?, catalog)?;
        let rules = self.rules.rules_for(application);
        self.engine
            .read()
            .rewrite_plan(&user_plan, &rules, catalog, strategy)
    }

    /// Execute an already-rewritten plan against an explicit catalog
    /// snapshot under a budget, routing through this system's
    /// cleansed-sequence cache when enabled and the rewrite is cacheable.
    /// Pairs with [`Self::rewrite_snapshot`]: a shard executor runs the
    /// coordinator's rewritten plan against its own shard snapshot while
    /// keeping its own shard-local cache.
    pub fn execute_rewritten_snapshot(
        &self,
        catalog: &Catalog,
        rewritten: &Rewritten,
        budget: QueryBudget,
    ) -> Result<Executed> {
        self.run_rewritten_at(catalog, rewritten, budget)
    }

    /// [`Self::execute_rewritten_snapshot`] with the cleansed-sequence
    /// cache bypassed. Used when `catalog` is a transient merged view (the
    /// coordinator's unshardable fallback): its tables are rebuilt per
    /// call, so their segment ids could falsely validate against entries
    /// cached from this system's own durable catalog.
    pub fn execute_rewritten_snapshot_uncached(
        &self,
        catalog: &Catalog,
        rewritten: &Rewritten,
        budget: QueryBudget,
    ) -> Result<Executed> {
        rewritten.execute_with_budget(catalog, self.exec_options, budget)
    }

    /// Run a query directly on the (dirty) data — the paper's baseline `q`.
    /// The result is generally *not* the correct cleansed answer.
    pub fn query_dirty(&self, sql: &str) -> Result<Batch> {
        let plan = plan_sql(sql, &self.catalog)?;
        Executor::with_options(&self.catalog, self.exec_options).execute(&plan)
    }

    /// [`DeferredCleansingSystem::query_dirty`] with an execution report.
    pub fn query_dirty_with_report(&self, sql: &str) -> Result<(Batch, QueryReport)> {
        let start = Instant::now();
        let plan = plan_sql(sql, &self.catalog)?;
        let mut executor = Executor::with_options(&self.catalog, self.exec_options);
        let batch = executor.execute(&plan)?;
        let report = QueryReport {
            strategy: "Dirty".into(),
            chosen: "dirty (no cleansing)".into(),
            candidates: vec![],
            expanded_condition: None,
            context_condition: None,
            notes: vec![],
            stats: executor.stats,
            elapsed: start.elapsed(),
            plan: plan.display_indent(),
            result_rows: batch.num_rows(),
            window_eval_nanos: executor.window_eval_nanos,
            parallelism: self.exec_options.parallelism,
            metrics: executor.metrics,
        };
        Ok((batch, report))
    }

    /// EXPLAIN: the rewritten plan an application query would execute,
    /// rendered as text. Shorthand for [`Self::explain_report`]`.text()`
    /// without executing the query.
    pub fn explain(&self, application: &str, sql: &str, strategy: Strategy) -> Result<String> {
        Ok(self
            .explain_report(application, sql, strategy, false)?
            .text())
    }

    /// EXPLAIN / EXPLAIN ANALYZE: rewrite an application query and report
    /// the decision trace, the chosen logical plan, and the lowered
    /// physical plan. With `analyze` the query is also executed and the
    /// report carries per-operator metrics (rows in/out, comparisons,
    /// partitions) for every physical operator.
    pub fn explain_report(
        &self,
        application: &str,
        sql: &str,
        strategy: Strategy,
        analyze: bool,
    ) -> Result<ExplainReport> {
        self.explain_snapshot(
            &self.catalog,
            application,
            sql,
            strategy,
            analyze,
            QueryBudget::unlimited(),
        )
    }

    /// [`Self::explain_report`] against an explicit catalog snapshot and
    /// under a [`QueryBudget`] — the service layer's EXPLAIN ANALYZE entry
    /// point (analyze-mode execution is budget-checked like a real query).
    pub fn explain_snapshot(
        &self,
        catalog: &Catalog,
        application: &str,
        sql: &str,
        strategy: Strategy,
        analyze: bool,
        budget: QueryBudget,
    ) -> Result<ExplainReport> {
        let user_plan = plan_query(&parse_query(sql)?, catalog)?;
        let rules = self.rules.rules_for(application);
        let rewritten = self
            .engine
            .read()
            .rewrite_plan(&user_plan, &rules, catalog, strategy)?;
        let trace = rewritten.decision_trace(strategy);
        let physical = lower(&rewritten.plan, catalog)?;
        let physical_text = display_physical(physical.as_ref());
        let physical_json = physical_to_json(physical.as_ref());
        let (metrics, result_rows, cache) = if analyze {
            let cached = self.cleanse_cache.is_some() && rewritten.cache_spec.is_some();
            let run = self.run_rewritten_at(catalog, &rewritten, budget)?;
            let cache = cached.then_some(CacheActivity {
                hits: run.stats.seq_cache_hits,
                misses: run.stats.seq_cache_misses,
                invalidations: run.stats.seq_cache_invalidations,
            });
            (run.metrics, Some(run.batch.num_rows()), cache)
        } else {
            (None, None, None)
        };
        Ok(ExplainReport {
            trace,
            plan: rewritten.plan,
            physical_text,
            physical_json,
            metrics,
            result_rows,
            cache,
        })
    }

    /// Eager cleansing (the conventional approach the paper contrasts with,
    /// §1/§6.1): materialize Φ over an application's rules into a new table.
    /// Queries against the materialized table pay no cleansing overhead —
    /// but every application would need its own copy, kept in sync as rules
    /// evolve, and the raw data is no longer what regulation may require.
    ///
    /// Returns the number of rows in the cleansed table. Indexes matching
    /// the source table's are rebuilt on the copy.
    pub fn materialize_cleansed(&self, application: &str, target_table: &str) -> Result<usize> {
        use dc_relational::table::Table;
        let rules = self.rules.rules_for(application);
        let Some(first) = rules.first() else {
            return Err(dc_relational::error::Error::Plan(format!(
                "application '{application}' has no rules to materialize"
            )));
        };
        let source = first.def.on_table.clone();
        let input = first.def.from_table.clone();
        let rule_refs: Vec<&dc_rules::RuleTemplate> =
            rules.iter().map(std::sync::Arc::as_ref).collect();
        let (cleaned, _stats) = dc_rules::materialize_phi(
            LogicalPlan::scan(input),
            &rule_refs,
            &self.catalog,
            self.exec_options,
        )?;
        // Keep only the ON table's columns (MODIFY may have appended more,
        // and a derived input carries extras like is_pallet).
        let base = self.catalog.get(&source)?;
        let cols: Vec<_> = base
            .schema()
            .fields()
            .iter()
            .map(|f| {
                cleaned
                    .schema()
                    .index_of(None, &f.name)
                    .map(|i| cleaned.column(i).clone())
            })
            .collect::<Result<_>>()?;
        let batch = dc_relational::batch::Batch::new(base.schema().clone(), cols)?;
        let rows = batch.num_rows();
        let mut table = Table::new(target_table, batch);
        for col in base.indexed_columns() {
            table.create_index(col)?;
        }
        self.catalog.register(table);
        Ok(rows)
    }

    /// Persist the rules table to JSON.
    pub fn rules_to_json(&self) -> String {
        self.rules.to_json()
    }

    /// Restore the rules table from JSON (replacing the current one).
    pub fn load_rules_from_json(&mut self, json: &str) -> Result<()> {
        self.rules = RuleCatalog::from_json(json, &self.catalog)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::batch::schema_ref;
    use dc_relational::schema::{Field, Schema};
    use dc_relational::table::Table;
    use dc_relational::value::{DataType, Value};

    fn system() -> DeferredCleansingSystem {
        let catalog = Arc::new(Catalog::new());
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
            Field::new("reader", DataType::Str),
        ]));
        let rows = vec![
            vec![
                Value::str("e1"),
                Value::Int(100),
                Value::str("x"),
                Value::str("r1"),
            ],
            vec![
                Value::str("e1"),
                Value::Int(200),
                Value::str("x"),
                Value::str("r1"),
            ],
            vec![
                Value::str("e1"),
                Value::Int(5000),
                Value::str("y"),
                Value::str("r1"),
            ],
            vec![
                Value::str("e2"),
                Value::Int(150),
                Value::str("z"),
                Value::str("r1"),
            ],
        ];
        let mut t = Table::new("caser", Batch::from_rows(schema, &rows).unwrap());
        t.create_index("rtime").unwrap();
        t.create_index("epc").unwrap();
        catalog.register(t);
        DeferredCleansingSystem::with_catalog(catalog)
    }

    const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
        WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";

    #[test]
    fn end_to_end_flow() {
        let sys = system();
        sys.define_rule("app", DUP).unwrap();
        // Dirty query sees 4 rows; cleansed sees 3 (one duplicate removed).
        let dirty = sys.query_dirty("select epc, rtime from caser").unwrap();
        assert_eq!(dirty.num_rows(), 4);
        let clean = sys.query("app", "select epc, rtime from caser").unwrap();
        assert_eq!(clean.num_rows(), 3);
        // Another application without rules sees everything.
        let other = sys
            .query("other_app", "select epc, rtime from caser")
            .unwrap();
        assert_eq!(other.num_rows(), 4);
    }

    #[test]
    fn report_contains_candidates_and_stats() {
        let sys = system();
        sys.define_rule("app", DUP).unwrap();
        let (_, report) = sys
            .query_with_strategy(
                "app",
                "select epc from caser where rtime < 300",
                Strategy::Auto,
            )
            .unwrap();
        assert!(!report.candidates.is_empty());
        assert!(report.stats.rows_scanned > 0);
        assert!(report.plan.contains("Window"));
    }

    #[test]
    fn explain_renders() {
        let sys = system();
        sys.define_rule("app", DUP).unwrap();
        let out = sys
            .explain(
                "app",
                "select epc from caser where rtime < 300",
                Strategy::Auto,
            )
            .unwrap();
        assert!(out.contains("-- chosen:"));
        assert!(out.contains("Scan caser"));
    }

    #[test]
    fn explain_analyze_reports_metrics() {
        let sys = system();
        sys.define_rule("app", DUP).unwrap();
        let rep = sys
            .explain_report(
                "app",
                "select epc from caser where rtime < 300",
                Strategy::Auto,
                true,
            )
            .unwrap();
        // The trace carries the decision with costs.
        assert!(!rep.trace.candidates.is_empty());
        assert_eq!(rep.trace.chosen, rep.trace.candidates[0].label);
        // Analyze mode executed the plan: metrics tree + result count.
        let m = rep.metrics.as_ref().expect("analyze records metrics");
        assert!(m.node_count() > 1);
        assert!(rep.result_rows.is_some());
        let text = rep.text();
        assert!(text.contains("-- chosen:"));
        assert!(text.contains("rows_out="));
        // JSON form is complete and deterministic (no timings).
        let j = rep.to_json();
        assert!(j.get("trace").is_some());
        assert!(j.get("logical_plan").is_some());
        assert!(j.get("physical_plan").is_some());
        assert!(j.get("metrics").and_then(|m| m.get("rows_out")).is_some());
        assert!(!j.pretty().contains("time_ms"));

        // Plain EXPLAIN does not execute: no metrics, physical tree shown.
        let rep = sys
            .explain_report(
                "app",
                "select epc from caser where rtime < 300",
                Strategy::Auto,
                false,
            )
            .unwrap();
        assert!(rep.metrics.is_none());
        assert!(rep.text().contains("WindowExec"));
    }

    #[test]
    fn query_report_carries_metrics_tree() {
        let sys = system();
        sys.define_rule("app", DUP).unwrap();
        let (_, report) = sys
            .query_with_strategy("app", "select epc from caser", Strategy::Auto)
            .unwrap();
        let m = report.metrics.as_ref().expect("execution records metrics");
        // The flat counters and the metrics tree agree on window partitions.
        let mut partitions = 0;
        fn sum_partitions(m: &dc_relational::physical::OperatorMetrics, acc: &mut u64) {
            *acc += m.partitions;
            for c in &m.children {
                sum_partitions(c, acc);
            }
        }
        sum_partitions(m, &mut partitions);
        assert_eq!(partitions, report.stats.partitions_executed);
        assert_eq!(report.decision_trace().chosen, report.chosen);
    }

    #[test]
    fn rules_json_roundtrip() {
        let mut sys = system();
        sys.define_rule("app", DUP).unwrap();
        let json = sys.rules_to_json();
        sys.load_rules_from_json(&json).unwrap();
        assert_eq!(sys.rules().len(), 1);
        let clean = sys.query("app", "select epc from caser").unwrap();
        assert_eq!(clean.num_rows(), 3);
    }

    #[test]
    fn drop_rule_restores_dirty_view() {
        let sys = system();
        sys.define_rule("app", DUP).unwrap();
        sys.drop_rule("app", "duplicate").unwrap();
        let out = sys.query("app", "select epc from caser").unwrap();
        assert_eq!(out.num_rows(), 4);
    }

    #[test]
    fn eager_materialization() {
        let sys = system();
        sys.define_rule("app", DUP).unwrap();
        let rows = sys.materialize_cleansed("app", "caser_clean").unwrap();
        assert_eq!(rows, 3);
        // The eager copy answers directly, matching the deferred answer.
        let eager = sys
            .query_dirty("select epc, rtime from caser_clean")
            .unwrap();
        let deferred = sys.query("app", "select epc, rtime from caser").unwrap();
        assert_eq!(eager.sorted_rows(), deferred.sorted_rows());
        // Indexes were carried over.
        assert!(sys
            .catalog()
            .get("caser_clean")
            .unwrap()
            .index("rtime")
            .is_some());
        // No rules -> nothing to materialize.
        assert!(sys.materialize_cleansed("norules", "x").is_err());
    }

    #[test]
    fn parallelism_is_transparent() {
        let sys = system();
        sys.define_rule("app", DUP).unwrap();
        let (serial, serial_report) = sys
            .query_with_strategy("app", "select epc, rtime from caser", Strategy::Auto)
            .unwrap();
        for p in [2, 8] {
            let mut par_sys = system();
            par_sys.define_rule("app", DUP).unwrap();
            par_sys.set_parallelism(p);
            assert_eq!(par_sys.exec_options().parallelism, p);
            let (par, par_report) = par_sys
                .query_with_strategy("app", "select epc, rtime from caser", Strategy::Auto)
                .unwrap();
            assert_eq!(par.sorted_rows(), serial.sorted_rows());
            assert_eq!(par_report.stats, serial_report.stats);
            assert_eq!(par_report.chosen, serial_report.chosen);
            assert_eq!(par_report.parallelism, p);
        }
    }

    #[test]
    fn cleanse_cache_end_to_end() {
        let mut sys = system();
        sys.define_rule("app", DUP).unwrap();
        sys.enable_cleanse_cache(64);
        let sql = "select epc, rtime from caser where rtime < 300";

        let (cold, cold_rep) = sys
            .query_with_strategy("app", sql, Strategy::JoinBack)
            .unwrap();
        assert!(cold_rep.stats.seq_cache_misses > 0);
        assert_eq!(cold_rep.stats.seq_cache_hits, 0);

        let (warm, warm_rep) = sys
            .query_with_strategy("app", sql, Strategy::JoinBack)
            .unwrap();
        assert!(warm_rep.stats.seq_cache_hits > 0);
        assert_eq!(warm_rep.stats.seq_cache_misses, 0);
        assert_eq!(warm.sorted_rows(), cold.sorted_rows());

        // An uncached system agrees byte for byte.
        let plain_sys = system();
        plain_sys.define_rule("app", DUP).unwrap();
        let plain = plain_sys.query("app", sql).unwrap();
        assert_eq!(warm.sorted_rows(), plain.sorted_rows());

        // Appending a read for e1 invalidates exactly that sequence.
        let schema = sys.catalog().get("caser").unwrap().schema().clone();
        let extra = Batch::from_rows(
            schema,
            &[vec![
                Value::str("e1"),
                Value::Int(120),
                Value::str("x"),
                Value::str("r1"),
            ]],
        )
        .unwrap();
        sys.catalog().append("caser", extra).unwrap();
        let (after, after_rep) = sys
            .query_with_strategy("app", sql, Strategy::JoinBack)
            .unwrap();
        assert!(after_rep.stats.seq_cache_invalidations >= 1);
        let fresh = system();
        fresh.define_rule("app", DUP).unwrap();
        let extra2 = Batch::from_rows(
            fresh.catalog().get("caser").unwrap().schema().clone(),
            &[vec![
                Value::str("e1"),
                Value::Int(120),
                Value::str("x"),
                Value::str("r1"),
            ]],
        )
        .unwrap();
        fresh.catalog().append("caser", extra2).unwrap();
        let expect = fresh.query("app", sql).unwrap();
        assert_eq!(after.sorted_rows(), expect.sorted_rows());

        // Lifetime counters accumulate across runs.
        let total = sys.cleanse_cache_stats().unwrap();
        assert!(total.hits >= warm_rep.stats.seq_cache_hits);
        assert!(total.invalidations >= 1);
    }

    #[test]
    fn explain_analyze_reports_cache_line() {
        let mut sys = system();
        sys.define_rule("app", DUP).unwrap();
        sys.enable_cleanse_cache(64);
        let sql = "select epc, rtime from caser where rtime < 300";
        let rep = sys
            .explain_report("app", sql, Strategy::JoinBack, true)
            .unwrap();
        let c = rep.cache.expect("cache activity recorded");
        assert!(c.misses > 0);
        assert!(rep.text().contains("-- cleanse cache: hits=0 misses="));
        assert!(rep
            .to_json()
            .get("cleanse_cache")
            .and_then(|j| j.get("misses"))
            .is_some());
        // Without analyze, no cache activity is recorded.
        let rep = sys
            .explain_report("app", sql, Strategy::JoinBack, false)
            .unwrap();
        assert!(rep.cache.is_none());
        assert!(!rep.text().contains("cleanse cache"));
    }

    #[test]
    fn bad_sql_is_an_error() {
        let sys = system();
        assert!(sys.query("app", "select from").is_err());
        assert!(sys.define_rule("app", "DEFINE nonsense").is_err());
    }
}
