//! # dc-core — the deferred cleansing system
//!
//! The public facade of the reproduction of *"A Deferred Cleansing Method
//! for RFID Data Analytics"* (VLDB 2006). Wire a data catalog, define
//! per-application cleansing rules in extended SQL-TS, and run SQL — the
//! system rewrites each query so it is answered over *cleansed* data,
//! cleansing only what the query needs.
//!
//! ```
//! use dc_core::DeferredCleansingSystem;
//! use dc_relational::prelude::*;
//! use std::sync::Arc;
//!
//! let catalog = Arc::new(Catalog::new());
//! let schema = schema_ref(Schema::new(vec![
//!     Field::new("epc", DataType::Str),
//!     Field::new("rtime", DataType::Int),
//!     Field::new("biz_loc", DataType::Str),
//! ]));
//! catalog.register(Table::new("caser", Batch::from_rows(schema, &[
//!     vec![Value::str("e1"), Value::Int(0), Value::str("shelf")],
//!     vec![Value::str("e1"), Value::Int(60), Value::str("shelf")], // duplicate
//! ]).unwrap()));
//!
//! let sys = DeferredCleansingSystem::with_catalog(catalog);
//! sys.define_rule("shelf-app",
//!     "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime \
//!      AS (A, B) WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins \
//!      ACTION DELETE B").unwrap();
//!
//! let clean = sys.query("shelf-app", "select epc, rtime from caser").unwrap();
//! assert_eq!(clean.num_rows(), 1); // the duplicate is gone — at query time
//! ```

pub mod durable;
pub mod system;

pub use dc_relational::error::AbortReason;
pub use dc_relational::physical::{ExecOptions, OperatorMetrics, QueryBudget};
pub use dc_rewrite::{CacheStats, DecisionTrace, Executed, Rewritten, Strategy};
pub use durable::{recover_system, RecoveryReport, SegmentStore, ShardLog};
pub use system::{CacheActivity, DeferredCleansingSystem, ExplainReport, QueryReport};
