//! Record framing and replay.
//!
//! Frame layout: `[len: u32 LE] [checksum: u64 LE] [payload: len bytes]`
//! where `checksum = fnv1a64(payload)`. Replay scans frames in order and
//! stops at the first frame that is torn (runs past end of file) or
//! fails its checksum; everything before it is the valid prefix, and the
//! reason for stopping is reported as a typed [`LogError`] so callers
//! can distinguish a clean end from a torn tail from corruption.

use dc_storage::fnv1a64;

use crate::{LogDir, LogError};

/// Bytes of framing before each payload: `u32` length + `u64` checksum.
pub const RECORD_HEADER_BYTES: usize = 12;

/// Sanity cap on a single record's payload. Anything larger is framing
/// garbage (a torn or corrupt length field), not a plausible record.
const MAX_RECORD_LEN: u32 = 1 << 30;

/// Frame one payload for appending to a log.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Scan `bytes` as a sequence of framed records. Returns the longest
/// valid record prefix, plus `Some(error)` describing why the scan
/// stopped early (`None` = the buffer ends exactly on a record
/// boundary). Never panics and never allocates based on unvalidated
/// lengths.
pub fn decode_records(bytes: &[u8]) -> (Vec<&[u8]>, Option<LogError>) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let have = bytes.len() - pos;
        if have < RECORD_HEADER_BYTES {
            return (
                records,
                Some(LogError::TruncatedRecord {
                    offset: pos,
                    need: RECORD_HEADER_BYTES,
                    have,
                }),
            );
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        if len > MAX_RECORD_LEN {
            return (
                records,
                Some(LogError::OversizedRecord { offset: pos, len }),
            );
        }
        let need = RECORD_HEADER_BYTES + len as usize;
        if have < need {
            return (
                records,
                Some(LogError::TruncatedRecord {
                    offset: pos,
                    need,
                    have,
                }),
            );
        }
        let checksum = u64::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
            bytes[pos + 8],
            bytes[pos + 9],
            bytes[pos + 10],
            bytes[pos + 11],
        ]);
        let payload = &bytes[pos + RECORD_HEADER_BYTES..pos + need];
        if fnv1a64(payload) != checksum {
            return (records, Some(LogError::BadChecksum { offset: pos }));
        }
        records.push(payload);
        pos += need;
    }
    (records, None)
}

/// Read and decode a log file. A missing file is an empty log (the
/// writer creates it lazily); any other IO failure is an error. The
/// tail error, if any, is returned for the caller to judge — recovery
/// treats a torn tail as the crash it is and keeps the prefix.
#[allow(clippy::type_complexity)]
pub fn read_log(dir: &LogDir, rel: &str) -> Result<(Vec<Vec<u8>>, Option<LogError>), LogError> {
    if !dir.exists(rel) {
        return Ok((Vec::new(), None));
    }
    let bytes = dir.read(rel)?;
    let (records, tail) = decode_records(&bytes);
    Ok((records.into_iter().map(|r| r.to_vec()).collect(), tail))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FailPoint, LogWriter};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dc-log-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_through_writer() {
        let root = tmp_dir("roundtrip");
        let dir = LogDir::create(&root).unwrap();
        let payloads: Vec<Vec<u8>> = vec![b"alpha".to_vec(), vec![], vec![0xFF; 300]];
        let mut w = LogWriter::open(&dir, "commit.log").unwrap();
        for p in &payloads {
            w.append(p).unwrap();
        }
        w.sync().unwrap();
        let (records, tail) = read_log(&dir, "commit.log").unwrap();
        assert_eq!(records, payloads);
        assert!(tail.is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_log_is_empty() {
        let root = tmp_dir("missing");
        let dir = LogDir::create(&root).unwrap();
        let (records, tail) = read_log(&dir, "absent.log").unwrap();
        assert!(records.is_empty());
        assert!(tail.is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_tail_keeps_prefix() {
        let mut bytes = frame_record(b"first");
        let second = frame_record(b"second-record");
        bytes.extend_from_slice(&second[..second.len() - 4]);
        let (records, tail) = decode_records(&bytes);
        assert_eq!(records, vec![b"first".as_slice()]);
        assert!(matches!(tail, Some(LogError::TruncatedRecord { .. })));
    }

    #[test]
    fn checksum_rejects_flipped_byte() {
        let mut bytes = frame_record(b"first");
        let offset_second = bytes.len();
        bytes.extend_from_slice(&frame_record(b"second"));
        bytes.extend_from_slice(&frame_record(b"third"));
        // Flip one payload byte of the second record.
        bytes[offset_second + RECORD_HEADER_BYTES] ^= 0x40;
        let (records, tail) = decode_records(&bytes);
        assert_eq!(records, vec![b"first".as_slice()]);
        assert_eq!(
            tail,
            Some(LogError::BadChecksum {
                offset: offset_second
            })
        );
    }

    #[test]
    fn oversized_length_is_typed_not_allocated() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        let (records, tail) = decode_records(&bytes);
        assert!(records.is_empty());
        assert!(matches!(tail, Some(LogError::OversizedRecord { .. })));
    }

    #[test]
    fn failpoint_tears_writes_and_stays_tripped() {
        let root = tmp_dir("failpoint");
        // Count ticks on a clean run first.
        let dir = LogDir::create(&root).unwrap();
        let mut w = LogWriter::open(&dir, "a.log").unwrap();
        w.append(b"hello world").unwrap();
        w.sync().unwrap();
        let total = dir.failpoint().ticks_requested();
        assert!(total > RECORD_HEADER_BYTES as u64);

        // Now kill the write mid-record.
        let root2 = tmp_dir("failpoint2");
        let fp = FailPoint::after_ticks(5);
        let dir2 = LogDir::with_failpoint(&root2, std::sync::Arc::clone(&fp)).unwrap();
        let mut w2 = LogWriter::open(&dir2, "a.log").unwrap();
        assert!(matches!(
            w2.append(b"hello world"),
            Err(LogError::Injected { .. })
        ));
        assert!(fp.is_tripped());
        assert!(matches!(w2.sync(), Err(LogError::Injected { .. })));
        // The torn 5-byte prefix is on disk and replay reports it torn.
        let (records, tail) = read_log(&dir2, "a.log").unwrap();
        assert!(records.is_empty());
        assert!(matches!(tail, Some(LogError::TruncatedRecord { .. })));
        std::fs::remove_dir_all(&root).unwrap();
        std::fs::remove_dir_all(&root2).unwrap();
    }

    #[test]
    fn atomic_write_is_all_or_nothing_under_injection() {
        let root = tmp_dir("atomic");
        let dir = LogDir::create(&root).unwrap();
        dir.write_atomic("seg.bin", b"old-content").unwrap();
        let total = dir.failpoint().ticks_requested();
        // Re-write with a budget that dies before the rename tick.
        for budget in 0..total {
            let fp = FailPoint::after_ticks(budget);
            let dir2 = LogDir::with_failpoint(&root, fp).unwrap();
            let result = dir2.write_atomic("seg.bin", b"new-content!");
            let content = std::fs::read(root.join("seg.bin")).unwrap();
            if result.is_ok() {
                assert_eq!(content, b"new-content!");
            } else {
                assert!(
                    content == b"old-content" || content == b"new-content!",
                    "target must hold old or new content, never a mix"
                );
            }
            // Reset for the next iteration.
            LogDir::create(&root)
                .unwrap()
                .write_atomic("seg.bin", b"old-content")
                .unwrap();
        }
        std::fs::remove_dir_all(&root).unwrap();
    }
}
