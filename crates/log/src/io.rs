//! Guarded filesystem primitives: a rooted directory handle, atomic
//! whole-file writes, and an append-only log writer.
//!
//! Every mutating operation routes through the directory's
//! [`FailPoint`]: byte writes consume one tick per byte, and each
//! fsync / rename / directory-sync consumes one tick, so an injected
//! crash can land mid-write, between a write and its fsync, or between
//! an fsync and the rename that makes the file visible.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::{FailPoint, LogError};

/// A directory all durable state lives under, with fault-injected IO.
#[derive(Debug, Clone)]
pub struct LogDir {
    root: PathBuf,
    fp: Arc<FailPoint>,
}

impl LogDir {
    /// Open (creating if needed) a durable directory with no injection.
    pub fn create(root: impl AsRef<Path>) -> Result<Self, LogError> {
        Self::with_failpoint(root, FailPoint::unlimited())
    }

    /// Open (creating if needed) a durable directory whose writes are
    /// guarded by `fp`.
    pub fn with_failpoint(root: impl AsRef<Path>, fp: Arc<FailPoint>) -> Result<Self, LogError> {
        let root = root.as_ref().to_path_buf();
        check(&fp, "create_dir")?;
        fs::create_dir_all(&root).map_err(|e| LogError::io("create_dir", &e))?;
        Ok(LogDir { root, fp })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn failpoint(&self) -> &Arc<FailPoint> {
        &self.fp
    }

    /// A child directory sharing this directory's fail point.
    pub fn subdir(&self, rel: &str) -> Result<LogDir, LogError> {
        Self::with_failpoint(self.root.join(rel), Arc::clone(&self.fp))
    }

    pub fn path(&self, rel: &str) -> PathBuf {
        self.root.join(rel)
    }

    pub fn exists(&self, rel: &str) -> bool {
        self.root.join(rel).exists()
    }

    /// Read a whole file. Reads are never fault-injected: crash
    /// injection models process death during writes, and recovery (all
    /// reads) runs in the next process.
    pub fn read(&self, rel: &str) -> Result<Vec<u8>, LogError> {
        fs::read(self.root.join(rel)).map_err(|e| LogError::io("read", &e))
    }

    /// Atomically replace `rel` with `bytes`: write to a temp file,
    /// fsync it, rename over the target, fsync the directory. After a
    /// crash the target holds either the old content or the new — never
    /// a mix — though the rename may not itself be durable until the
    /// directory sync completes.
    pub fn write_atomic(&self, rel: &str, bytes: &[u8]) -> Result<(), LogError> {
        let target = self.root.join(rel);
        let tmp = self.root.join(format!("{rel}.tmp"));
        check(&self.fp, "create")?;
        let mut file = File::create(&tmp).map_err(|e| LogError::io("create", &e))?;
        write_guarded(&self.fp, &mut file, bytes)?;
        tick(&self.fp, "fsync")?;
        file.sync_data().map_err(|e| LogError::io("fsync", &e))?;
        drop(file);
        tick(&self.fp, "rename")?;
        fs::rename(&tmp, &target).map_err(|e| LogError::io("rename", &e))?;
        tick(&self.fp, "dir_fsync")?;
        File::open(&self.root)
            .and_then(|d| d.sync_all())
            .map_err(|e| LogError::io("dir_fsync", &e))?;
        Ok(())
    }
}

/// Fail immediately if the fail point has already fired.
fn check(fp: &FailPoint, op: &str) -> Result<(), LogError> {
    if fp.is_tripped() {
        return Err(LogError::Injected { op: op.to_string() });
    }
    Ok(())
}

/// Consume one tick for a non-byte operation (fsync, rename, ...).
fn tick(fp: &FailPoint, op: &str) -> Result<(), LogError> {
    check(fp, op)?;
    if fp.consume(1) < 1 {
        return Err(LogError::Injected { op: op.to_string() });
    }
    Ok(())
}

/// Write `bytes`, consuming one tick per byte; a short grant writes the
/// granted prefix (the torn write a crash would leave) and fails.
fn write_guarded(fp: &FailPoint, file: &mut File, bytes: &[u8]) -> Result<(), LogError> {
    let granted = fp.consume(bytes.len() as u64) as usize;
    file.write_all(&bytes[..granted])
        .map_err(|e| LogError::io("write", &e))?;
    if granted < bytes.len() {
        // Flush the torn prefix so recovery sees exactly what a real
        // crash could have left behind.
        let _ = file.sync_data();
        return Err(LogError::Injected {
            op: "write".to_string(),
        });
    }
    Ok(())
}

/// Append-only writer over one log file.
#[derive(Debug)]
pub struct LogWriter {
    file: File,
    fp: Arc<FailPoint>,
}

impl LogWriter {
    /// Open `rel` under `dir` for appending, creating it if absent.
    pub fn open(dir: &LogDir, rel: &str) -> Result<Self, LogError> {
        check(dir.failpoint(), "open")?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.path(rel))
            .map_err(|e| LogError::io("open", &e))?;
        Ok(LogWriter {
            file,
            fp: Arc::clone(dir.failpoint()),
        })
    }

    /// Append one framed record (length + checksum + payload). Not
    /// durable until [`LogWriter::sync`] returns.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), LogError> {
        check(&self.fp, "append")?;
        let frame = crate::record::frame_record(payload);
        write_guarded(&self.fp, &mut self.file, &frame)
    }

    /// Fsync all appended records: the durability barrier.
    pub fn sync(&mut self) -> Result<(), LogError> {
        tick(&self.fp, "fsync")?;
        self.file.sync_data().map_err(|e| LogError::io("fsync", &e))
    }
}
