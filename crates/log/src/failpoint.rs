//! Tick-budgeted fault injection for the durable write path.
//!
//! Same shape as the service layer's shard fault injection (an atomic
//! consulted on the hot path, zero cost when disarmed), but budgeted in
//! *ticks* so a sweep can place a crash at every interesting boundary:
//! each byte written costs one tick, and each fsync, rename, and
//! directory sync costs one tick of its own. A budget of `n` lets the
//! first `n` ticks through and kills the operation that needs tick
//! `n + 1`; once tripped, every later operation fails too — the process
//! is "dead" until the fail point is replaced.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const UNLIMITED: u64 = u64::MAX;

/// Shared crash switch threaded through [`crate::LogDir`] /
/// [`crate::LogWriter`] operations.
#[derive(Debug)]
pub struct FailPoint {
    budget: AtomicU64,
    tripped: AtomicBool,
    consumed: AtomicU64,
}

impl FailPoint {
    /// Never fires. Also counts ticks, so an uninjected run measures the
    /// total tick count a sweep should cover.
    pub fn unlimited() -> Arc<Self> {
        Arc::new(FailPoint {
            budget: AtomicU64::new(UNLIMITED),
            tripped: AtomicBool::new(false),
            consumed: AtomicU64::new(0),
        })
    }

    /// Allows exactly `ticks` ticks, then fails every operation.
    pub fn after_ticks(ticks: u64) -> Arc<Self> {
        Arc::new(FailPoint {
            budget: AtomicU64::new(ticks),
            tripped: AtomicBool::new(false),
            consumed: AtomicU64::new(0),
        })
    }

    /// Consume up to `want` ticks; returns how many were granted. A
    /// short grant trips the fail point permanently.
    pub(crate) fn consume(&self, want: u64) -> u64 {
        self.consumed.fetch_add(want, Ordering::Relaxed);
        if self.tripped.load(Ordering::Acquire) {
            return 0;
        }
        let mut cur = self.budget.load(Ordering::Acquire);
        loop {
            if cur == UNLIMITED {
                return want;
            }
            let grant = cur.min(want);
            match self.budget.compare_exchange_weak(
                cur,
                cur - grant,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    if grant < want {
                        self.tripped.store(true, Ordering::Release);
                    }
                    return grant;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Whether an injected crash has fired.
    pub fn is_tripped(&self) -> bool {
        self.tripped.load(Ordering::Acquire)
    }

    /// Total ticks requested so far (bytes written + 1 per fsync/rename).
    /// On an unlimited run this is the sweep domain for crash points.
    pub fn ticks_requested(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_grants_everything_and_counts() {
        let fp = FailPoint::unlimited();
        assert_eq!(fp.consume(10), 10);
        assert_eq!(fp.consume(3), 3);
        assert_eq!(fp.ticks_requested(), 13);
        assert!(!fp.is_tripped());
    }

    #[test]
    fn budget_grants_partially_then_trips_forever() {
        let fp = FailPoint::after_ticks(5);
        assert_eq!(fp.consume(3), 3);
        assert!(!fp.is_tripped());
        // 2 ticks left: a 4-tick request gets a partial grant and trips.
        assert_eq!(fp.consume(4), 2);
        assert!(fp.is_tripped());
        // Dead from here on, even for affordable requests.
        assert_eq!(fp.consume(0), 0);
        assert_eq!(fp.consume(1), 0);
    }

    #[test]
    fn zero_budget_fails_first_op() {
        let fp = FailPoint::after_ticks(0);
        assert_eq!(fp.consume(1), 0);
        assert!(fp.is_tripped());
    }
}
