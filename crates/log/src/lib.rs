//! `dc-log` — append-only durable commit log primitives.
//!
//! Sits directly above `dc-storage`: it knows about bytes, files, and
//! checksums, not about tables or epochs. The layers above compose it
//! into a durability story:
//!
//! * [`LogError`] — every failure mode is typed; nothing in this crate
//!   panics on corrupt or torn input;
//! * [`FailPoint`] — a tick-budgeted fault injector threaded through all
//!   mutating file operations, so tests can kill the writer at any byte
//!   boundary and between an fsync and its rename;
//! * [`LogDir`] — a rooted directory handle with atomic file writes
//!   (`tmp` + fsync + rename + directory fsync);
//! * [`LogWriter`] — appends length-prefixed, FNV-1a-checksummed records
//!   to a log file and fsyncs on commit;
//! * [`decode_records`] / [`read_log`] — replay: return the longest
//!   well-formed record prefix plus a typed description of the tail.
//!
//! Crash-safety contract: a record is durable once [`LogWriter::sync`]
//! returns. After a crash, replay recovers *at least* every synced
//! record and *at most* a prefix extended by records that were written
//! but not yet synced — never a torn or corrupt record, which the
//! per-record checksum rejects.

mod failpoint;
mod io;
mod record;

pub use failpoint::FailPoint;
pub use io::{LogDir, LogWriter};
pub use record::{decode_records, frame_record, read_log, RECORD_HEADER_BYTES};

use std::fmt;

/// Typed failure for log IO, framing, and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// Underlying filesystem error (message-only so the type stays `Eq`).
    Io { op: String, message: String },
    /// A [`FailPoint`] killed the operation (simulated crash).
    Injected { op: String },
    /// The log ends mid-record: a torn write. `offset` is where the
    /// record started; the bytes before it are a valid prefix.
    TruncatedRecord {
        offset: usize,
        need: usize,
        have: usize,
    },
    /// A record frame whose payload does not match its checksum.
    BadChecksum { offset: usize },
    /// A length field beyond the sanity cap — framing garbage, not a
    /// plausible record.
    OversizedRecord { offset: usize, len: u32 },
    /// A checksummed payload that does not decode as any known record.
    Malformed { context: String },
    /// An unknown record kind byte inside a valid frame.
    BadKind { kind: u8 },
    /// A referenced data file (e.g. a columnar segment) failed to load
    /// or validate.
    Corrupt { file: String, detail: String },
}

impl LogError {
    pub(crate) fn io(op: &str, err: &std::io::Error) -> Self {
        LogError::Io {
            op: op.to_string(),
            message: err.to_string(),
        }
    }

    /// Wrap a lower-level wire decode failure with context.
    pub fn malformed(context: impl Into<String>) -> Self {
        LogError::Malformed {
            context: context.into(),
        }
    }
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io { op, message } => write!(f, "io error during {op}: {message}"),
            LogError::Injected { op } => write!(f, "injected fault during {op}"),
            LogError::TruncatedRecord { offset, need, have } => write!(
                f,
                "torn record at offset {offset}: need {need} bytes, have {have}"
            ),
            LogError::BadChecksum { offset } => {
                write!(f, "checksum mismatch for record at offset {offset}")
            }
            LogError::OversizedRecord { offset, len } => {
                write!(f, "implausible record length {len} at offset {offset}")
            }
            LogError::Malformed { context } => write!(f, "malformed record: {context}"),
            LogError::BadKind { kind } => write!(f, "unknown record kind {kind}"),
            LogError::Corrupt { file, detail } => write!(f, "corrupt file {file}: {detail}"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<dc_storage::WireError> for LogError {
    fn from(e: dc_storage::WireError) -> Self {
        LogError::malformed(e.to_string())
    }
}
