//! Rewrite decision traces — why a candidate was chosen.
//!
//! §5.2/§5.3 choose "the statement with the cheapest cost estimate" among
//! the naive, expanded, and join-back variants. A [`DecisionTrace`] records
//! that decision for one query: the strategy asked for, every compiled
//! candidate with its cost estimate, the winner, the derived context and
//! expanded conditions, and any soundness notes — so Figures 7–9 runs can be
//! audited against the paper's claims instead of trusting the engine
//! blindly.

use crate::engine::{Candidate, Rewritten, Strategy};
use dc_json::Json;
use std::fmt::Write as _;

/// The record of one rewrite decision.
#[derive(Debug, Clone)]
pub struct DecisionTrace {
    /// Strategy requested (`Auto` considers all candidate families).
    pub strategy: String,
    /// Label of the winning candidate.
    pub chosen: String,
    /// Every compiled candidate, cheapest first.
    pub candidates: Vec<Candidate>,
    /// The expanded condition `ec = s ∨ cc`, rendered, when feasible.
    pub expanded_condition: Option<String>,
    /// The overall context condition `cc`, rendered, when feasible.
    pub context_condition: Option<String>,
    /// Soundness fallbacks and other diagnostics.
    pub notes: Vec<String>,
}

impl DecisionTrace {
    /// Multi-line text rendering (the `EXPLAIN` header block).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "rewrite strategy: {}", self.strategy);
        let _ = writeln!(out, "chosen: {}", self.chosen);
        for c in &self.candidates {
            let _ = writeln!(
                out,
                "candidate: {} (cost {:.0}, est_rows {:.0})",
                c.label, c.cost, c.est_rows
            );
        }
        if let Some(cc) = &self.context_condition {
            let _ = writeln!(out, "context condition: {cc}");
        }
        if let Some(ec) = &self.expanded_condition {
            let _ = writeln!(out, "expanded condition: {ec}");
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        out
    }

    pub fn to_json(&self) -> Json {
        let candidates = self
            .candidates
            .iter()
            .map(|c| {
                Json::obj()
                    .set("label", c.label.as_str())
                    .set("cost", Json::Num(c.cost))
                    .set("est_rows", Json::Num(c.est_rows))
            })
            .collect();
        Json::obj()
            .set("strategy", self.strategy.as_str())
            .set("chosen", self.chosen.as_str())
            .set("candidates", Json::Arr(candidates))
            .set(
                "context_condition",
                self.context_condition
                    .as_deref()
                    .map_or(Json::Null, Json::from),
            )
            .set(
                "expanded_condition",
                self.expanded_condition
                    .as_deref()
                    .map_or(Json::Null, Json::from),
            )
            .set(
                "notes",
                Json::Arr(self.notes.iter().map(|n| Json::from(n.as_str())).collect()),
            )
    }
}

impl Rewritten {
    /// The decision trace of this rewrite, tagged with the strategy that
    /// produced it.
    pub fn decision_trace(&self, strategy: Strategy) -> DecisionTrace {
        DecisionTrace {
            strategy: format!("{strategy:?}"),
            chosen: self.chosen.clone(),
            candidates: self.candidates.clone(),
            expanded_condition: self.expanded_condition.as_ref().map(|e| e.to_string()),
            context_condition: self.context_condition.as_ref().map(|e| e.to_string()),
            notes: self.notes.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> DecisionTrace {
        DecisionTrace {
            strategy: "Auto".into(),
            chosen: "expanded(0 joins below cleansing)".into(),
            candidates: vec![
                Candidate {
                    label: "expanded(0 joins below cleansing)".into(),
                    cost: 120.0,
                    est_rows: 40.0,
                },
                Candidate {
                    label: "join-back(0 semi-joins)".into(),
                    cost: 300.0,
                    est_rows: 40.0,
                },
            ],
            expanded_condition: Some("rtime < 100 OR rtime < 400".into()),
            context_condition: Some("rtime < 400".into()),
            notes: vec!["example note".into()],
        }
    }

    #[test]
    fn text_rendering() {
        let t = trace().render_text();
        assert!(t.contains("chosen: expanded(0 joins below cleansing)"));
        assert!(t.contains("candidate: join-back(0 semi-joins) (cost 300"));
        assert!(t.contains("expanded condition: rtime < 100 OR rtime < 400"));
        assert!(t.contains("note: example note"));
    }

    #[test]
    fn json_rendering() {
        let j = trace().to_json();
        assert_eq!(j.get("strategy").and_then(Json::as_str), Some("Auto"));
        let cands = j.get("candidates").and_then(Json::as_arr).unwrap();
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].get("cost").and_then(Json::as_f64), Some(120.0));
        assert!(j.get("context_condition").and_then(Json::as_str).is_some());
    }
}
