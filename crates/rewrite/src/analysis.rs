//! Correlation and transitivity analysis (paper §5.2, Figure 4, lines 1–10).
//!
//! For each context reference X of a cleansing rule, assemble the
//! *correlation condition* `cr` — the rule conjuncts mentioning X plus the
//! conjuncts implied by the pattern on the cluster key (`X.ckey = T.ckey`)
//! and the sequence key (`X.skey ≤/≥ T.skey`). For *position-based*
//! (non-`*`) references only the **position-preserving** subset is kept
//! (Observation 1): the ckey equality and sequence-key difference
//! constraints; correlations on any other column would let selected context
//! rows shift relative positions and are discarded.
//!
//! Transitivity between `cr` and the query condition *s* (bound to the
//! target reference) then derives the *context condition* on X: constant
//! bounds propagate through difference constraints
//! (`B.rtime < A.rtime + 300 ∧ A.rtime ≤ T1 ⟹ B.rtime < T1 + 300`),
//! memberships propagate through equalities, and X-only rule conjuncts
//! (`B.reader = 'readerX'`) pass through directly.

use dc_relational::constraint::{normalize_conjunct, CmpOp, ConstConstraint, Normalized};
use dc_relational::expr::{split_conjuncts, ColumnRef, Expr};
use dc_relational::value::Value;
use dc_rules::RuleTemplate;
use dc_sqlts::PatternRef;

/// The context condition derived for one context reference: a conjunction of
/// predicates over X's columns (qualifier = the reference name). `None`
/// means no condition could be derived — the expanded rewrite is infeasible
/// for this rule (Figure 4 line 9).
pub type ContextCondition = Option<Vec<Expr>>;

/// Which pattern references does this expression mention?
fn refs_of(expr: &Expr) -> Vec<String> {
    let mut cols = Vec::new();
    expr.referenced_columns(&mut cols);
    let mut refs: Vec<String> = cols.iter().filter_map(|c| c.qualifier.clone()).collect();
    refs.sort_unstable();
    refs.dedup();
    refs
}

/// If `c` is `count(inner) CMP k` (either orientation), return `inner`.
fn count_threshold_inner(c: &Expr) -> Option<Expr> {
    let Expr::Binary { left, op, right } = c else {
        return None;
    };
    if !op.is_comparison() {
        return None;
    }
    match (left.as_ref(), right.as_ref()) {
        (Expr::CountIf(inner), Expr::Literal(_)) | (Expr::Literal(_), Expr::CountIf(inner)) => {
            Some((**inner).clone())
        }
        _ => None,
    }
}

/// Assemble the correlation condition between context reference `x` and the
/// rule's target, as conjunct expressions (qualifiers are reference names).
pub fn correlation_condition(rule: &RuleTemplate, x: &PatternRef) -> Vec<Expr> {
    let def = &rule.def;
    let target = def.target().to_string();
    let mut cr: Vec<Expr> = Vec::new();

    // Explicit conjuncts of the rule condition referring to X.
    for c in split_conjuncts(&def.condition) {
        if refs_of(&c).iter().any(|r| r == &x.name) {
            cr.push(c);
        }
    }

    // Implied: same sequence (cluster-key equality).
    cr.push(
        Expr::Column(ColumnRef::qualified(x.name.clone(), def.cluster_by.clone())).eq(
            Expr::Column(ColumnRef::qualified(target.clone(), def.cluster_by.clone())),
        ),
    );

    // Implied: sequence-key order from the pattern position. Non-strict (≤ /
    // ≥): sequence ties on the key are ordered arbitrarily, so the safe
    // implication is inclusive — slightly weaker context conditions, never
    // incorrect ones.
    let xi = def.pattern.position_of(&x.name);
    let ti = def.pattern.position_of(&target);
    if let (Some(xi), Some(ti)) = (xi, ti) {
        let xk = Expr::Column(ColumnRef::qualified(
            x.name.clone(),
            def.sequence_by.clone(),
        ));
        let tk = Expr::Column(ColumnRef::qualified(
            target.clone(),
            def.sequence_by.clone(),
        ));
        if xi < ti {
            cr.push(xk.lt_eq(tk));
        } else {
            cr.push(xk.gt_eq(tk));
        }
    }

    if !x.is_set {
        // Position-based reference: keep only position-preserving conjuncts.
        cr.retain(|c| is_position_preserving(c, &x.name, &target, def));
    }
    cr
}

/// Observation 1: position-preserving correlation conjuncts are the ckey
/// equality and sequence-key difference constraints between X and the target.
fn is_position_preserving(conjunct: &Expr, x: &str, target: &str, def: &dc_sqlts::RuleDef) -> bool {
    let Some(Normalized::Diff(d)) = normalize_conjunct(conjunct) else {
        return false;
    };
    let between = |a: &ColumnRef, b: &ColumnRef| {
        a.qualifier.as_deref() == Some(x) && b.qualifier.as_deref() == Some(target)
            || a.qualifier.as_deref() == Some(target) && b.qualifier.as_deref() == Some(x)
    };
    if !between(&d.x, &d.y) {
        return false;
    }
    // ckey equality...
    if d.op == CmpOp::Eq
        && d.offset == 0
        && d.x.name == def.cluster_by
        && d.y.name == def.cluster_by
    {
        return true;
    }
    // ... or any skey range constraint.
    d.x.name == def.sequence_by
        && d.y.name == def.sequence_by
        && matches!(
            d.op,
            CmpOp::Lt | CmpOp::LtEq | CmpOp::Gt | CmpOp::GtEq | CmpOp::Eq
        )
}

/// Derive the context condition for context reference `x` by transitivity
/// between its correlation condition and the query conjuncts `s` (which the
/// caller has re-qualified to the rule's *target* reference name).
///
/// Returns `None` when nothing can be derived (Figure 4 line 9).
pub fn context_condition(
    rule: &RuleTemplate,
    x: &PatternRef,
    s_on_target: &[Expr],
) -> ContextCondition {
    let cr = correlation_condition(rule, x);
    let mut derived: Vec<Expr> = Vec::new();

    // Direct pass-through: correlation conjuncts referring to X only.
    // A count-threshold conjunct (`count(inner) >= k`) is not a per-row
    // predicate; only rows satisfying `inner` influence the count, so the
    // inner predicate passes through instead.
    for c in &cr {
        let refs = refs_of(c);
        if refs.len() == 1 && refs[0] == x.name {
            match count_threshold_inner(c) {
                Some(inner) => derived.push(inner),
                None if !dc_rules::compile::contains_count_if(c) => derived.push(c.clone()),
                None => {}
            }
        }
    }

    // Normalize the query conjuncts on the target.
    let mut s_consts: Vec<ConstConstraint> = Vec::new();
    let mut s_inlists: Vec<(ColumnRef, Vec<Value>)> = Vec::new();
    for sc in s_on_target {
        match normalize_conjunct(sc) {
            Some(Normalized::Const(c)) => s_consts.push(c),
            _ => {
                if let Expr::InList {
                    expr,
                    list,
                    negated: false,
                } = sc
                {
                    if let Expr::Column(c) = expr.as_ref() {
                        s_inlists.push((c.clone(), list.clone()));
                    }
                }
            }
        }
    }

    // Propagate bounds through difference constraints.
    for c in &cr {
        let Some(Normalized::Diff(d)) = normalize_conjunct(c) else {
            continue;
        };
        // Orient with X on the left.
        let candidates = [d.clone(), d.swapped()];
        let Some(d) = candidates
            .into_iter()
            .find(|d| d.x.qualifier.as_deref() == Some(x.name.as_str()))
        else {
            continue;
        };
        // X.colx OP T.coly + offset — the right side must be the target.
        if d.y.qualifier.as_deref() != Some(rule.def.target()) {
            continue;
        }
        for sc in &s_consts {
            if sc.x != d.y {
                continue;
            }
            let derived_op = match d.op {
                // X = T.col + c: any bound on T.col transfers as-is.
                CmpOp::Eq => Some(sc.op),
                // X < T.col + c ∧ T.col ≤/=/< v  ⟹  X </≤ v + c.
                CmpOp::Lt | CmpOp::LtEq if sc.op.is_upper() => {
                    Some(if d.op.is_strict() || sc.op.is_strict() {
                        CmpOp::Lt
                    } else {
                        CmpOp::LtEq
                    })
                }
                // X > T.col + c ∧ T.col ≥/=/> v  ⟹  X >/≥ v + c.
                CmpOp::Gt | CmpOp::GtEq if sc.op.is_lower() => {
                    Some(if d.op.is_strict() || sc.op.is_strict() {
                        CmpOp::Gt
                    } else {
                        CmpOp::GtEq
                    })
                }
                _ => None,
            };
            let Some(op) = derived_op else { continue };
            // Shift the bound by the offset (integer bounds only, unless 0).
            let shifted = if d.offset == 0 {
                Some(ConstConstraint {
                    x: d.x.clone(),
                    op,
                    value: sc.value.clone(),
                })
            } else {
                sc.value.as_int().map(|v| ConstConstraint {
                    x: d.x.clone(),
                    op,
                    value: Value::Int(v + d.offset),
                })
            };
            if let Some(cc) = shifted {
                derived.push(cc.to_expr());
            }
        }
        // Membership propagates through exact equalities.
        if d.op == CmpOp::Eq && d.offset == 0 {
            for (col, list) in &s_inlists {
                if *col == d.y {
                    derived.push(Expr::InList {
                        expr: Box::new(Expr::Column(d.x.clone())),
                        list: list.clone(),
                        negated: false,
                    });
                }
            }
        }
    }

    // Dedupe (syntactic).
    let mut seen: Vec<Expr> = Vec::new();
    for d in derived {
        if !seen.contains(&d) {
            seen.push(d);
        }
    }
    if seen.is_empty() {
        None
    } else {
        Some(seen)
    }
}

/// Re-qualify conjuncts on the reads alias to the rule's target reference
/// (binding *s* to T, Figure 4 line 6). Unqualified columns also bind to the
/// target: `s` comes from the reads scan's pushed filter, so every column in
/// it is a reads column whether the SQL text qualified it or not.
pub fn bind_to_target(s: &[Expr], alias: &str, target: &str) -> Vec<Expr> {
    let alias = alias.to_string();
    let target = target.to_string();
    s.iter()
        .map(|e| {
            e.transform(&|node| match node {
                Expr::Column(c)
                    if c.qualifier.is_none() || c.qualifier.as_deref() == Some(alias.as_str()) =>
                {
                    Expr::Column(ColumnRef::qualified(target.clone(), c.name))
                }
                other => other,
            })
        })
        .collect()
}

/// Re-qualify conjuncts from one qualifier to another (columns with other
/// qualifiers are left alone).
pub fn requalify(e: &Expr, from: &str, to: &str) -> Expr {
    let from = from.to_string();
    let to = to.to_string();
    e.transform(&|node| match node {
        Expr::Column(c) if c.qualifier.as_deref() == Some(from.as_str()) => {
            Expr::Column(ColumnRef::qualified(to.clone(), c.name))
        }
        other => other,
    })
}

/// Does the rule's IN-style join key on column `key` propagate to every
/// context reference (i.e. is `X.key = T.key` position-preserving-correlated
/// for all X)? This decides whether a dimension join may be pushed below
/// cleansing (paper §5.2, join query support). The cluster key always
/// qualifies.
pub fn join_key_propagates(rule: &RuleTemplate, key: &str) -> bool {
    if key.eq_ignore_ascii_case(&rule.def.cluster_by) {
        return true;
    }
    let target = rule.def.target().to_string();
    rule.def.context_refs().iter().all(|x| {
        correlation_condition(rule, x).iter().any(|c| {
            matches!(
                normalize_conjunct(c),
                Some(Normalized::Diff(d))
                    if d.op == CmpOp::Eq
                        && d.offset == 0
                        && d.x.name.eq_ignore_ascii_case(key)
                        && d.y.name.eq_ignore_ascii_case(key)
                        && ((d.x.qualifier.as_deref() == Some(x.name.as_str())
                            && d.y.qualifier.as_deref() == Some(target.as_str()))
                            || (d.y.qualifier.as_deref() == Some(x.name.as_str())
                                && d.x.qualifier.as_deref() == Some(target.as_str())))
            )
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_rules::compile_rule;
    use dc_sqlts::parse_rule;

    fn rule(text: &str) -> RuleTemplate {
        compile_rule(&parse_rule(text).unwrap()).unwrap()
    }

    const READER: &str = "DEFINE reader ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
        WHERE B.reader = 'readerX' and B.rtime - A.rtime < 5 mins ACTION DELETE A";
    const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
        WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";
    const CYCLE: &str = "DEFINE cycle ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B, C) \
        WHERE A.biz_loc = C.biz_loc and A.biz_loc != B.biz_loc ACTION DELETE B";

    fn ctx<'a>(r: &'a RuleTemplate, name: &str) -> &'a PatternRef {
        r.def.pattern.get(name).unwrap()
    }

    #[test]
    fn reader_rule_q1_matches_paper_cc1() {
        // s: A.rtime <= T1 (T1 = 10000). Expect the paper's cc1:
        // B.rtime < T1 + 5min (strict, from the rule's `<`) and
        // B.reader = 'readerX'.
        let r = rule(READER);
        let s = vec![Expr::col("a.rtime").lt_eq(Expr::lit(10_000i64))];
        let cc = context_condition(&r, ctx(&r, "b"), &s).unwrap();
        let rendered: Vec<String> = cc.iter().map(|e| e.to_string()).collect();
        assert!(
            rendered
                .iter()
                .any(|s| s.contains("reader") && s.contains("readerX")),
            "{rendered:?}"
        );
        assert!(
            rendered.iter().any(|s| s.contains("b.rtime < 10300")),
            "{rendered:?}"
        );
    }

    #[test]
    fn reader_rule_q2_lower_bound() {
        // s: A.rtime >= T2: B.rtime >= T2 via the implied B.skey >= A.skey.
        let r = rule(READER);
        let s = vec![Expr::col("a.rtime").gt_eq(Expr::lit(5_000i64))];
        let cc = context_condition(&r, ctx(&r, "b"), &s).unwrap();
        let rendered: Vec<String> = cc.iter().map(|e| e.to_string()).collect();
        assert!(
            rendered.iter().any(|s| s.contains("b.rtime >= 5000")),
            "{rendered:?}"
        );
    }

    #[test]
    fn duplicate_rule_drops_biz_loc_correlation() {
        // Position-based context A: the A.biz_loc = B.biz_loc correlation is
        // NOT position-preserving and must be discarded (Observation 1b).
        let r = rule(DUP);
        let cr = correlation_condition(&r, ctx(&r, "a"));
        assert!(
            !cr.iter().any(|c| c.to_string().contains("biz_loc")),
            "{cr:?}"
        );
        // ckey equality and both skey constraints survive.
        assert!(cr.iter().any(|c| c.to_string().contains("a.epc = b.epc")));
        assert_eq!(cr.len(), 3);
    }

    #[test]
    fn duplicate_rule_q1_upper_bound() {
        let r = rule(DUP);
        let s = vec![Expr::col("b.rtime").lt_eq(Expr::lit(10_000i64))];
        let cc = context_condition(&r, ctx(&r, "a"), &s).unwrap();
        // Table 1 (c2): rtime <= T1.
        assert!(cc
            .iter()
            .any(|c| c.to_string().contains("a.rtime <= 10000")));
    }

    #[test]
    fn duplicate_rule_q2_sound_lower_bound() {
        // Paper Table 1 prints "rtime >= T2+10min" for this cell; the sound
        // derivation is rtime > T2 - t1 through A.rtime > B.rtime - 300.
        let r = rule(DUP);
        let s = vec![Expr::col("b.rtime").gt_eq(Expr::lit(5_000i64))];
        let cc = context_condition(&r, ctx(&r, "a"), &s).unwrap();
        assert!(
            cc.iter().any(|c| c.to_string().contains("a.rtime > 4700")),
            "{cc:?}"
        );
    }

    #[test]
    fn cycle_rule_q1_infeasible_via_c() {
        // Context C follows the target with no bound; an upper-bound query
        // derives nothing on C (Table 1: {}).
        let r = rule(CYCLE);
        let s = vec![Expr::col("b.rtime").lt_eq(Expr::lit(10_000i64))];
        assert!(context_condition(&r, ctx(&r, "c"), &s).is_none());
        // ...but context A does derive a bound.
        assert!(context_condition(&r, ctx(&r, "a"), &s).is_some());
    }

    #[test]
    fn membership_propagates_through_ckey() {
        let r = rule(READER);
        let s = vec![Expr::InList {
            expr: Box::new(Expr::col("a.epc")),
            list: vec![Value::str("e1"), Value::str("e2")],
            negated: false,
        }];
        let cc = context_condition(&r, ctx(&r, "b"), &s).unwrap();
        assert!(cc.iter().any(|c| matches!(c, Expr::InList { expr, .. }
                if expr.to_string() == "b.epc")));
    }

    #[test]
    fn string_equality_propagates() {
        let r = rule(READER);
        let s = vec![Expr::col("a.epc").eq(Expr::lit("e42"))];
        let cc = context_condition(&r, ctx(&r, "b"), &s).unwrap();
        assert!(cc.iter().any(|c| c.to_string().contains("b.epc = 'e42'")));
    }

    #[test]
    fn join_key_propagation() {
        let r = rule(READER);
        assert!(join_key_propagates(&r, "epc")); // cluster key
        assert!(!join_key_propagates(&r, "biz_loc"));
        assert!(!join_key_propagates(&r, "biz_step"));
        let d = rule(DUP);
        assert!(join_key_propagates(&d, "epc"));
        // The biz_loc equality was discarded as non-position-preserving.
        assert!(!join_key_propagates(&d, "biz_loc"));
    }

    #[test]
    fn bind_and_requalify() {
        let s = vec![Expr::col("c.rtime").lt(Expr::lit(5i64))];
        let bound = bind_to_target(&s, "c", "a");
        assert_eq!(bound[0].to_string(), "(a.rtime < 5)");
    }

    #[test]
    fn no_derivation_returns_none() {
        let r = rule(READER);
        // Query constrains a column with no correlation at all.
        let s = vec![Expr::col("a.biz_step").eq(Expr::lit("s1"))];
        // B still gets its direct conjunct (reader='readerX'), so feasible...
        assert!(context_condition(&r, ctx(&r, "b"), &s).is_some());
        // ...whereas a cycle-rule context with nothing derivable is None.
        let c = rule(CYCLE);
        assert!(context_condition(&c, ctx(&c, "c"), &s).is_none());
    }
}
