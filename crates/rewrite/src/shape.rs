//! Query-shape analysis: decomposing a user plan around the reads table.
//!
//! The rewrite engine (paper §3, step 3) intercepts the user's query and
//! needs, from its plan: the scan of the reads table R, the local condition
//! *s* on R, the dimension joins `R ⋈ D_i` directly around it, and the rest
//! of the query (the *consumer* — aggregations, OLAP windows, projections —
//! which is preserved verbatim above the rewritten island).

use dc_relational::error::{Error, Result};
use dc_relational::expr::{split_conjuncts, Expr};
use dc_relational::join::JoinType;
use dc_relational::optimizer::{optimize, OptimizerConfig};
use dc_relational::plan::LogicalPlan;
use dc_relational::table::Catalog;

/// Marker table name standing for the island inside the consumer plan.
pub const HOLE: &str = "__rewrite_hole__";

/// One dimension join hanging off the island.
#[derive(Debug, Clone)]
pub struct DimJoin {
    /// The dimension subplan (with its local predicates pushed down).
    pub plan: LogicalPlan,
    /// Join keys on the island side (R or an earlier dimension).
    pub left_keys: Vec<Expr>,
    /// Join keys on the dimension side.
    pub right_keys: Vec<Expr>,
    /// True when every island-side key is a column of R itself. Only such
    /// dims participate in the paper's push-below-cleansing / semi-join
    /// machinery; chained dims (joined through another dimension, like
    /// `product` through `epc_info` in q2) are always re-joined above.
    pub direct: bool,
}

/// The decomposed query.
#[derive(Debug, Clone)]
pub struct QueryShape {
    /// The consumer plan with a `Scan(__rewrite_hole__)` where the island was.
    pub consumer: LogicalPlan,
    /// The reads table name.
    pub table: String,
    /// The alias under which R's columns appear in the query.
    pub alias: String,
    /// Conjuncts of the query condition local to R (alias-qualified).
    pub s: Vec<Expr>,
    /// Dimension joins in original join order.
    pub dims: Vec<DimJoin>,
    /// Island filter conjuncts that span R and dimensions.
    pub leftover: Vec<Expr>,
}

impl QueryShape {
    /// The conjoined `s` condition (TRUE when empty).
    pub fn s_expr(&self) -> Option<Expr> {
        dc_relational::expr::conjoin(self.s.clone())
    }

    /// Substitute `replacement` for the hole in the consumer.
    pub fn splice(&self, replacement: LogicalPlan) -> LogicalPlan {
        replace_hole(self.consumer.clone(), &replacement)
    }

    /// Re-join dimensions above `base`, in original order, skipping indexes
    /// in `skip` (already joined below), then apply the leftover filter.
    pub fn rejoin_dims(&self, base: LogicalPlan, skip: &[usize]) -> LogicalPlan {
        let mut plan = base;
        for (i, d) in self.dims.iter().enumerate() {
            if skip.contains(&i) {
                continue;
            }
            plan = plan.join(
                d.plan.clone(),
                d.left_keys.clone(),
                d.right_keys.clone(),
                JoinType::Inner,
            );
        }
        match dc_relational::expr::conjoin(self.leftover.clone()) {
            Some(p) => plan.filter(p),
            None => plan,
        }
    }
}

fn replace_hole(plan: LogicalPlan, replacement: &LogicalPlan) -> LogicalPlan {
    if let LogicalPlan::Scan { table, .. } = &plan {
        if table == HOLE {
            return replacement.clone();
        }
    }
    // Rebuild with children replaced.
    map_children(plan, &mut |c| replace_hole(c, replacement))
}

fn map_children(plan: LogicalPlan, f: &mut impl FnMut(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { .. } => plan,
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(f(*input)),
            predicate,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(f(*input)),
            exprs,
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(f(*input)),
            keys,
        },
        LogicalPlan::Window {
            input,
            partition_by,
            order_by,
            exprs,
            presorted,
        } => LogicalPlan::Window {
            input: Box::new(f(*input)),
            partition_by,
            order_by,
            exprs,
            presorted,
        },
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            left_keys,
            right_keys,
            join_type,
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(f(*input)),
            group_by,
            aggs,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(f(*input)),
        },
        LogicalPlan::Union { inputs } => LogicalPlan::Union {
            inputs: inputs.into_iter().map(f).collect(),
        },
        LogicalPlan::Limit { input, fetch } => LogicalPlan::Limit {
            input: Box::new(f(*input)),
            fetch,
        },
        LogicalPlan::SubqueryAlias { input, alias } => LogicalPlan::SubqueryAlias {
            input: Box::new(f(*input)),
            alias,
        },
    }
}

/// Does this subtree contain a scan of `table`?
fn contains_scan(plan: &LogicalPlan, table: &str) -> bool {
    if let LogicalPlan::Scan { table: t, .. } = plan {
        if t.eq_ignore_ascii_case(table) {
            return true;
        }
    }
    plan.inputs().iter().any(|c| contains_scan(c, table))
}

fn count_scans(plan: &LogicalPlan, table: &str) -> usize {
    let here = matches!(plan, LogicalPlan::Scan { table: t, .. } if t.eq_ignore_ascii_case(table))
        as usize;
    here + plan
        .inputs()
        .iter()
        .map(|c| count_scans(c, table))
        .sum::<usize>()
}

/// Decompose a user plan around its (single) scan of `reads_table`.
///
/// The plan is first normalized by predicate pushdown so that single-table
/// conjuncts sit in the scans. The *island* is the maximal chain of
/// `Filter`/`Inner Join` nodes directly above the R scan; everything above
/// becomes the consumer.
pub fn analyze(plan: &LogicalPlan, reads_table: &str, catalog: &Catalog) -> Result<QueryShape> {
    match count_scans(plan, reads_table) {
        0 => {
            return Err(Error::Plan(format!(
                "query does not reference the reads table '{reads_table}'"
            )))
        }
        1 => {}
        n => {
            return Err(Error::Plan(format!(
                "query references '{reads_table}' {n} times — deferred-cleansing \
                 rewrites currently require a single reference"
            )))
        }
    }
    // Normalize: push single-table predicates into scans (no order sharing
    // yet — the rewritten plan is re-optimized at the end).
    let cfg = OptimizerConfig {
        enable_pushdown: true,
        enable_order_sharing: false,
    };
    let plan = optimize(plan.clone(), catalog, &cfg);

    let mut shape: Option<QueryShape> = None;
    let consumer = carve(plan, reads_table, &mut shape)?;
    let mut shape = shape.ok_or_else(|| Error::Internal("island not found".into()))?;
    shape.consumer = consumer;

    // Mark dims as direct when every island-side key is an R column.
    let alias = shape.alias.clone();
    for d in &mut shape.dims {
        d.direct = d.left_keys.iter().all(
            |k| matches!(k, Expr::Column(c) if c.qualifier.as_deref() == Some(alias.as_str())),
        );
    }
    Ok(shape)
}

/// Walk down to the island root; replace it with the hole and record parts.
fn carve(
    plan: LogicalPlan,
    reads_table: &str,
    out: &mut Option<QueryShape>,
) -> Result<LogicalPlan> {
    if is_island_root(&plan, reads_table) {
        let mut s = Vec::new();
        let mut dims = Vec::new();
        let mut leftover = Vec::new();
        let mut alias = None;
        decompose_island(
            plan,
            reads_table,
            &mut s,
            &mut dims,
            &mut leftover,
            &mut alias,
        )?;
        let alias = alias.ok_or_else(|| Error::Internal("reads scan not found".into()))?;
        *out = Some(QueryShape {
            consumer: LogicalPlan::scan(HOLE), // placeholder; caller overwrites
            table: reads_table.to_string(),
            alias,
            s,
            dims,
            leftover,
        });
        return Ok(LogicalPlan::scan(HOLE));
    }
    map_children_fallible(plan, &mut |c| {
        if contains_scan(&c, reads_table) {
            carve(c, reads_table, out)
        } else {
            Ok(c)
        }
    })
}

fn map_children_fallible(
    plan: LogicalPlan,
    f: &mut impl FnMut(LogicalPlan) -> Result<LogicalPlan>,
) -> Result<LogicalPlan> {
    // Reuse map_children but propagate errors via a captured slot.
    let mut err: Option<Error> = None;
    let rebuilt = map_children(plan, &mut |c| match f(c) {
        Ok(p) => p,
        Err(e) => {
            err = Some(e);
            LogicalPlan::scan(HOLE)
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(rebuilt),
    }
}

/// The island root: the highest node that is the R scan itself or a
/// Filter/Inner-Join chain over it — i.e. this node is "in the island" and
/// its parent (caller) is not a Filter/Join containing R.
fn is_island_node(plan: &LogicalPlan, reads_table: &str) -> bool {
    match plan {
        LogicalPlan::Scan { table, .. } => table.eq_ignore_ascii_case(reads_table),
        LogicalPlan::Filter { input, .. } => is_island_node(input, reads_table),
        LogicalPlan::Join {
            left,
            right,
            join_type: JoinType::Inner,
            ..
        } => {
            // R must be in exactly one side; the other side must be R-free.
            (is_island_node(left, reads_table) && !contains_scan(right, reads_table))
                || (is_island_node(right, reads_table) && !contains_scan(left, reads_table))
        }
        _ => false,
    }
}

fn is_island_root(plan: &LogicalPlan, reads_table: &str) -> bool {
    is_island_node(plan, reads_table)
}

fn decompose_island(
    plan: LogicalPlan,
    reads_table: &str,
    s: &mut Vec<Expr>,
    dims: &mut Vec<DimJoin>,
    leftover: &mut Vec<Expr>,
    alias: &mut Option<String>,
) -> Result<()> {
    match plan {
        LogicalPlan::Scan {
            table,
            alias: a,
            filter,
        } if table.eq_ignore_ascii_case(reads_table) => {
            *alias = Some(a.unwrap_or(table));
            if let Some(f) = filter {
                s.extend(split_conjuncts(&f));
            }
            Ok(())
        }
        LogicalPlan::Filter { input, predicate } => {
            decompose_island(*input, reads_table, s, dims, leftover, alias)?;
            leftover.extend(split_conjuncts(&predicate));
            Ok(())
        }
        LogicalPlan::Join {
            left,
            right,
            left_keys,
            right_keys,
            join_type: JoinType::Inner,
        } => {
            // Identify which side carries R.
            let (r_side, d_side, island_keys, dim_keys) = if contains_scan(&left, reads_table) {
                (*left, *right, left_keys, right_keys)
            } else {
                (*right, *left, right_keys, left_keys)
            };
            decompose_island(r_side, reads_table, s, dims, leftover, alias)?;
            dims.push(DimJoin {
                plan: d_side,
                left_keys: island_keys,
                right_keys: dim_keys,
                direct: false, // fixed up by `analyze`
            });
            Ok(())
        }
        other => Err(Error::Internal(format!(
            "unexpected island node: {}",
            other.node_label()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::batch::{schema_ref, Batch};
    use dc_relational::schema::{Field, Schema};
    use dc_relational::sql::{parse_query, plan_query};
    use dc_relational::table::Table;
    use dc_relational::value::DataType;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let reads = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
            Field::new("biz_step", DataType::Str),
        ]));
        cat.register(Table::new("caser", Batch::empty(reads)));
        let locs = schema_ref(Schema::new(vec![
            Field::new("gln", DataType::Str),
            Field::new("site", DataType::Str),
        ]));
        cat.register(Table::new("locs", Batch::empty(locs)));
        let info = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("product", DataType::Str),
        ]));
        cat.register(Table::new("epc_info", Batch::empty(info)));
        let product = schema_ref(Schema::new(vec![
            Field::new("product", DataType::Str),
            Field::new("manufacturer", DataType::Str),
        ]));
        cat.register(Table::new("product", Batch::empty(product)));
        cat
    }

    fn shape_of(sql: &str) -> QueryShape {
        let cat = catalog();
        let plan = plan_query(&parse_query(sql).unwrap(), &cat).unwrap();
        analyze(&plan, "caser", &cat).unwrap()
    }

    #[test]
    fn simple_selection() {
        let sh = shape_of("select epc from caser where rtime < 100");
        assert_eq!(sh.alias, "caser");
        assert_eq!(sh.s.len(), 1);
        assert!(sh.dims.is_empty());
        assert!(sh.leftover.is_empty());
        // Consumer keeps the projection, hole below it.
        assert!(matches!(sh.consumer, LogicalPlan::Project { .. }));
    }

    #[test]
    fn aliased_scan_and_multiple_conjuncts() {
        let sh = shape_of("select c.epc from caser c where c.rtime < 100 and c.biz_loc = 'x'");
        assert_eq!(sh.alias, "c");
        assert_eq!(sh.s.len(), 2);
    }

    #[test]
    fn star_query_with_dims() {
        let sh = shape_of(
            "select p.manufacturer, count(*) as n \
             from caser c, locs l, epc_info i, product p \
             where c.biz_loc = l.gln and c.epc = i.epc and i.product = p.product \
               and c.rtime >= 50 and l.site = 'dc2' \
             group by p.manufacturer",
        );
        assert_eq!(sh.alias, "c");
        assert_eq!(sh.s.len(), 1); // rtime >= 50
        assert_eq!(sh.dims.len(), 3);
        // locs and epc_info join R directly; product joins through epc_info.
        let direct: Vec<bool> = sh.dims.iter().map(|d| d.direct).collect();
        assert_eq!(direct.iter().filter(|d| **d).count(), 2);
        assert!(!sh.dims.last().unwrap().direct);
        // The locs dim carries its local predicate.
        let locs_dim = &sh.dims[0];
        assert!(matches!(
            &locs_dim.plan,
            LogicalPlan::Scan {
                filter: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn splice_and_rejoin_roundtrip() {
        let sh = shape_of(
            "select count(*) as n from caser c, locs l \
             where c.biz_loc = l.gln and c.rtime < 100",
        );
        // Rebuild the island as-is and splice: executing both the original
        // and rebuilt plans over data must agree (see engine tests); here we
        // just check structure.
        let island = sh.rejoin_dims(
            LogicalPlan::scan_as("caser", sh.alias.clone()).filter(sh.s_expr().unwrap()),
            &[],
        );
        let whole = sh.splice(island);
        let rendered = whole.display_indent();
        assert!(rendered.contains("Aggregate"));
        assert!(rendered.contains("Join"));
        assert!(!rendered.contains(HOLE));
    }

    #[test]
    fn window_query_island_is_scan_only() {
        let sh = shape_of(
            "select max(rtime) over (partition by epc order by rtime \
               rows between 1 preceding and 1 preceding) as prev \
             from caser where rtime <= 500",
        );
        assert!(sh.dims.is_empty());
        assert_eq!(sh.s.len(), 1);
        assert!(matches!(sh.consumer, LogicalPlan::Project { .. }));
    }

    #[test]
    fn missing_reads_table_rejected() {
        let cat = catalog();
        let plan = plan_query(&parse_query("select gln from locs").unwrap(), &cat).unwrap();
        assert!(analyze(&plan, "caser", &cat).is_err());
    }

    #[test]
    fn self_join_rejected() {
        let cat = catalog();
        let plan = plan_query(
            &parse_query("select a.epc from caser a, caser b where a.epc = b.epc and a.rtime < 5")
                .unwrap(),
            &cat,
        )
        .unwrap();
        let err = analyze(&plan, "caser", &cat).unwrap_err();
        assert!(err.to_string().contains("2 times"));
    }
}
