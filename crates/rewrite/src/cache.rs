//! The cleansed-sequence cache: memoizing Φ_C output per cluster key for
//! the join-back rewrite.
//!
//! The join-back rewrite (§5.3) cleans only the sequences the query
//! touches: `σ_s′(Φ(σ_ec(R) ⋉ Π_ckey(σ_s(R ⋈ …))))`. Because every
//! cleansing rule partitions by the cluster key, Φ_C over the narrowed
//! input decomposes into independent per-sequence computations — which
//! makes each sequence's cleansed rows a perfect memoization unit for the
//! repeated-query workloads RFID analytics sees in practice.
//!
//! Entries are keyed by `(rule-set fingerprint, ckey)` and validated
//! against the ids of the reads-table segments whose zone range covers the
//! ckey: appending rows for a key seals a new covering segment, which
//! changes the covering set and lazily invalidates exactly that key. The
//! fingerprint folds in the rule definitions *and* the expanded condition
//! `ec` pushed into the join-back's outer arm, so the same sequence
//! cleansed under different queries never aliases.
//!
//! [`Rewritten::execute_cached`] is the drop-in cached execution path:
//! results are byte-identical to [`Rewritten::execute`] because cleansed
//! output is (ckey, skey)-sorted — reassembling per-sequence batches in
//! ckey order reproduces exactly the row order the uncached plan yields.

use crate::engine::{Executed, Rewritten};
use dc_relational::batch::Batch;
use dc_relational::error::Result;
use dc_relational::exec::{ExecStats, Executor};
use dc_relational::expr::{ColumnRef, Expr};
use dc_relational::index::IndexKey;
use dc_relational::optimizer::optimize_default;
use dc_relational::physical::{ExecOptions, OperatorMetrics, QueryBudget};
use dc_relational::plan::LogicalPlan;
use dc_relational::table::{Catalog, Table};
use dc_relational::value::Value;
use dc_rules::{cleansing_plan_qualified, RuleTemplate};
use dc_storage::{CacheLookup, CacheStats, SeqCache};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything needed to execute a chosen join-back rewrite through the
/// cache instead of as one monolithic plan. Built by the rewrite engine
/// only when the winning candidate is a join-back over a base reads table
/// whose cluster key no rule modifies.
#[derive(Debug, Clone)]
pub struct JoinBackCacheSpec {
    /// Fingerprint over rule definitions + `ec` + alias: the cache-key
    /// prefix separating rule sets and query conditions.
    pub fingerprint: u64,
    /// The base reads table cleansing reads from (segment metadata source).
    pub reads_table: String,
    /// Alias the cleansing plan qualifies reads columns with.
    pub alias: String,
    /// Cluster key column (the rules' `partition by`).
    pub ckey: String,
    /// Optimized plan computing the distinct sequence set
    /// `Π_ckey(σ_s(R ⋈ dims…))` — one column, the unqualified ckey.
    pub seqset: LogicalPlan,
    /// Expanded condition pushed into the outer arm (improved join-back),
    /// if any.
    pub ec: Option<Expr>,
    /// Name of the transient table the assembled cleansed rows are
    /// registered under in a catalog overlay.
    pub placeholder: String,
    /// The rest of the query over `placeholder`: reapplied `s′`, dimension
    /// re-joins, and the original consumer. Optimized at execution time,
    /// once the placeholder exists.
    pub tail: LogicalPlan,
    /// The rule chain (for cleansing cache misses).
    pub rules: Vec<Arc<RuleTemplate>>,
}

/// One cached sequence: the segment snapshot it was computed from plus the
/// cleansed rows.
#[derive(Debug, Clone)]
struct CachedSeq {
    /// Ids of the reads-table segments covering the ckey at compute time —
    /// the validity token.
    segments: Vec<u64>,
    rows: Batch,
}

/// A shared, size-bounded cleansed-sequence cache. Lookups validate the
/// covering-segment snapshot; stale entries are evicted lazily on probe.
#[derive(Debug)]
pub struct CleanseCache {
    inner: Mutex<SeqCache<(u64, IndexKey), CachedSeq>>,
    /// Folded into every fingerprint. Non-zero for shard-local caches:
    /// two shards hold *different* rows for overlapping segment-id spaces
    /// (each shard numbers its own segments from 0), so without the salt a
    /// shared or migrated cache could validate one shard's entry against
    /// another shard's covering set and serve wrong rows.
    salt: u64,
}

impl CleanseCache {
    /// A cache bounded to `capacity` sequences.
    pub fn new(capacity: usize) -> Self {
        CleanseCache {
            inner: Mutex::new(SeqCache::new(capacity)),
            salt: 0,
        }
    }

    /// A shard-local cache: identical to [`CleanseCache::new`] except every
    /// key is salted with the shard id, so entries can never alias entries
    /// of another shard (or of an unsharded system) even if caches are
    /// shared or snapshots migrate between services.
    pub fn for_shard(capacity: usize, shard: u64) -> Self {
        CleanseCache {
            inner: Mutex::new(SeqCache::new(capacity)),
            // splitmix64-style spread of (shard + 1); unsharded stays 0.
            salt: (shard + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn salted(&self, fingerprint: u64) -> u64 {
        fingerprint ^ self.salt
    }

    /// Validated lookup: a present entry whose covering-segment snapshot
    /// differs from `segments` is removed (stale).
    pub fn probe(&self, fingerprint: u64, ckey: &Value, segments: &[u64]) -> CacheLookup<Batch> {
        let key = (self.salted(fingerprint), IndexKey(ckey.clone()));
        match self
            .inner
            .lock()
            .lookup_where(&key, |e| e.segments == segments)
        {
            CacheLookup::Hit(e) => CacheLookup::Hit(e.rows),
            CacheLookup::Miss => CacheLookup::Miss,
            CacheLookup::Stale(e) => CacheLookup::Stale(e.rows),
        }
    }

    /// Store a freshly cleansed sequence.
    pub fn store(&self, fingerprint: u64, ckey: &Value, segments: Vec<u64>, rows: Batch) {
        self.inner.lock().insert(
            (self.salted(fingerprint), IndexKey(ckey.clone())),
            CachedSeq { segments, rows },
        );
    }

    /// Cumulative hit/miss/eviction/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats()
    }

    /// Number of cached sequences.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl Rewritten {
    /// Execute the rewrite through the cleansed-sequence cache. Falls back
    /// to [`Rewritten::execute`] when the chosen candidate produced no
    /// cache spec (not a join-back, derived rule input, or a rule modifies
    /// the cluster key).
    ///
    /// The cached pipeline: compute the sequence set; probe each ckey
    /// (validating covering segments); cleanse only the misses via
    /// `Φ(σ_ec ∧ ckey∈misses(R))` — sound because rules partition by ckey;
    /// reassemble per-sequence batches in ckey order (reproducing the
    /// uncached (ckey, skey)-sorted cleansing output byte for byte);
    /// register the assembly as a transient table in a catalog overlay and
    /// run the tail plan over it. Work counters sum over the
    /// sub-executions; cache counters land in the `seq_cache_*` stats.
    pub fn execute_cached(
        &self,
        catalog: &Catalog,
        options: ExecOptions,
        cache: &CleanseCache,
    ) -> Result<Executed> {
        self.execute_cached_with_budget(catalog, options, cache, QueryBudget::unlimited())
    }

    /// [`Rewritten::execute_cached`] under a [`QueryBudget`]. Cache writes
    /// happen only after the cleansing sub-plan for the missed sequences
    /// completed in full, so an abort at any checkpoint leaves the cache
    /// holding either pre-run entries or complete, valid new entries — an
    /// immediate re-run succeeds and is byte-identical to an uncancelled
    /// execution.
    pub fn execute_cached_with_budget(
        &self,
        catalog: &Catalog,
        options: ExecOptions,
        cache: &CleanseCache,
        budget: QueryBudget,
    ) -> Result<Executed> {
        let Some(spec) = &self.cache_spec else {
            return self.execute_with_budget(catalog, options, budget);
        };
        let mut stats = ExecStats::default();
        let mut window_eval_nanos = 0u64;
        let mut children: Vec<OperatorMetrics> = Vec::new();
        let rule_refs: Vec<&RuleTemplate> = spec.rules.iter().map(Arc::as_ref).collect();

        // 1. The distinct sequence set, in the engine's total value order —
        // the same order the cleansing plan's (ckey, skey) sort yields.
        let mut ex = Executor::with_budget(catalog, options, budget.clone());
        let seq = ex.execute(&spec.seqset)?;
        stats.add(&ex.stats);
        window_eval_nanos += ex.window_eval_nanos;
        children.extend(ex.metrics.take());
        let ckey_col = seq.column(0);
        let mut ckeys: Vec<Value> = (0..seq.num_rows())
            // NULL cluster keys never survive the semi-join in the uncached
            // plan either (join keys don't match on NULL).
            .filter(|&i| !ckey_col.is_null(i))
            .map(|i| ckey_col.value(i))
            .collect();
        ckeys.sort_by(Value::total_cmp);
        ckeys.dedup_by(|a, b| a.total_cmp(b).is_eq());

        // 2. Probe with covering-segment validation.
        let reads = catalog.get(&spec.reads_table)?;
        let mut per_ckey: BTreeMap<IndexKey, Batch> = BTreeMap::new();
        let mut misses: Vec<(Value, Vec<u64>)> = Vec::new();
        let (mut hits, mut missed, mut invalidated) = (0u64, 0u64, 0u64);
        for v in &ckeys {
            let cover = reads.covering_segments(&spec.ckey, v);
            match cache.probe(spec.fingerprint, v, &cover) {
                CacheLookup::Hit(rows) => {
                    hits += 1;
                    per_ckey.insert(IndexKey(v.clone()), rows);
                }
                CacheLookup::Miss => {
                    missed += 1;
                    misses.push((v.clone(), cover));
                }
                CacheLookup::Stale(_) => {
                    missed += 1;
                    invalidated += 1;
                    misses.push((v.clone(), cover));
                }
            }
        }

        // 3. Cleanse the misses in one pass, restricted to their sequences.
        if !misses.is_empty() {
            let in_list = Expr::InList {
                expr: Box::new(Expr::Column(ColumnRef::qualified(
                    spec.alias.clone(),
                    spec.ckey.clone(),
                ))),
                list: misses.iter().map(|(v, _)| v.clone()).collect(),
                negated: false,
            };
            let mut src = LogicalPlan::scan_as(&spec.reads_table, &spec.alias);
            if let Some(ec) = &spec.ec {
                src = src.filter(ec.clone());
            }
            let plan = cleansing_plan_qualified(
                src.filter(in_list),
                &rule_refs,
                catalog,
                Some(&spec.alias),
            )?;
            let plan = optimize_default(plan, catalog);
            let mut ex = Executor::with_budget(catalog, options, budget.clone());
            let out = ex.execute(&plan)?;
            stats.add(&ex.stats);
            window_eval_nanos += ex.window_eval_nanos;
            children.extend(ex.metrics.take());

            // Split the (ckey, skey)-sorted output per sequence. Every miss
            // gets an entry — possibly empty — so it hits next time.
            let ci = out
                .schema()
                .index_of(Some(&spec.alias), &spec.ckey)
                .or_else(|_| out.schema().index_of(None, &spec.ckey))?;
            let col = out.column(ci);
            let mut groups: BTreeMap<IndexKey, Vec<usize>> = misses
                .iter()
                .map(|(v, _)| (IndexKey(v.clone()), Vec::new()))
                .collect();
            for i in 0..out.num_rows() {
                if let Some(g) = groups.get_mut(&IndexKey(col.value(i))) {
                    g.push(i);
                }
            }
            for (v, cover) in misses {
                let key = IndexKey(v.clone());
                let rows = out.take(&groups[&key]);
                cache.store(spec.fingerprint, &v, cover, rows.clone());
                per_ckey.insert(key, rows);
            }
        }

        // 4. Reassemble in ckey order — exactly the uncached cleansing
        // output order — and run the tail over a catalog overlay.
        let assembled = if ckeys.is_empty() {
            // No sequences at all: derive the cleansed schema without
            // executing anything.
            let mut src = LogicalPlan::scan_as(&spec.reads_table, &spec.alias);
            if let Some(ec) = &spec.ec {
                src = src.filter(ec.clone());
            }
            let schema = cleansing_plan_qualified(src, &rule_refs, catalog, Some(&spec.alias))?
                .schema(catalog)?;
            Batch::empty(schema)
        } else {
            let parts: Vec<Batch> = ckeys
                .iter()
                .map(|v| per_ckey[&IndexKey(v.clone())].clone())
                .collect();
            Batch::concat(&parts)?
        };
        let assembled_rows = assembled.num_rows() as u64;

        // Phase checkpoint: probing and reassembly are pure in-memory work,
        // but the tail can be expensive — re-check before starting it.
        budget.check()?;
        let overlay = catalog.overlay();
        overlay.register(Table::new(&spec.placeholder, assembled));
        let tail = optimize_default(spec.tail.clone(), &overlay);
        let mut ex = Executor::with_budget(&overlay, options, budget.clone());
        let batch = ex.execute(&tail)?;
        stats.add(&ex.stats);
        window_eval_nanos += ex.window_eval_nanos;
        children.extend(ex.metrics.take());

        stats.seq_cache_hits += hits;
        stats.seq_cache_misses += missed;
        stats.seq_cache_invalidations += invalidated;

        let metrics = OperatorMetrics {
            name: "CleanseCacheExec".to_string(),
            label: format!(
                "CleanseCacheExec: {} sequences hits={hits} misses={missed} invalidated={invalidated}",
                ckeys.len()
            ),
            rows_in: assembled_rows,
            rows_out: batch.num_rows() as u64,
            comparisons: 0,
            partitions: 0,
            segments_total: 0,
            segments_pruned: 0,
            segments_scanned: 0,
            batches_processed: 0,
            selection_avoided_copies: 0,
            hash_ops: 0,
            hash_collisions: 0,
            probe_memcmps: 0,
            key_bytes_encoded: 0,
            wall_nanos: children.iter().map(|c| c.wall_nanos).sum(),
            children,
        };

        Ok(Executed {
            batch,
            stats,
            window_eval_nanos,
            metrics: Some(metrics),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_validates_covering_segments() {
        let cache = CleanseCache::new(8);
        let schema = dc_relational::batch::schema_ref(dc_relational::schema::Schema::new(vec![
            dc_relational::schema::Field::new("epc", dc_relational::value::DataType::Str),
        ]));
        let rows = Batch::from_rows(schema, &[vec![Value::str("e1")]]).unwrap();
        assert!(matches!(
            cache.probe(7, &Value::str("e1"), &[0]),
            CacheLookup::Miss
        ));
        cache.store(7, &Value::str("e1"), vec![0], rows);
        assert!(matches!(
            cache.probe(7, &Value::str("e1"), &[0]),
            CacheLookup::Hit(_)
        ));
        // A different fingerprint does not alias.
        assert!(matches!(
            cache.probe(8, &Value::str("e1"), &[0]),
            CacheLookup::Miss
        ));
        // A changed covering set invalidates.
        assert!(matches!(
            cache.probe(7, &Value::str("e1"), &[0, 1]),
            CacheLookup::Stale(_)
        ));
        assert!(matches!(
            cache.probe(7, &Value::str("e1"), &[0, 1]),
            CacheLookup::Miss
        ));
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.invalidations, 1);
    }
}
