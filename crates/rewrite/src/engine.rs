//! The query rewrite engine (paper §3 steps 3–5, §5).
//!
//! Given a user plan and an application's rule chain, the engine generates
//! candidate rewrites that all compute Q[C₁…Cₙ]:
//!
//! * the **naive** rewrite Q_n — clean all of R, then run Q (baseline);
//! * **expanded** rewrites Q_e (§5.2) — push the expanded condition
//!   `ec = s ∨ cc` below cleansing, with 0..m eligible dimension joins also
//!   pushed below (in ascending selectivity order);
//! * **join-back** rewrites Q_j (§5.3) — clean only the sequences the query
//!   touches, with 0..n semi-joins narrowing the sequence set, using the
//!   improved variant `σ_s′(Φ(σ_ec(R) ⋉ Π_ckey(σ_s(R ⋈ …))))` when an
//!   expanded condition exists.
//!
//! Every candidate is "compiled" — optimized and cost-estimated — and the
//! cheapest is chosen (§5.2/§5.3: "the statement with the cheapest cost
//! estimate is selected").

use crate::analysis::{bind_to_target, context_condition, join_key_propagates, requalify};
use crate::cache::JoinBackCacheSpec;
use crate::shape::{analyze, QueryShape};
use dc_relational::cost::{base_table_rows, estimate};
use dc_relational::error::{Error, Result};
use dc_relational::exec::Executor;
use dc_relational::expr::{conjoin, disjoin, ColumnRef, Expr};
use dc_relational::join::JoinType;
use dc_relational::optimizer::optimize_default;
use dc_relational::physical::{ExecOptions, QueryBudget};
use dc_relational::plan::LogicalPlan;
use dc_relational::table::Catalog;
use dc_rules::{cleansing_plan_qualified, validate_chain, RuleTemplate};
use dc_sqlts::Action;
use std::collections::HashMap;
use std::sync::Arc;

/// Which rewrite to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Generate all candidates, pick the cheapest estimate (the default).
    #[default]
    Auto,
    /// Force the best expanded variant (error when infeasible).
    Expanded,
    /// Force the best join-back variant.
    JoinBack,
    /// Clean everything first (Q_n).
    Naive,
}

/// One compiled candidate, for reporting.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub label: String,
    pub cost: f64,
    pub est_rows: f64,
}

/// The outcome of a rewrite.
#[derive(Debug, Clone)]
pub struct Rewritten {
    /// The chosen, optimized plan computing Q[C₁…Cₙ].
    pub plan: LogicalPlan,
    /// Label of the winning candidate.
    pub chosen: String,
    /// All compiled candidates with their cost estimates.
    pub candidates: Vec<Candidate>,
    /// The expanded condition `ec` (reads-alias-qualified), when feasible.
    pub expanded_condition: Option<Expr>,
    /// The overall context condition `cc`, when feasible.
    pub context_condition: Option<Expr>,
    /// Diagnostics (soundness fallbacks etc.).
    pub notes: Vec<String>,
    /// When the winning candidate is a join-back over a base reads table,
    /// everything [`Rewritten::execute_cached`] needs to run it through the
    /// cleansed-sequence cache. `None` = cached execution falls back to
    /// [`Rewritten::execute`].
    pub cache_spec: Option<JoinBackCacheSpec>,
}

/// A fully executed rewrite: the result batch plus the run's accounting.
#[derive(Debug, Clone)]
pub struct Executed {
    pub batch: dc_relational::batch::Batch,
    /// Deterministic work counters — identical at any parallelism.
    pub stats: dc_relational::exec::ExecStats,
    /// Wall-clock nanoseconds spent in window evaluation (the Φ_C hot
    /// path) — the quantity parallelism is expected to improve.
    pub window_eval_nanos: u64,
    /// Per-operator metrics tree of the executed physical plan (the
    /// EXPLAIN ANALYZE data source).
    pub metrics: Option<dc_relational::physical::OperatorMetrics>,
}

impl Rewritten {
    /// Execute the chosen plan. `options` controls partition-parallel
    /// window evaluation; the strategy choice (cost estimates, candidate
    /// ranking) is unaffected by it, and results and work counters are
    /// identical at any parallelism.
    pub fn execute(&self, catalog: &Catalog, options: ExecOptions) -> Result<Executed> {
        self.execute_with_budget(catalog, options, QueryBudget::unlimited())
    }

    /// [`Rewritten::execute`] under a [`QueryBudget`]: the plan aborts with
    /// `Error::Aborted` at the next operator (or window-partition)
    /// checkpoint once the deadline passes, the cancellation token flips,
    /// or the row budget is exhausted — never returning partial rows.
    pub fn execute_with_budget(
        &self,
        catalog: &Catalog,
        options: ExecOptions,
        budget: QueryBudget,
    ) -> Result<Executed> {
        let mut ex = Executor::with_budget(catalog, options, budget);
        let batch = ex.execute(&self.plan)?;
        Ok(Executed {
            batch,
            stats: ex.stats,
            window_eval_nanos: ex.window_eval_nanos,
            metrics: ex.metrics,
        })
    }
}

/// The rewrite engine. Holds registered derived inputs — plans backing rule
/// `FROM` tables that are not base tables (e.g. the union of case reads and
/// expected reads for the missing rule, paper §4.3 Example 5 / §6.3).
#[derive(Debug, Default)]
pub struct RewriteEngine {
    derived_inputs: HashMap<String, LogicalPlan>,
}

impl RewriteEngine {
    pub fn new() -> Self {
        RewriteEngine::default()
    }

    /// Register the plan backing a derived rule input. Its output schema must
    /// include every column of the reads table (validated when rules are
    /// defined).
    pub fn register_derived_input(&mut self, name: impl Into<String>, plan: LogicalPlan) {
        self.derived_inputs
            .insert(name.into().to_ascii_lowercase(), plan);
    }

    /// The per-rule context condition for a query shape — the contents of the
    /// paper's Table 1. `None` = expanded rewrite infeasible for this rule.
    pub fn rule_context_condition(&self, rule: &RuleTemplate, shape: &QueryShape) -> Option<Expr> {
        let target = rule.def.target().to_string();
        let s_bound = bind_to_target(&shape.s, &shape.alias, &target);
        let mut per_ref: Vec<Expr> = Vec::new();
        for x in rule.def.context_refs() {
            let conjs = context_condition(rule, x, &s_bound)?;
            let on_alias: Vec<Expr> = conjs
                .iter()
                .map(|c| requalify(c, &x.name, &shape.alias))
                .collect();
            per_ref.push(conjoin(on_alias).expect("non-empty by contract"));
        }
        // A rule whose pattern has no context references cleans rows
        // in isolation; its context condition is just `s` itself.
        if per_ref.is_empty() {
            return shape.s_expr().or(Some(Expr::lit(true)));
        }
        disjoin(per_ref)
    }

    /// Rewrite a user plan with respect to a rule chain.
    pub fn rewrite_plan(
        &self,
        user_plan: &LogicalPlan,
        rules: &[Arc<RuleTemplate>],
        catalog: &Catalog,
        strategy: Strategy,
    ) -> Result<Rewritten> {
        self.rewrite_plan_opts(user_plan, rules, catalog, strategy, true)
    }

    /// [`RewriteEngine::rewrite_plan`] with the improved join-back (§5.3 —
    /// pushing the expanded condition into the join-back's outer arm)
    /// toggleable, for ablation studies.
    pub fn rewrite_plan_opts(
        &self,
        user_plan: &LogicalPlan,
        rules: &[Arc<RuleTemplate>],
        catalog: &Catalog,
        strategy: Strategy,
        improved_joinback: bool,
    ) -> Result<Rewritten> {
        if rules.is_empty() {
            let plan = optimize_default(user_plan.clone(), catalog);
            return Ok(Rewritten {
                plan,
                chosen: "original (no rules)".into(),
                candidates: vec![],
                expanded_condition: None,
                context_condition: None,
                notes: vec![],
                cache_spec: None,
            });
        }
        let rule_refs: Vec<&RuleTemplate> = rules.iter().map(Arc::as_ref).collect();
        validate_chain(&rule_refs)?;
        let reads_table = rules[0].def.on_table.clone();
        let shape = analyze(user_plan, &reads_table, catalog)?;
        let mut notes = Vec::new();

        // --- Soundness guard: MODIFY on columns the query constrains. ---
        // Pushing s (or joins) below cleansing assumes the rules do not
        // change the columns those predicates read. The paper leaves this
        // implicit; we enforce it and fall back to the naive rewrite.
        let modified: Vec<String> = rules
            .iter()
            .flat_map(|r| match &r.action {
                Action::Modify { assignments, .. } => {
                    assignments.iter().map(|(c, _)| c.clone()).collect()
                }
                _ => Vec::new(),
            })
            .collect();
        // Unqualified references in s come from R's pushed scan filter, so
        // they are R columns; qualified ones must match the alias.
        let is_modified_reads_col = |c: &ColumnRef| {
            let is_reads_col =
                c.qualifier.is_none() || c.qualifier.as_deref() == Some(shape.alias.as_str());
            is_reads_col && modified.iter().any(|m| m.eq_ignore_ascii_case(&c.name))
        };
        // (a) s itself constrains a modified column: both ec pushdown and the
        //     join-back sequence-set computation read pre-cleansing values —
        //     only the naive rewrite is sound.
        let mut s_cols: Vec<ColumnRef> = Vec::new();
        for e in &shape.s {
            e.referenced_columns(&mut s_cols);
        }
        let conflict = s_cols.iter().find(|c| is_modified_reads_col(c));
        // (b) a dimension joins on a modified column: the join itself stays
        //     above cleansing (sound — it sees post-MODIFY values), but that
        //     dim must not be pushed below cleansing nor used in the
        //     join-back semi-join. Recorded here, enforced below.
        let mut tainted_dims: Vec<usize> = Vec::new();
        for (i, d) in shape.dims.iter().enumerate() {
            let mut key_cols: Vec<ColumnRef> = Vec::new();
            for k in &d.left_keys {
                k.referenced_columns(&mut key_cols);
            }
            if key_cols.iter().any(&is_modified_reads_col) {
                tainted_dims.push(i);
                notes.push(format!(
                    "dimension join {i} uses a MODIFY-rewritten column; it is kept \
                     above cleansing and excluded from semi-join narrowing"
                ));
            }
        }
        if let Some(c) = conflict {
            notes.push(format!(
                "query constrains column '{}' which a MODIFY rule rewrites; \
                 only the naive rewrite is sound",
                c.flat_name()
            ));
            let plan = self.naive(&shape, &rule_refs, catalog)?;
            let plan = optimize_default(plan, catalog);
            let est = estimate(&plan, catalog);
            return Ok(Rewritten {
                plan,
                chosen: "naive (forced by MODIFY conflict)".into(),
                candidates: vec![Candidate {
                    label: "naive".into(),
                    cost: est.cost,
                    est_rows: est.rows,
                }],
                expanded_condition: None,
                context_condition: None,
                notes,
                cache_spec: None,
            });
        }

        // --- Context / expanded conditions (§5.2, §5.4). ---
        let per_rule_cc: Vec<Option<Expr>> = rules
            .iter()
            .map(|r| self.rule_context_condition(r, &shape))
            .collect();
        let all_feasible = per_rule_cc.iter().all(Option::is_some);
        let cc: Option<Expr> = if all_feasible {
            disjoin(per_rule_cc.iter().flatten().cloned().collect())
        } else {
            None
        };
        let ec: Option<Expr> = match (&cc, shape.s_expr()) {
            (Some(cc), Some(s)) => Some(s.or(cc.clone())),
            // With no selection on R the query needs all of R anyway.
            _ => None,
        };

        // s' = s minus conjuncts covered by every cc disjunct (§5.2).
        let s_prime: Vec<Expr> = match &cc {
            Some(cc) => {
                let disjuncts = split_disjuncts(cc);
                shape
                    .s
                    .iter()
                    .filter(|q| {
                        !disjuncts
                            .iter()
                            .all(|d| dc_relational::expr::split_conjuncts(d).contains(q))
                    })
                    .cloned()
                    .collect()
            }
            None => shape.s.clone(),
        };

        // --- Candidate generation. ---
        let mut candidates: Vec<(String, LogicalPlan)> = Vec::new();

        if matches!(strategy, Strategy::Naive) {
            candidates.push(("naive".into(), self.naive(&shape, &rule_refs, catalog)?));
        }

        if matches!(strategy, Strategy::Auto | Strategy::Expanded) {
            if let Some(ec) = &ec {
                let eligible: Vec<usize> = self
                    .eligible_dims(&shape, &rule_refs)
                    .into_iter()
                    .filter(|i| !tainted_dims.contains(i))
                    .collect();
                let ordered = order_by_selectivity(&shape, &eligible, catalog);
                for k in 0..=ordered.len() {
                    let label = format!("expanded({k} joins below cleansing)");
                    let plan =
                        self.expanded(&shape, &rule_refs, catalog, ec, &s_prime, &ordered[..k])?;
                    candidates.push((label, plan));
                }
            } else if matches!(strategy, Strategy::Expanded) {
                return Err(Error::Plan(format!(
                    "no feasible expanded rewrite: {}",
                    if all_feasible {
                        "the query has no selection on the reads table"
                    } else {
                        "a rule's context condition is empty"
                    }
                )));
            }
        }

        if matches!(strategy, Strategy::Auto | Strategy::JoinBack) {
            let direct: Vec<usize> = shape
                .dims
                .iter()
                .enumerate()
                .filter(|(i, d)| d.direct && !tainted_dims.contains(i))
                .map(|(i, _)| i)
                .collect();
            let ordered = order_by_selectivity(&shape, &direct, catalog);
            for k in 0..=ordered.len() {
                let label = format!("join-back({k} semi-joins)");
                let jb_ec = if improved_joinback { ec.as_ref() } else { None };
                let plan = self.join_back(
                    &shape,
                    &rule_refs,
                    catalog,
                    jb_ec,
                    if jb_ec.is_some() { &s_prime } else { &shape.s },
                    &ordered[..k],
                )?;
                candidates.push((label, plan));
            }
        }

        // --- Compile (optimize + estimate) and pick the cheapest. ---
        let mut compiled: Vec<(String, LogicalPlan, f64, f64)> = candidates
            .into_iter()
            .map(|(label, plan)| {
                let plan = optimize_default(plan, catalog);
                let est = estimate(&plan, catalog);
                (label, plan, est.cost, est.rows)
            })
            .collect();
        compiled.sort_by(|a, b| a.2.total_cmp(&b.2));
        let report: Vec<Candidate> = compiled
            .iter()
            .map(|(label, _, cost, rows)| Candidate {
                label: label.clone(),
                cost: *cost,
                est_rows: *rows,
            })
            .collect();
        let (chosen, plan, _, _) = compiled
            .into_iter()
            .next()
            .ok_or_else(|| Error::Internal("no rewrite candidates generated".into()))?;

        // When a join-back won, build the cleansed-sequence cache spec for
        // the exact candidate chosen (same semi-join set, same ec/reapply).
        let cache_spec = match chosen
            .strip_prefix("join-back(")
            .and_then(|rest| rest.split(' ').next())
            .and_then(|k| k.parse::<usize>().ok())
        {
            Some(k) => {
                let direct: Vec<usize> = shape
                    .dims
                    .iter()
                    .enumerate()
                    .filter(|(i, d)| d.direct && !tainted_dims.contains(i))
                    .map(|(i, _)| i)
                    .collect();
                let ordered = order_by_selectivity(&shape, &direct, catalog);
                let jb_ec = if improved_joinback { ec.as_ref() } else { None };
                let reapply = if jb_ec.is_some() { &s_prime } else { &shape.s };
                self.joinback_cache_spec(&shape, rules, catalog, jb_ec, reapply, &ordered[..k])
            }
            None => None,
        };

        Ok(Rewritten {
            plan,
            chosen,
            candidates: report,
            expanded_condition: ec,
            context_condition: cc,
            notes,
            cache_spec,
        })
    }

    /// The naive rewrite Q_n: replace R by Φ(R) wholesale.
    pub fn naive(
        &self,
        shape: &QueryShape,
        rules: &[&RuleTemplate],
        catalog: &Catalog,
    ) -> Result<LogicalPlan> {
        let src = self.reads_source(shape, rules)?;
        let cleansed = cleansing_plan_qualified(src, rules, catalog, Some(&shape.alias))?;
        let filtered = match shape.s_expr() {
            Some(s) => cleansed.filter(s),
            None => cleansed,
        };
        Ok(shape.splice(shape.rejoin_dims(filtered, &[])))
    }

    /// Build the source of reads rows, alias-qualified: the base-table scan,
    /// or the registered derived input for FROM-redirected rules.
    fn reads_source(&self, shape: &QueryShape, rules: &[&RuleTemplate]) -> Result<LogicalPlan> {
        let from = &rules[0].def.from_table;
        if from.eq_ignore_ascii_case(&shape.table) {
            return Ok(LogicalPlan::scan_as(&shape.table, &shape.alias));
        }
        // A registered derived-input plan takes precedence; otherwise the
        // FROM table may be a materialized input table in the catalog.
        if let Some(plan) = self.derived_inputs.get(&from.to_ascii_lowercase()) {
            return Ok(plan.clone().alias(&shape.alias));
        }
        Ok(LogicalPlan::scan_as(from, &shape.alias))
    }

    /// Dim indexes eligible for pushing below cleansing: direct dims whose
    /// every R-side key column propagates to all context references of all
    /// rules (§5.2 join query support).
    fn eligible_dims(&self, shape: &QueryShape, rules: &[&RuleTemplate]) -> Vec<usize> {
        shape
            .dims
            .iter()
            .enumerate()
            .filter(|(_, d)| d.direct)
            .filter(|(_, d)| {
                d.left_keys.iter().all(|k| {
                    let Expr::Column(c) = k else { return false };
                    rules.iter().all(|r| join_key_propagates(r, &c.name))
                })
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// An expanded rewrite with the given dims (by index) joined below
    /// cleansing.
    fn expanded(
        &self,
        shape: &QueryShape,
        rules: &[&RuleTemplate],
        catalog: &Catalog,
        ec: &Expr,
        s_prime: &[Expr],
        below: &[usize],
    ) -> Result<LogicalPlan> {
        let mut base = self.reads_source(shape, rules)?.filter(ec.clone());
        for &i in below {
            let d = &shape.dims[i];
            base = base.join(
                d.plan.clone(),
                d.left_keys.clone(),
                d.right_keys.clone(),
                JoinType::Inner,
            );
        }
        let cleansed = cleansing_plan_qualified(base, rules, catalog, Some(&shape.alias))?;
        let filtered = match conjoin(s_prime.to_vec()) {
            Some(s) => cleansed.filter(s),
            None => cleansed,
        };
        Ok(shape.splice(shape.rejoin_dims(filtered, below)))
    }

    /// A join-back rewrite with the given dims (by index) participating in
    /// the sequence-set computation.
    fn join_back(
        &self,
        shape: &QueryShape,
        rules: &[&RuleTemplate],
        catalog: &Catalog,
        ec: Option<&Expr>,
        reapply: &[Expr],
        semi_dims: &[usize],
    ) -> Result<LogicalPlan> {
        let ckey = rules[0].def.cluster_by.clone();
        let r_ckey = Expr::Column(ColumnRef::qualified(shape.alias.clone(), ckey.clone()));

        // Inner: Π_ckey(σ_s(R ⋈ dims…)), distinct.
        let mut inner = self.reads_source(shape, rules)?;
        if let Some(s) = shape.s_expr() {
            inner = inner.filter(s);
        }
        for &i in semi_dims {
            let d = &shape.dims[i];
            inner = inner.join(
                d.plan.clone(),
                d.left_keys.clone(),
                d.right_keys.clone(),
                JoinType::Inner,
            );
        }
        let inner = inner
            .project(vec![(r_ckey.clone(), ckey.clone())])
            .distinct();

        // Outer: σ_ec(R) (improved) or R, semi-joined on the cluster key.
        let mut outer = self.reads_source(shape, rules)?;
        if let Some(ec) = ec {
            outer = outer.filter(ec.clone());
        }
        let narrowed = outer.join(
            inner,
            vec![r_ckey],
            vec![Expr::col(ckey)],
            JoinType::LeftSemi,
        );

        let cleansed = cleansing_plan_qualified(narrowed, rules, catalog, Some(&shape.alias))?;
        let filtered = match conjoin(reapply.to_vec()) {
            Some(s) => cleansed.filter(s),
            None => cleansed,
        };
        Ok(shape.splice(shape.rejoin_dims(filtered, &[])))
    }

    /// Build the cleansed-sequence cache spec mirroring a chosen join-back
    /// candidate, or `None` when caching would be unsound or impossible:
    /// the rules read a derived input (no base-table segment metadata to
    /// validate against), or a MODIFY rule rewrites the cluster key itself
    /// (per-sequence grouping of Φ output would not match pre-cleansing
    /// keys).
    fn joinback_cache_spec(
        &self,
        shape: &QueryShape,
        rules: &[Arc<RuleTemplate>],
        catalog: &Catalog,
        ec: Option<&Expr>,
        reapply: &[Expr],
        semi_dims: &[usize],
    ) -> Option<JoinBackCacheSpec> {
        let from = &rules[0].def.from_table;
        if !from.eq_ignore_ascii_case(&shape.table) || !catalog.contains(&shape.table) {
            return None;
        }
        let ckey = rules[0].def.cluster_by.clone();
        let modifies_ckey = rules.iter().any(|r| match &r.action {
            Action::Modify { assignments, .. } => assignments
                .iter()
                .any(|(c, _)| c.eq_ignore_ascii_case(&ckey)),
            _ => false,
        });
        if modifies_ckey {
            return None;
        }

        // The sequence set, exactly as the candidate's inner arm builds it.
        let r_ckey = Expr::Column(ColumnRef::qualified(shape.alias.clone(), ckey.clone()));
        let mut inner = LogicalPlan::scan_as(&shape.table, &shape.alias);
        if let Some(s) = shape.s_expr() {
            inner = inner.filter(s);
        }
        for &i in semi_dims {
            let d = &shape.dims[i];
            inner = inner.join(
                d.plan.clone(),
                d.left_keys.clone(),
                d.right_keys.clone(),
                JoinType::Inner,
            );
        }
        let seqset = optimize_default(
            inner.project(vec![(r_ckey, ckey.clone())]).distinct(),
            catalog,
        );

        // Fingerprint: rule chain + pushed-down ec + qualification. The ec
        // shapes the cleansing *input*, so sequences cleansed under
        // different conditions never share entries.
        let mut h = dc_storage::Fnv1a::new();
        for r in rules {
            h.write(format!("{:?}", r.def).as_bytes());
            h.write(b"|");
        }
        if let Some(ec) = ec {
            h.write(format!("{ec}").as_bytes());
        }
        h.write(shape.alias.as_bytes());
        h.write(shape.table.as_bytes());

        // The tail: reapply s′ over the assembled cleansed rows, then the
        // dimension re-joins and the original consumer.
        let placeholder = format!("__cleansed__{}", shape.table);
        let tail_src = LogicalPlan::scan(&placeholder);
        let filtered = match conjoin(reapply.to_vec()) {
            Some(s) => tail_src.filter(s),
            None => tail_src,
        };
        let tail = shape.splice(shape.rejoin_dims(filtered, &[]));

        Some(JoinBackCacheSpec {
            fingerprint: h.finish(),
            reads_table: shape.table.clone(),
            alias: shape.alias.clone(),
            ckey,
            seqset,
            ec: ec.cloned(),
            placeholder,
            tail,
            rules: rules.to_vec(),
        })
    }
}

/// Split an expression into top-level OR-ed disjuncts.
fn split_disjuncts(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    fn walk(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Binary {
                left,
                op: dc_relational::expr::BinaryOp::Or,
                right,
            } => {
                walk(left, out);
                walk(right, out);
            }
            other => out.push(other.clone()),
        }
    }
    walk(expr, &mut out);
    out
}

/// Order the given dim indexes by ascending selectivity of their local
/// predicates (paper §5.2: "we order D′_i by the selectivity of S′_i
/// ascendingly").
fn order_by_selectivity(shape: &QueryShape, dims: &[usize], catalog: &Catalog) -> Vec<usize> {
    let mut with_sel: Vec<(usize, f64)> = dims
        .iter()
        .map(|&i| {
            let d = &shape.dims[i];
            let est = estimate(&d.plan, catalog);
            let base = base_table_rows(&d.plan, catalog).max(1.0);
            (i, est.rows / base)
        })
        .collect();
    with_sel.sort_by(|a, b| a.1.total_cmp(&b.1));
    with_sel.into_iter().map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::batch::{schema_ref, Batch};
    use dc_relational::exec::Executor;
    use dc_relational::schema::{Field, Schema};
    use dc_relational::sql::{parse_query, plan_query};
    use dc_relational::table::Table;
    use dc_relational::value::{DataType, Value};
    use dc_rules::compile_rule;
    use dc_sqlts::parse_rule;

    const READER: &str = "DEFINE reader ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
        WHERE B.reader = 'readerX' and B.rtime - A.rtime < 5 mins ACTION DELETE A";
    const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
        WHERE A.biz_loc = B.biz_loc ACTION DELETE B";
    const DUP_TIMED: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
        WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";
    const CYCLE: &str = "DEFINE cycle ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B, C) \
        WHERE A.biz_loc = C.biz_loc and A.biz_loc != B.biz_loc ACTION DELETE B";
    const REPLACING: &str = "DEFINE replacing ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
        WHERE A.biz_loc = 'loc2' and B.biz_loc = 'locA' and B.rtime - A.rtime < 20 mins \
        ACTION MODIFY A.biz_loc = 'loc1'";

    fn templates(texts: &[&str]) -> Vec<Arc<RuleTemplate>> {
        texts
            .iter()
            .map(|t| Arc::new(compile_rule(&parse_rule(t).unwrap()).unwrap()))
            .collect()
    }

    /// A small but adversarial dataset: 8 EPCs x mixed anomalies.
    fn catalog() -> Catalog {
        let reads = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
            Field::new("reader", DataType::Str),
        ]));
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut push = |e: &str, t: i64, l: &str, r: &str| {
            rows.push(vec![
                Value::str(e),
                Value::Int(t),
                Value::str(l),
                Value::str(r),
            ]);
        };
        // Deterministic pseudo-random-ish mixture around the boundary T=1000.
        for i in 0..8 {
            let e = format!("e{i}");
            let base = 100 * i as i64;
            push(&e, base, "locA", "r1");
            push(&e, base + 120, "locA", "r1"); // duplicate
            push(
                &e,
                base + 200,
                "locB",
                if i % 2 == 0 { "readerX" } else { "r2" },
            );
            push(&e, base + 400, "locA", "r1"); // cycle member
            push(&e, base + 700, "loc2", "r3"); // cross-read candidate
            push(&e, base + 900, "locA", "r1");
            push(&e, base + 1100, "locC", "r1");
            push(&e, base + 1300, "locC", "readerX"); // duplicate + readerX
        }
        let cat = Catalog::new();
        let mut t = Table::new("caser", Batch::from_rows(reads, &rows).unwrap());
        t.create_index("rtime").unwrap();
        t.create_index("epc").unwrap();
        cat.register(t);

        let locs = schema_ref(Schema::new(vec![
            Field::new("gln", DataType::Str),
            Field::new("site", DataType::Str),
        ]));
        cat.register(Table::new(
            "locs",
            Batch::from_rows(
                locs,
                &[
                    vec![Value::str("locA"), Value::str("dc1")],
                    vec![Value::str("locB"), Value::str("dc2")],
                    vec![Value::str("locC"), Value::str("dc1")],
                    vec![Value::str("loc1"), Value::str("dc3")],
                    vec![Value::str("loc2"), Value::str("dc3")],
                ],
            )
            .unwrap(),
        ));
        let info = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("lot", DataType::Int),
        ]));
        let info_rows: Vec<Vec<Value>> = (0..8)
            .map(|i| vec![Value::str(format!("e{i}")), Value::Int(i % 3)])
            .collect();
        cat.register(Table::new(
            "epc_info",
            Batch::from_rows(info, &info_rows).unwrap(),
        ));
        cat
    }

    /// Gold standard: materialize Φ(R), swap it into a catalog copy, run Q.
    fn gold(sql: &str, cat: &Catalog, rules: &[Arc<RuleTemplate>]) -> Vec<Vec<Value>> {
        let refs: Vec<&RuleTemplate> = rules.iter().map(Arc::as_ref).collect();
        let phi = dc_rules::cleansing_plan(LogicalPlan::scan("caser"), &refs, cat).unwrap();
        let cleaned = Executor::new(cat).execute(&phi).unwrap();
        let cat2 = Catalog::new();
        for name in cat.table_names() {
            if name != "caser" {
                let t = cat.get(&name).unwrap();
                cat2.register(Table::new(&name, t.data().clone()));
            }
        }
        // Project the cleansed batch back to the base schema (MODIFY may
        // have appended new columns; the base query never sees them).
        let base = cat.get("caser").unwrap();
        let cols: Vec<usize> = (0..base.schema().len()).collect();
        let projected = {
            let idx: Vec<usize> = (0..cleaned.num_rows()).collect();
            let b = cleaned.take(&idx);
            let columns: Vec<_> = cols.iter().map(|&i| b.column(i).clone()).collect();
            Batch::new(base.schema().clone(), columns).unwrap()
        };
        cat2.register(Table::new("caser", projected));
        let plan = plan_query(&parse_query(sql).unwrap(), &cat2).unwrap();
        Executor::new(&cat2).execute(&plan).unwrap().sorted_rows()
    }

    fn check_all_strategies(sql: &str, rule_texts: &[&str]) {
        let cat = catalog();
        let rules = templates(rule_texts);
        let expect = gold(sql, &cat, &rules);
        let engine = RewriteEngine::new();
        let user_plan = plan_query(&parse_query(sql).unwrap(), &cat).unwrap();
        for strategy in [
            Strategy::Auto,
            Strategy::Naive,
            Strategy::JoinBack,
            Strategy::Expanded,
        ] {
            let rw = match engine.rewrite_plan(&user_plan, &rules, &cat, strategy) {
                Ok(rw) => rw,
                Err(e) if strategy == Strategy::Expanded => {
                    assert!(
                        e.to_string().contains("no feasible expanded"),
                        "unexpected expanded error: {e}"
                    );
                    continue;
                }
                Err(e) => panic!("{strategy:?} failed: {e}"),
            };
            let got = Executor::new(&cat).execute(&rw.plan).unwrap().sorted_rows();
            assert_eq!(
                got, expect,
                "strategy {strategy:?} (chosen: {}) diverges from gold for {sql}\nplan:\n{}",
                rw.chosen, rw.plan
            );
        }
    }

    #[test]
    fn selection_query_all_rules() {
        check_all_strategies(
            "select epc, rtime, biz_loc from caser where rtime <= 1000",
            &[READER, DUP_TIMED, REPLACING],
        );
    }

    #[test]
    fn lower_bound_selection() {
        check_all_strategies(
            "select epc, rtime from caser where rtime >= 600",
            &[READER, DUP_TIMED],
        );
    }

    #[test]
    fn cycle_rule_forces_joinback() {
        // Cycle rule has no expanded rewrite (Table 1) — Auto must still be
        // correct via join-back.
        check_all_strategies(
            "select epc, rtime, biz_loc from caser where rtime <= 1000",
            &[CYCLE],
        );
    }

    #[test]
    fn untimed_duplicate_rule_fig3_c2() {
        // Fig. 3(b): duplicates arbitrarily far apart -> expanded infeasible,
        // join-back required.
        check_all_strategies("select epc, rtime from caser where rtime > 800", &[DUP]);
    }

    #[test]
    fn join_query_with_dims() {
        check_all_strategies(
            "select c.epc, l.site from caser c, locs l \
             where c.biz_loc = l.gln and c.rtime <= 1000 and l.site = 'dc1'",
            &[READER, DUP_TIMED],
        );
    }

    #[test]
    fn aggregate_join_query() {
        check_all_strategies(
            "select l.site, count(distinct c.epc) as n from caser c, locs l, epc_info i \
             where c.biz_loc = l.gln and c.epc = i.epc and c.rtime >= 300 and i.lot = 1 \
             group by l.site",
            &[READER, DUP_TIMED, REPLACING],
        );
    }

    #[test]
    fn olap_window_query_q1_shape() {
        check_all_strategies(
            "with v1 as (select epc, rtime, biz_loc, \
               max(rtime) over (partition by epc order by rtime \
                 rows between 1 preceding and 1 preceding) as prev_time \
             from caser where rtime <= 1200) \
             select epc, avg(rtime - prev_time) as dwell from v1 \
             where prev_time is not null group by epc",
            &[READER, DUP_TIMED],
        );
    }

    #[test]
    fn all_five_rule_chain() {
        check_all_strategies(
            "select epc, rtime, biz_loc from caser where rtime <= 900",
            &[READER, DUP_TIMED, REPLACING, CYCLE],
        );
    }

    #[test]
    fn modify_conflict_forces_naive() {
        let cat = catalog();
        let rules = templates(&[REPLACING]);
        let engine = RewriteEngine::new();
        // Query constrains biz_loc, which REPLACING modifies.
        let sql = "select epc from caser where biz_loc = 'loc1' and rtime <= 2000";
        let user_plan = plan_query(&parse_query(sql).unwrap(), &cat).unwrap();
        let rw = engine
            .rewrite_plan(&user_plan, &rules, &cat, Strategy::Auto)
            .unwrap();
        assert!(rw.chosen.contains("naive"), "chosen: {}", rw.chosen);
        assert!(!rw.notes.is_empty());
        // And it matches gold.
        let got = Executor::new(&cat).execute(&rw.plan).unwrap().sorted_rows();
        assert_eq!(got, gold(sql, &cat, &rules));
    }

    #[test]
    fn fig3_running_example_c1_q1() {
        // Fig. 3(a): R1 = {(e1, t1-2min, readerY), (e1, t1+2min, readerX)},
        // Q1: rtime < t1. Correct answer {}; naive pushdown would return r1.
        let reads = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
            Field::new("reader", DataType::Str),
        ]));
        let t1 = 10_000i64;
        let cat = Catalog::new();
        cat.register(Table::new(
            "caser",
            Batch::from_rows(
                reads,
                &[
                    vec![
                        Value::str("e1"),
                        Value::Int(t1 - 120),
                        Value::str("l"),
                        Value::str("readerY"),
                    ],
                    vec![
                        Value::str("e1"),
                        Value::Int(t1 + 120),
                        Value::str("l"),
                        Value::str("readerX"),
                    ],
                ],
            )
            .unwrap(),
        ));
        let rules = templates(&[READER]);
        let engine = RewriteEngine::new();
        let sql = format!("select epc, rtime from caser where rtime < {t1}");
        let user_plan = plan_query(&parse_query(&sql).unwrap(), &cat).unwrap();
        for strategy in [Strategy::Auto, Strategy::Expanded, Strategy::JoinBack] {
            let rw = engine
                .rewrite_plan(&user_plan, &rules, &cat, strategy)
                .unwrap();
            let got = Executor::new(&cat).execute(&rw.plan).unwrap();
            assert_eq!(got.num_rows(), 0, "{strategy:?} must return {{}}");
        }
        // The *unsound* direct pushdown would have returned row r1:
        let dirty = Executor::new(&cat)
            .execute(&dc_relational::sql::plan_sql(&sql, &cat).unwrap())
            .unwrap();
        assert_eq!(dirty.num_rows(), 1);
    }

    #[test]
    fn fig3_running_example_c2_q2() {
        // Fig. 3(b): R2 = {(e2, t2-2min, locZ), (e2, t2+2min, locZ)},
        // Q2: rtime > t2 over the untimed duplicate rule. Correct answer {}.
        let reads = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
            Field::new("reader", DataType::Str),
        ]));
        let t2 = 10_000i64;
        let cat = Catalog::new();
        cat.register(Table::new(
            "caser",
            Batch::from_rows(
                reads,
                &[
                    vec![
                        Value::str("e2"),
                        Value::Int(t2 - 120),
                        Value::str("locZ"),
                        Value::str("r"),
                    ],
                    vec![
                        Value::str("e2"),
                        Value::Int(t2 + 120),
                        Value::str("locZ"),
                        Value::str("r"),
                    ],
                ],
            )
            .unwrap(),
        ));
        let rules = templates(&[DUP]);
        let engine = RewriteEngine::new();
        let sql = format!("select epc, rtime from caser where rtime > {t2}");
        let user_plan = plan_query(&parse_query(&sql).unwrap(), &cat).unwrap();
        // Expanded is infeasible (no time bound in the rule).
        assert!(engine
            .rewrite_plan(&user_plan, &rules, &cat, Strategy::Expanded)
            .is_err());
        let rw = engine
            .rewrite_plan(&user_plan, &rules, &cat, Strategy::Auto)
            .unwrap();
        let got = Executor::new(&cat).execute(&rw.plan).unwrap();
        assert_eq!(got.num_rows(), 0);
        // Direct pushdown would wrongly return r4.
        let dirty = Executor::new(&cat)
            .execute(&dc_relational::sql::plan_sql(&sql, &cat).unwrap())
            .unwrap();
        assert_eq!(dirty.num_rows(), 1);
    }

    #[test]
    fn candidate_reporting() {
        let cat = catalog();
        let rules = templates(&[READER]);
        let engine = RewriteEngine::new();
        let sql = "select c.epc from caser c, locs l \
                   where c.biz_loc = l.gln and c.rtime <= 1000 and l.site = 'dc1'";
        let user_plan = plan_query(&parse_query(sql).unwrap(), &cat).unwrap();
        let rw = engine
            .rewrite_plan(&user_plan, &rules, &cat, Strategy::Auto)
            .unwrap();
        // epc_info is not referenced; locs is direct but biz_loc does not
        // propagate -> expanded variants: only k=0. Join-back: k=0 and k=1.
        let labels: Vec<&str> = rw.candidates.iter().map(|c| c.label.as_str()).collect();
        assert!(
            labels.contains(&"expanded(0 joins below cleansing)"),
            "{labels:?}"
        );
        assert!(labels.contains(&"join-back(0 semi-joins)"), "{labels:?}");
        assert!(labels.contains(&"join-back(1 semi-joins)"), "{labels:?}");
        assert!(
            !labels.contains(&"expanded(1 joins below cleansing)"),
            "{labels:?}"
        );
        assert!(rw.expanded_condition.is_some());
        // Costs sorted ascending.
        let costs: Vec<f64> = rw.candidates.iter().map(|c| c.cost).collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn no_rules_passthrough() {
        let cat = catalog();
        let engine = RewriteEngine::new();
        let sql = "select epc from caser where rtime < 500";
        let user_plan = plan_query(&parse_query(sql).unwrap(), &cat).unwrap();
        let rw = engine
            .rewrite_plan(&user_plan, &[], &cat, Strategy::Auto)
            .unwrap();
        assert!(rw.chosen.contains("original"));
    }

    #[test]
    fn epc_join_eligible_below_cleansing() {
        // epc_info joins on the cluster key: it may be pushed below cleansing.
        let cat = catalog();
        let rules = templates(&[READER]);
        let engine = RewriteEngine::new();
        let sql = "select c.epc from caser c, epc_info i \
                   where c.epc = i.epc and c.rtime <= 1000 and i.lot = 1";
        let user_plan = plan_query(&parse_query(sql).unwrap(), &cat).unwrap();
        let rw = engine
            .rewrite_plan(&user_plan, &rules, &cat, Strategy::Auto)
            .unwrap();
        let labels: Vec<&str> = rw.candidates.iter().map(|c| c.label.as_str()).collect();
        assert!(
            labels.contains(&"expanded(1 joins below cleansing)"),
            "{labels:?}"
        );
        // Still correct.
        let expect = gold(sql, &cat, &rules);
        let got = Executor::new(&cat).execute(&rw.plan).unwrap().sorted_rows();
        assert_eq!(got, expect);
    }

    #[test]
    fn execute_cached_matches_execute_and_invalidates_on_append() {
        use crate::cache::CleanseCache;

        fn all_rows(b: &Batch) -> Vec<Vec<Value>> {
            (0..b.num_rows()).map(|i| b.row(i)).collect()
        }

        // Re-register caser segmented so covering-segment validation is
        // meaningful (several segments, appends create new ones).
        let cat = catalog();
        {
            let base = cat.get("caser").unwrap();
            let mut t = Table::with_segment_rows("caser", base.data().clone(), 16);
            t.create_index("rtime").unwrap();
            t.create_index("epc").unwrap();
            cat.register(t);
        }
        let rules = templates(&[DUP]);
        let engine = RewriteEngine::new();
        let sql = "select epc, rtime from caser where rtime > 800";
        let user_plan = plan_query(&parse_query(sql).unwrap(), &cat).unwrap();
        let rw = engine
            .rewrite_plan(&user_plan, &rules, &cat, Strategy::JoinBack)
            .unwrap();
        let spec = rw.cache_spec.as_ref().expect("join-back produces a spec");
        assert_eq!(spec.ckey, "epc");

        let opts = ExecOptions::default;
        let plain = rw.execute(&cat, opts()).unwrap();
        let cache = CleanseCache::new(64);
        let cold = rw.execute_cached(&cat, opts(), &cache).unwrap();
        assert_eq!(all_rows(&cold.batch), all_rows(&plain.batch));
        assert!(cold.stats.seq_cache_misses > 0);
        assert_eq!(cold.stats.seq_cache_hits, 0);

        let warm = rw.execute_cached(&cat, opts(), &cache).unwrap();
        assert_eq!(all_rows(&warm.batch), all_rows(&plain.batch));
        assert!(warm.stats.seq_cache_hits > 0);
        assert_eq!(warm.stats.seq_cache_misses, 0);

        // Appending a read for e1 extends its covering segments: the stale
        // entry is invalidated and recomputed; other ckeys stay cached.
        let schema = cat.get("caser").unwrap().schema().clone();
        let extra = Batch::from_rows(
            schema,
            &[vec![
                Value::str("e1"),
                Value::Int(950),
                Value::str("locZ"),
                Value::str("r9"),
            ]],
        )
        .unwrap();
        cat.append("caser", extra).unwrap();
        let refreshed = rw.execute_cached(&cat, opts(), &cache).unwrap();
        assert!(refreshed.stats.seq_cache_invalidations >= 1);
        assert!(refreshed.stats.seq_cache_hits > 0, "unaffected ckeys hit");
        let plain2 = rw.execute(&cat, opts()).unwrap();
        assert_eq!(all_rows(&refreshed.batch), all_rows(&plain2.batch));
    }
}
