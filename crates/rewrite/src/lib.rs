//! # dc-rewrite — deferred-cleansing query rewrites
//!
//! The paper's central contribution: answering a query Q over *cleansed*
//! data, Q[C₁…Cₙ], without cleansing the whole reads table.
//!
//! * [`shape`] decomposes the user plan around the reads table — the local
//!   condition *s*, the dimension joins, and the consumer.
//! * [`analysis`] performs the correlation/transitivity analysis of §5.2
//!   (Figure 4): correlation conditions per context reference (explicit
//!   conjuncts + implied cluster/sequence-key conjuncts, restricted to the
//!   position-preserving subset for position-based references), and derives
//!   *context conditions* by propagating the query's bounds through them.
//! * [`engine`] generates the candidate rewrites — naive, expanded (with
//!   0..m joins pushed below cleansing), and join-back (with 0..n
//!   semi-joins) — compiles each, and picks the cheapest cost estimate.
//!
//! The correctness contract, verified extensively by the integration tests:
//! for any query and rule chain, every candidate produces exactly the same
//! result multiset as the naive gold standard `Q(Φ_{Cₙ}(…Φ_{C₁}(R)))`.

pub mod analysis;
pub mod cache;
pub mod engine;
pub mod shape;
pub mod trace;

pub use analysis::{bind_to_target, context_condition, correlation_condition, join_key_propagates};
pub use cache::{CleanseCache, JoinBackCacheSpec};
pub use dc_storage::CacheStats;
pub use engine::{Candidate, Executed, RewriteEngine, Rewritten, Strategy};
pub use shape::{analyze, DimJoin, QueryShape};
pub use trace::DecisionTrace;
