//! `repro stream` — incremental maintenance work of standing queries.
//!
//! Not in the paper (the 2006 evaluation is one-shot); this figure
//! characterizes the continuous-cleansing subsystem (`dc-stream`): one
//! standing query per maintenance mode (scoped / ordered / aggregate)
//! subscribed over the benchmark database, then an append-heavy workload
//! of suffix batches (existing reads replayed past the current time
//! horizon, so each batch extends a handful of tag sequences). For every
//! published epoch the figure accumulates the *maintenance* cleansing work
//! — `window_accumulator_ops` of the ckey-scoped re-executions, taken from
//! each [`dc_service::ChangeSet`]'s stats — and, for comparison, the cleansing work of
//! a cold full re-execution of the same query at the same epoch.
//!
//! `delta_work_pct` is the headline: maintenance ops as a percent of the
//! cold-recompute ops. The figure asserts it stays **under 20%** — the
//! point of scoped maintenance — and the counter is gated by `bench-gate`,
//! so a rewrite or classifier change that silently degrades incrementality
//! fails CI. Everything reported is a deterministic work counter (the
//! cleansed-sequence cache is off on both sides, see
//! [`crate::harness::setup_uncached`]); only figure-level wall-clock is
//! machine-dependent.

use crate::harness::setup_uncached;
use dc_json::Json;
use dc_relational::batch::Batch;
use dc_relational::value::Value;
use dc_service::{QueryRequest, QueryService, ServiceConfig, SubscribeOptions};
use std::sync::Arc;

/// One standing query measured over the whole append schedule.
#[derive(Debug, Clone)]
pub struct StreamBenchRow {
    /// Maintenance mode the subscription classified into.
    pub mode: &'static str,
    /// Appends published (one notification each).
    pub appends: u64,
    /// Change sets delivered.
    pub notifications: u64,
    /// Total rows carried by the change sets.
    pub delta_rows: u64,
    /// Rows produced by the ckey-scoped maintenance re-executions.
    pub recleansed_rows: u64,
    /// Maintenance steps that fell back to recompute-and-diff.
    pub fallbacks: u64,
    /// Cleansing work (window accumulator ops) done by maintenance.
    pub window_accumulator_ops: u64,
    /// Cleansing work a cold full re-execution did at each epoch, summed.
    pub recompute_window_ops: u64,
    /// `100 * window_accumulator_ops / recompute_window_ops`, rounded.
    pub delta_work_pct: u64,
}

impl StreamBenchRow {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("mode", self.mode)
            .set("appends", self.appends)
            .set("notifications", self.notifications)
            .set("delta_rows", self.delta_rows)
            .set("recleansed_rows", self.recleansed_rows)
            .set("fallbacks", self.fallbacks)
            .set("window_accumulator_ops", self.window_accumulator_ops)
            .set("recompute_window_ops", self.recompute_window_ops)
            .set("delta_work_pct", self.delta_work_pct)
    }

    pub fn render(&self) -> String {
        format!(
            "mode={:<9} {:>2} appends  delta_rows={:>5} recleansed={:>6} \
             maint_ops={:>8} recompute_ops={:>9}  ({:>2}% of cold)  fallbacks={}",
            self.mode,
            self.appends,
            self.delta_rows,
            self.recleansed_rows,
            self.window_accumulator_ops,
            self.recompute_window_ops,
            self.delta_work_pct,
            self.fallbacks
        )
    }
}

/// The append schedule: `appends` suffix batches of `rows_per_batch`
/// consecutive reads, replayed with every `rtime` shifted past the current
/// maximum. Consecutive generated reads belong to a handful of tags, so
/// each batch touches few cluster keys — the append-heavy regime standing
/// queries are built for.
fn suffix_batches(data: &Batch, appends: usize, rows_per_batch: usize) -> Vec<Batch> {
    let rtime_idx = data
        .schema()
        .index_of_name("rtime")
        .expect("reads table has rtime");
    let mut max_rtime = 0i64;
    for i in 0..data.num_rows() {
        if let Value::Int(t) = data.row(i)[rtime_idx] {
            max_rtime = max_rtime.max(t);
        }
    }
    (0..appends)
        .map(|a| {
            let rows: Vec<Vec<Value>> = (0..rows_per_batch)
                .map(|r| {
                    let mut row = data.row((a * rows_per_batch + r) % data.num_rows());
                    if let Value::Int(t) = row[rtime_idx] {
                        // Strictly increasing across batches so each append
                        // extends the suffix rather than rewriting history.
                        row[rtime_idx] = Value::Int(t + (a as i64 + 1) * (max_rtime + 1));
                    }
                    row
                })
                .collect();
            Batch::from_rows(data.schema().clone(), &rows).expect("suffix batch")
        })
        .collect()
}

/// Run the figure: subscribe one query per incremental mode under the
/// 3-rule application, publish `appends` suffix batches, and compare
/// maintenance work against cold recomputes epoch by epoch.
pub fn stream_maintenance(scale: usize, seed: u64, appends: usize) -> Vec<StreamBenchRow> {
    let env = setup_uncached(scale, 10.0, seed);
    let t_mid = env.dataset.rtime_quantile(0.5);
    let subs: [(&'static str, String); 3] = [
        (
            "scoped",
            format!("select epc, rtime, biz_loc from caser where rtime >= {t_mid}"),
        ),
        (
            "ordered",
            "select epc, rtime from caser order by rtime desc, epc limit 50".into(),
        ),
        (
            "aggregate",
            "select biz_loc, count(*) as n, avg(rtime) as a from caser group by biz_loc".into(),
        ),
    ];

    let batches = {
        let table = env.system.catalog().get("caser").expect("caser exists");
        suffix_batches(table.data(), appends, 16)
    };

    let svc = Arc::new(QueryService::start(
        env.system,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    ));

    let handles: Vec<_> = subs
        .iter()
        .map(|(mode, sql)| {
            let h = svc
                .subscribe(
                    "rules-3",
                    sql,
                    SubscribeOptions::default().with_queue_capacity(appends + 1),
                )
                .expect("subscribe");
            assert_eq!(h.mode(), *mode, "classification of {sql:?}");
            h
        })
        .collect();

    let mut rows: Vec<StreamBenchRow> = subs
        .iter()
        .map(|(mode, _)| StreamBenchRow {
            mode,
            appends: appends as u64,
            notifications: 0,
            delta_rows: 0,
            recleansed_rows: 0,
            fallbacks: 0,
            window_accumulator_ops: 0,
            recompute_window_ops: 0,
            delta_work_pct: 0,
        })
        .collect();

    for batch in batches {
        svc.append("caser", batch).expect("append");
        for (i, h) in handles.iter().enumerate() {
            let cs = h
                .try_next()
                .expect("healthy feed")
                .expect("one change set per publish");
            rows[i].notifications += 1;
            rows[i].delta_rows += cs.delta_rows() as u64;
            rows[i].recleansed_rows += cs.stats.exec.maintenance_scoped_rows;
            rows[i].fallbacks += cs.stats.fallback as u64;
            rows[i].window_accumulator_ops += cs.stats.exec.window_accumulator_ops;
        }
        // What the same epochs would have cost without incremental
        // maintenance: a cold full re-execution of each standing query.
        for (i, (_, sql)) in subs.iter().enumerate() {
            let resp = svc
                .execute(QueryRequest::new("rules-3", sql))
                .expect("cold recompute");
            rows[i].recompute_window_ops += resp.report.stats.window_accumulator_ops;
        }
    }

    for row in &mut rows {
        assert!(
            row.recompute_window_ops > 0,
            "cold recompute did no window work"
        );
        row.delta_work_pct = (100 * row.window_accumulator_ops + row.recompute_window_ops / 2)
            / row.recompute_window_ops;
        assert!(
            row.delta_work_pct < 20,
            "mode={} maintenance did {}% of the cold-recompute work (expected < 20%)",
            row.mode,
            row.delta_work_pct
        );
        assert_eq!(row.fallbacks, 0, "mode={} unexpectedly fell back", row.mode);
    }
    rows
}
