//! Microbench for the typed expression kernels of
//! [`dc_relational::expr`]: [`filter_chunk`] over a selection-carrying
//! chunk versus the per-row `Value`-boxing oracle
//! ([`Expr::evaluate_rowwise`] on the compacted batch).
//!
//! The interesting number is not wall-clock (printed as colour only) but
//! the deterministic [`KernelStats`](dc_relational::expr::KernelStats): a
//! typed kernel must do **at most one
//! accumulator op per compute node per selected row**, and a predicate
//! made of kernel-covered nodes must never fall back to the boxed path.
//! The `--smoke` bench asserts both, plus survivor-count equivalence with
//! the oracle, at several selection densities.

use dc_relational::batch::{schema_ref, Batch};
use dc_relational::column::{Column, ColumnBuilder};
use dc_relational::expr::{filter_chunk, BinaryOp, Expr};
use dc_relational::schema::{Field, Schema};
use dc_relational::value::{DataType, Value};
use std::time::Instant;

/// One measured (predicate, selection density) point.
#[derive(Debug, Clone)]
pub struct ExprKernelPoint {
    pub label: &'static str,
    /// Percentage of physical rows carried by the chunk's selection vector
    /// (100 = flat chunk, no selection).
    pub density_pct: u32,
    /// Compute nodes in the predicate (comparison / arithmetic / AND / IN
    /// nodes — leaves are free).
    pub compute_nodes: u64,
    /// Logical rows the kernels evaluated (= selected rows).
    pub evaluated_rows: u64,
    pub kernel_ops: u64,
    pub fallback_rows: u64,
    /// Rows where the predicate was TRUE — must match the oracle.
    pub kernel_survivors: u64,
    pub oracle_survivors: u64,
    pub kernel_ms: f64,
    pub oracle_ms: f64,
}

/// A deterministic xorshift generator, enough to shape the data without
/// pulling in a rand crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Build the bench chunk: `a` Int in [0, 1000), `b` Int in [0, 1000) with
/// ~5% NULLs, `c` Double in [0, 1).
fn build_batch(rows: usize, seed: u64) -> Batch {
    let mut rng = Rng(seed | 1);
    let mut a = ColumnBuilder::new(DataType::Int, rows);
    let mut b = ColumnBuilder::new(DataType::Int, rows);
    let mut c = ColumnBuilder::new(DataType::Double, rows);
    for _ in 0..rows {
        a.push(&Value::Int((rng.next() % 1000) as i64)).unwrap();
        if rng.next() % 100 < 5 {
            b.push_null();
        } else {
            b.push(&Value::Int((rng.next() % 1000) as i64)).unwrap();
        }
        c.push(&Value::Double((rng.next() % 1_000_000) as f64 / 1e6))
            .unwrap();
    }
    let schema = schema_ref(Schema::new(vec![
        Field::new("a", DataType::Int),
        Field::new("b", DataType::Int),
        Field::new("c", DataType::Double),
    ]));
    Batch::new(schema, vec![a.finish(), b.finish(), c.finish()]).expect("bench batch")
}

/// The benched predicates with their compute-node counts (nodes that charge
/// one kernel op per evaluated row: comparisons, arithmetic, AND, IN).
fn cases() -> Vec<(&'static str, u64, Expr)> {
    vec![
        ("cmp_int", 1, Expr::col("a").lt(Expr::lit(500i64))),
        (
            "arith_cmp",
            2,
            Expr::binary(Expr::col("a"), BinaryOp::Plus, Expr::col("b")).lt(Expr::lit(1000i64)),
        ),
        (
            "and_cmp",
            3,
            Expr::col("a")
                .lt(Expr::lit(800i64))
                .and(Expr::col("b").gt_eq(Expr::lit(100i64))),
        ),
        (
            "in_list",
            1,
            Expr::InList {
                expr: Box::new(Expr::col("a")),
                list: (0..16).map(|k| Value::Int(k * 61)).collect(),
                negated: false,
            },
        ),
        ("mixed_num_cmp", 1, Expr::col("c").lt(Expr::lit(0.35f64))),
    ]
}

/// Count TRUE rows of `pred` via the retained per-row `Value` oracle on the
/// compacted batch.
fn oracle_survivors(pred: &Expr, chunk: &Batch) -> u64 {
    let compact = chunk.flatten();
    let c: Column = pred.evaluate_rowwise(&compact).expect("oracle eval");
    (0..c.len())
        .filter(|&k| !c.is_null(k) && c.value(k) == Value::Bool(true))
        .count() as u64
}

/// Run every predicate at each selection density over a `rows`-row chunk,
/// `iters` timed repetitions per measurement.
pub fn expr_kernel_ablation(
    rows: usize,
    densities_pct: &[u32],
    iters: usize,
) -> Vec<ExprKernelPoint> {
    let base = build_batch(rows, 0x5eed_2006);
    let mut points = Vec::new();
    for &pct in densities_pct {
        let chunk = if pct >= 100 {
            base.clone()
        } else {
            let mut rng = Rng(0x00d1_ce00 + u64::from(pct));
            let sel: Vec<u32> = (0..rows as u32)
                .filter(|_| (rng.next() % 100) < u64::from(pct))
                .collect();
            base.with_selection(sel)
        };
        let evaluated = chunk.num_rows() as u64;
        for (label, compute_nodes, pred) in cases() {
            let t = Instant::now();
            let mut outcome = None;
            for _ in 0..iters {
                outcome = Some(filter_chunk(&pred, &chunk).expect("kernel filter"));
            }
            let kernel_ms = t.elapsed().as_secs_f64() * 1e3;
            let outcome = outcome.expect("at least one iteration");

            let t = Instant::now();
            let mut oracle = 0;
            for _ in 0..iters {
                oracle = oracle_survivors(&pred, &chunk);
            }
            let oracle_ms = t.elapsed().as_secs_f64() * 1e3;

            points.push(ExprKernelPoint {
                label,
                density_pct: pct,
                compute_nodes,
                evaluated_rows: evaluated,
                kernel_ops: outcome.stats.kernel_ops,
                fallback_rows: outcome.stats.fallback_rows,
                kernel_survivors: outcome.selected.len() as u64,
                oracle_survivors: oracle,
                kernel_ms,
                oracle_ms,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_stay_within_one_op_per_node_per_selected_row() {
        for p in expr_kernel_ablation(2_048, &[100, 20], 1) {
            assert_eq!(p.fallback_rows, 0, "{} fell back", p.label);
            assert!(
                p.kernel_ops <= p.compute_nodes * p.evaluated_rows,
                "{}@{}%: {} ops > {} nodes x {} rows",
                p.label,
                p.density_pct,
                p.kernel_ops,
                p.compute_nodes,
                p.evaluated_rows
            );
            assert_eq!(
                p.kernel_survivors, p.oracle_survivors,
                "{}@{}% disagrees with the oracle",
                p.label, p.density_pct
            );
        }
    }
}
