//! # dc-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's §6 evaluation:
//!
//! * **Table 1** — expanded conditions derived for q1/q2 per rule,
//! * **Figure 7(a,d)** — q1/q2 elapsed time vs. predicate selectivity for
//!   the dirty baseline `q`, the expanded rewrite `q_e`, the join-back
//!   rewrite `q_j`, and the naive rewrite `q_n`,
//! * **Figure 7(b,c,e,f,g)** — execution plans,
//! * **Figure 8** — q2′ with an EPC-uncorrelated predicate,
//! * **Figure 9(a,b)** — scaling the number of rules (1–5),
//! * **Figure 9(c,d)** — scaling the anomaly percentage (10–40 %).
//!
//! Absolute times differ from the paper's DB2-on-AIX testbed; the harness
//! also reports machine-independent work counters (rows scanned/sorted,
//! window work) so the *shapes* are auditable.

pub mod experiments;
pub mod expr_kernels;
pub mod gate;
pub mod harness;
pub mod hash_kernels;
pub mod microbench;
pub mod recovery_bench;
pub mod report;
pub mod service_bench;
pub mod stream_bench;
pub mod window_kernels;

pub use experiments::*;
pub use harness::*;
