//! Benchmark setup and single-run measurement.

use dc_core::{DeferredCleansingSystem, Strategy};
use dc_json::Json;
use dc_relational::table::Catalog;
use dc_rfidgen::{generate_into, Dataset, GenConfig};
use std::sync::Arc;
use std::time::Instant;

/// Which query variant to run (the paper's q / q_e / q_j / q_n).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The original query on dirty data (baseline; wrong answers).
    Dirty,
    /// Naive rewrite: clean everything first.
    Naive,
    /// Best expanded rewrite (None in results when infeasible).
    Expanded,
    /// Best join-back rewrite.
    JoinBack,
    /// Cost-based choice between expanded and join-back.
    Auto,
}

impl Variant {
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Dirty => "q",
            Variant::Naive => "q_n",
            Variant::Expanded => "q_e",
            Variant::JoinBack => "q_j",
            Variant::Auto => "q_auto",
        }
    }
}

/// One measured execution.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub variant: &'static str,
    pub millis: f64,
    pub result_rows: usize,
    pub rows_scanned: u64,
    pub rows_sorted: u64,
    pub sorts: u64,
    /// Sort comparisons actually performed (run detection + merging).
    pub sort_comparisons: u64,
    /// Sorts skipped entirely because the input was a single run.
    pub sorts_elided: u64,
    /// Pre-sorted runs consumed by merging (non-elided) sorts.
    pub merge_runs_used: u64,
    /// Window accumulator ops: frame positions entering or leaving an
    /// aggregate state. Frame-width independent for incremental kernels.
    pub window_accumulator_ops: u64,
    pub join_probes: u64,
    /// Per-value hash computations by the normalized-key machinery (join
    /// build/probe, GROUP BY, DISTINCT, coordinator merge).
    pub hash_ops: u64,
    /// Hash-equal, byte-unequal table probes (disambiguated by memcmp).
    pub hash_collisions: u64,
    /// Key byte comparisons spent resolving table probes.
    pub probe_memcmps: u64,
    /// Normalized key bytes written by the batch encoders.
    pub key_bytes_encoded: u64,
    /// Window partitions evaluated (identical at any parallelism).
    pub partitions: u64,
    /// Wall-clock spent in window evaluation — the Φ_C hot path, and the
    /// quantity `--threads` is expected to improve.
    pub window_eval_ms: f64,
    /// Parallelism the run used.
    pub parallelism: usize,
    /// The rewrite the engine picked (for Auto / reporting).
    pub chosen: String,
    /// Storage segments considered / zone-map pruned / scanned.
    pub segments_total: u64,
    pub segments_pruned: u64,
    pub segments_scanned: u64,
    /// Cleansed-sequence cache activity of this run.
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_invalidations: u64,
}

impl Measurement {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("variant", self.variant)
            .set("millis", Json::Num(self.millis))
            .set("result_rows", self.result_rows)
            .set("rows_scanned", self.rows_scanned)
            .set("rows_sorted", self.rows_sorted)
            .set("sorts", self.sorts)
            .set("sort_comparisons", self.sort_comparisons)
            .set("sorts_elided", self.sorts_elided)
            .set("merge_runs_used", self.merge_runs_used)
            .set("window_accumulator_ops", self.window_accumulator_ops)
            .set("join_probes", self.join_probes)
            .set("hash_ops", self.hash_ops)
            .set("hash_collisions", self.hash_collisions)
            .set("probe_memcmps", self.probe_memcmps)
            .set("key_bytes_encoded", self.key_bytes_encoded)
            .set("partitions", self.partitions)
            .set("window_eval_ms", Json::Num(self.window_eval_ms))
            .set("parallelism", self.parallelism)
            .set("chosen", self.chosen.as_str())
            .set("segments_total", self.segments_total)
            .set("segments_pruned", self.segments_pruned)
            .set("segments_scanned", self.segments_scanned)
            .set("cache_hits", self.cache_hits)
            .set("cache_misses", self.cache_misses)
            .set("cache_invalidations", self.cache_invalidations)
    }
}

/// A prepared benchmark environment: one generated database plus a system
/// with the paper's rules registered under applications `rules-1` ...
/// `rules-5` (per Figure 9's rule counts).
pub struct BenchEnv {
    pub system: DeferredCleansingSystem,
    pub dataset: Dataset,
}

/// Generate database `db-<anomaly_pct>` at scale `s` and register the
/// benchmark rule sets.
pub fn setup(scale: usize, anomaly_pct: f64, seed: u64) -> BenchEnv {
    setup_with_parallelism(scale, anomaly_pct, seed, 1)
}

/// [`setup`] with partition-parallel cleansing enabled. Parallelism changes
/// wall-clock only — results and work counters are identical.
pub fn setup_with_parallelism(
    scale: usize,
    anomaly_pct: f64,
    seed: u64,
    parallelism: usize,
) -> BenchEnv {
    build(scale, anomaly_pct, seed, parallelism, true)
}

/// [`setup`] without the cleansed-sequence cache. The `stream` figure
/// compares incremental maintenance work against cold full recomputes;
/// both sides must pay the full cleansing cost for the ratio to mean
/// anything.
pub fn setup_uncached(scale: usize, anomaly_pct: f64, seed: u64) -> BenchEnv {
    build(scale, anomaly_pct, seed, 1, false)
}

fn build(scale: usize, anomaly_pct: f64, seed: u64, parallelism: usize, cache: bool) -> BenchEnv {
    let catalog = Arc::new(Catalog::new());
    let cfg = GenConfig {
        scale,
        anomaly_pct,
        seed,
        ..GenConfig::default()
    };
    let dataset = generate_into(&catalog, cfg).expect("generation cannot fail");
    dataset
        .materialize_missing_input(&catalog)
        .expect("missing-input materialization");
    let mut system = DeferredCleansingSystem::with_catalog(catalog);
    system.set_parallelism(parallelism);
    // The cleansed-sequence cache is on for every standard benchmark
    // environment. Each environment runs an identical query sequence, so
    // the hit/miss counters are deterministic and safe to gate on.
    if cache {
        system.enable_cleanse_cache(4096);
    }
    for n in 1..=5 {
        let app = format!("rules-{n}");
        for text in dataset.benchmark_rules(n) {
            system
                .define_rule(&app, &text)
                .unwrap_or_else(|e| panic!("defining rule for {app}: {e}"));
        }
    }
    BenchEnv { system, dataset }
}

/// Run one variant of a query under the application holding `n_rules` rules.
/// Returns `None` when the variant is infeasible (expanded for unbounded
/// rules).
pub fn run_variant(
    env: &BenchEnv,
    n_rules: usize,
    sql: &str,
    variant: Variant,
) -> Option<Measurement> {
    let app = format!("rules-{n_rules}");
    let to_measurement = |millis: f64, rows: usize, report: &dc_core::QueryReport| Measurement {
        variant: variant.label(),
        millis,
        result_rows: rows,
        rows_scanned: report.stats.rows_scanned,
        rows_sorted: report.stats.rows_sorted,
        sorts: report.stats.sorts_performed,
        sort_comparisons: report.stats.sort_comparisons,
        sorts_elided: report.stats.sorts_elided,
        merge_runs_used: report.stats.merge_runs_used,
        window_accumulator_ops: report.stats.window_accumulator_ops,
        join_probes: report.stats.join_probes,
        hash_ops: report.stats.hash_ops,
        hash_collisions: report.stats.hash_collisions,
        probe_memcmps: report.stats.probe_memcmps,
        key_bytes_encoded: report.stats.key_bytes_encoded,
        partitions: report.stats.partitions_executed,
        window_eval_ms: report.window_eval_nanos as f64 / 1e6,
        parallelism: report.parallelism,
        chosen: report.chosen.clone(),
        segments_total: report.stats.segments_total,
        segments_pruned: report.stats.segments_pruned,
        segments_scanned: report.stats.segments_scanned,
        cache_hits: report.stats.seq_cache_hits,
        cache_misses: report.stats.seq_cache_misses,
        cache_invalidations: report.stats.seq_cache_invalidations,
    };
    match variant {
        Variant::Dirty => {
            let start = Instant::now();
            let (batch, report) = env.system.query_dirty_with_report(sql).ok()?;
            let ms = start.elapsed().as_secs_f64() * 1e3;
            Some(to_measurement(ms, batch.num_rows(), &report))
        }
        other => {
            let strategy = match other {
                Variant::Naive => Strategy::Naive,
                Variant::Expanded => Strategy::Expanded,
                Variant::JoinBack => Strategy::JoinBack,
                Variant::Auto => Strategy::Auto,
                Variant::Dirty => unreachable!(),
            };
            let start = Instant::now();
            match env.system.query_with_strategy(&app, sql, strategy) {
                Ok((batch, report)) => {
                    let ms = start.elapsed().as_secs_f64() * 1e3;
                    Some(to_measurement(ms, batch.num_rows(), &report))
                }
                Err(_) => None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_and_run_smoke() {
        let env = setup(4, 10.0, 1);
        assert!(env.dataset.case_reads > 1000);
        let t1 = env.dataset.rtime_quantile(0.1);
        let sql = env.dataset.q1(t1);
        let dirty = run_variant(&env, 1, &sql, Variant::Dirty).unwrap();
        let qe = run_variant(&env, 1, &sql, Variant::Expanded).unwrap();
        let qj = run_variant(&env, 1, &sql, Variant::JoinBack).unwrap();
        let qn = run_variant(&env, 1, &sql, Variant::Naive).unwrap();
        // Rewrites agree with each other (and differ from dirty in general).
        assert_eq!(qe.result_rows, qj.result_rows);
        assert_eq!(qe.result_rows, qn.result_rows);
        // Naive scans at least as much as the expanded rewrite.
        assert!(qn.rows_scanned >= qe.rows_scanned);
        let _ = dirty;
    }

    #[test]
    fn five_rule_application_works() {
        let env = setup(3, 10.0, 2);
        let t2 = env.dataset.rtime_quantile(0.9);
        let sql = env.dataset.q2(t2, 0);
        let qj = run_variant(&env, 5, &sql, Variant::JoinBack).unwrap();
        let qn = run_variant(&env, 5, &sql, Variant::Naive).unwrap();
        assert_eq!(qj.result_rows, qn.result_rows);
        // Expanded is infeasible with the cycle rule enabled.
        assert!(run_variant(&env, 5, &sql, Variant::Expanded).is_none());
        assert!(run_variant(&env, 4, &sql, Variant::Expanded).is_none());
        assert!(run_variant(&env, 3, &sql, Variant::Expanded).is_some());
    }
}
