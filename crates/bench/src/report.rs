//! ASCII rendering of experiment results for the `repro` binary and
//! EXPERIMENTS.md.

use crate::experiments::{ExperimentRow, Table1Row};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render Table 1.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} | {:<58} | q2 context condition",
        "rule", "q1 context condition"
    );
    let _ = writeln!(out, "{}", "-".repeat(140));
    for r in rows {
        let fmt = |c: &Option<String>| c.clone().unwrap_or_else(|| "{} (infeasible)".into());
        let _ = writeln!(
            out,
            "{:<12} | {:<58} | {}",
            r.rule,
            fmt(&r.q1_condition),
            fmt(&r.q2_condition)
        );
    }
    out
}

/// Render a figure's measurements as a matrix: x-axis points as rows,
/// variants as columns (elapsed ms), plus a work-counter appendix.
pub fn render_figure(title: &str, rows: &[ExperimentRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    // x -> variant -> measurement
    let mut matrix: BTreeMap<String, BTreeMap<&str, &ExperimentRow>> = BTreeMap::new();
    let mut x_order: Vec<String> = Vec::new();
    for r in rows {
        if !x_order.contains(&r.x) {
            x_order.push(r.x.clone());
        }
        matrix.entry(r.x.clone()).or_default().insert(r.variant, r);
    }
    let variants = ["q", "q_e", "q_j", "q_n"];
    let _ = write!(out, "{:<10}", "x");
    for v in variants {
        let _ = write!(out, " | {v:>10}");
    }
    let _ = writeln!(out, " | winner(auto-cost)");
    let _ = writeln!(out, "{}", "-".repeat(70));
    for x in &x_order {
        let _ = write!(out, "{x:<10}");
        let per = &matrix[x];
        let mut best: Option<(&str, f64)> = None;
        for v in variants {
            match per.get(v).and_then(|r| r.measurement.as_ref()) {
                Some(m) => {
                    let _ = write!(out, " | {:>8.1}ms", m.millis);
                    if v != "q" && v != "q_n" && best.is_none_or(|(_, b)| m.millis < b) {
                        best = Some((v, m.millis));
                    }
                }
                None => {
                    let _ = write!(out, " | {:>10}", "n/a");
                }
            }
        }
        let _ = writeln!(out, " | {}", best.map(|(v, _)| v).unwrap_or("-"));
    }
    // Work counters.
    let _ = writeln!(out, "\n-- work counters (rows sorted / scanned / sorts) --");
    for x in &x_order {
        let per = &matrix[x];
        let _ = write!(out, "{x:<10}");
        for v in variants {
            match per.get(v).and_then(|r| r.measurement.as_ref()) {
                Some(m) => {
                    let _ = write!(
                        out,
                        " | {v}: {}/{}/{}",
                        m.rows_sorted, m.rows_scanned, m.sorts
                    );
                }
                None => {
                    let _ = write!(out, " | {v}: n/a");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Measurement;

    fn row(x: &str, variant: &'static str, ms: f64) -> ExperimentRow {
        ExperimentRow {
            x: x.into(),
            query: "q1",
            variant,
            measurement: Some(Measurement {
                variant,
                millis: ms,
                result_rows: 1,
                rows_scanned: 10,
                rows_sorted: 5,
                sorts: 1,
                sort_comparisons: 4,
                sorts_elided: 0,
                merge_runs_used: 0,
                window_accumulator_ops: 2,
                join_probes: 0,
                hash_ops: 0,
                hash_collisions: 0,
                probe_memcmps: 0,
                key_bytes_encoded: 0,
                partitions: 3,
                window_eval_ms: 0.1,
                parallelism: 1,
                chosen: "x".into(),
                segments_total: 0,
                segments_pruned: 0,
                segments_scanned: 0,
                cache_hits: 0,
                cache_misses: 0,
                cache_invalidations: 0,
            }),
        }
    }

    #[test]
    fn figure_rendering() {
        let rows = vec![
            row("1%", "q", 1.0),
            row("1%", "q_e", 2.0),
            row("1%", "q_j", 3.0),
            row("1%", "q_n", 9.0),
        ];
        let s = render_figure("Fig", &rows);
        assert!(s.contains("1%"));
        assert!(s.contains("9.0ms"));
        assert!(s.contains("| q_e"));
    }

    #[test]
    fn table1_rendering() {
        let rows = vec![Table1Row {
            rule: "cycle".into(),
            q1_condition: None,
            q2_condition: Some("(c.rtime >= 5)".into()),
        }];
        let s = render_table1(&rows);
        assert!(s.contains("infeasible"));
        assert!(s.contains("c.rtime"));
    }
}
