//! `repro service` — throughput of the concurrent snapshot query service.
//!
//! Not part of the paper (the 2006 evaluation is single-client); this
//! figure characterizes the PR-5 service layer: K client threads issuing
//! cleansed queries through [`QueryService`] while one ingest thread
//! publishes append epochs. Reported per worker count: wall clock,
//! queries/second, mean queue wait and execution time, and the final
//! epoch — demonstrating that readers never block on the writer.
//!
//! Wall-clock based and machine-dependent, so this figure is **not** in
//! the `all` list and is never gated by `bench-gate`.

use crate::harness::setup;
use dc_json::Json;
use dc_relational::batch::Batch;
use dc_service::{QueryRequest, QueryService, ServiceConfig};
use std::sync::Arc;
use std::time::Instant;

/// One measured point of the service figure.
#[derive(Debug, Clone)]
pub struct ServiceBenchRow {
    /// Worker-pool size (also the number of client threads).
    pub workers: usize,
    pub queries: u64,
    pub appends: u64,
    /// Queries answered by coalescing onto an identical concurrent
    /// execution (0 at one worker: coalescing needs overlap).
    pub coalesced: u64,
    pub wall_ms: f64,
    pub queries_per_sec: f64,
    pub mean_queue_wait_us: f64,
    pub mean_exec_us: f64,
    pub final_epoch: u64,
}

impl ServiceBenchRow {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("workers", self.workers)
            .set("queries", self.queries)
            .set("appends", self.appends)
            .set("coalesced", self.coalesced)
            .set("wall_ms", Json::Num(self.wall_ms))
            .set("queries_per_sec", Json::Num(self.queries_per_sec))
            .set("mean_queue_wait_us", Json::Num(self.mean_queue_wait_us))
            .set("mean_exec_us", Json::Num(self.mean_exec_us))
            .set("final_epoch", self.final_epoch)
    }

    pub fn render(&self) -> String {
        format!(
            "workers={:>2}  {:>4} queries + {:>2} appends in {:>8.1}ms  \
             ({:>7.1} q/s, {:>3} coalesced, queue {:>7.1}us, exec {:>8.1}us, epoch {})",
            self.workers,
            self.queries,
            self.appends,
            self.wall_ms,
            self.queries_per_sec,
            self.coalesced,
            self.mean_queue_wait_us,
            self.mean_exec_us,
            self.final_epoch
        )
    }
}

/// Measure the service at each worker count: `queries_per_client` cleansed
/// queries per client thread under the 3-rule application, with one ingest
/// thread publishing `appends` epochs concurrently.
pub fn service_throughput(scale: usize, seed: u64, workers_list: &[usize]) -> Vec<ServiceBenchRow> {
    let mut rows = Vec::new();
    for &workers in workers_list {
        rows.push(run_point(scale, seed, workers, 16, 8));
    }
    rows
}

fn run_point(
    scale: usize,
    seed: u64,
    workers: usize,
    queries_per_client: usize,
    appends: usize,
) -> ServiceBenchRow {
    let env = setup(scale, 10.0, seed);
    let t_low = env.dataset.rtime_quantile(0.10);
    let t_high = env.dataset.rtime_quantile(0.90);
    let pool = [env.dataset.q1(t_low), env.dataset.q2(t_high, 2)];

    // A small schema-consistent batch for the ingest thread, cut from the
    // generated reads themselves.
    let seed_batch = {
        let table = env.system.catalog().get("caser").expect("caser exists");
        let data = table.data();
        let rows: Vec<Vec<_>> = (0..5.min(data.num_rows())).map(|i| data.row(i)).collect();
        Batch::from_rows(data.schema().clone(), &rows).expect("append batch")
    };

    let svc = Arc::new(QueryService::start(
        env.system,
        ServiceConfig {
            workers,
            queue_capacity: 2 * workers + 4,
            ..ServiceConfig::default()
        },
    ));

    let start = Instant::now();
    let appender = {
        let svc = Arc::clone(&svc);
        let batch = seed_batch;
        std::thread::spawn(move || {
            for _ in 0..appends {
                svc.append("caser", batch.clone()).expect("append");
                std::thread::yield_now();
            }
        })
    };
    let clients: Vec<_> = (0..workers)
        .map(|c| {
            let svc = Arc::clone(&svc);
            let pool: Vec<String> = pool.to_vec();
            std::thread::spawn(move || {
                let mut wait_us = 0.0f64;
                let mut exec_us = 0.0f64;
                for q in 0..queries_per_client {
                    let sql = &pool[(c + q) % pool.len()];
                    let resp = svc
                        .execute(QueryRequest::new("rules-3", sql))
                        .expect("service query");
                    wait_us += resp.service.queue_wait.as_secs_f64() * 1e6;
                    exec_us += resp.service.exec_time.as_secs_f64() * 1e6;
                }
                (wait_us, exec_us)
            })
        })
        .collect();

    appender.join().expect("appender");
    let mut wait_us = 0.0;
    let mut exec_us = 0.0;
    for c in clients {
        let (w, e) = c.join().expect("client");
        wait_us += w;
        exec_us += e;
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let queries = (workers * queries_per_client) as u64;
    ServiceBenchRow {
        workers,
        queries,
        appends: appends as u64,
        coalesced: svc.counters().coalesced,
        wall_ms,
        queries_per_sec: queries as f64 / (wall_ms / 1e3),
        mean_queue_wait_us: wait_us / queries as f64,
        mean_exec_us: exec_us / queries as f64,
        final_epoch: svc.epoch(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_point_completes_and_publishes_all_epochs() {
        let row = run_point(2, 7, 2, 3, 4);
        assert_eq!(row.queries, 6);
        assert_eq!(row.final_epoch, 4);
        assert!(row.queries_per_sec > 0.0);
    }
}
