//! `repro service` — throughput of the concurrent snapshot query service.
//!
//! Not part of the paper (the 2006 evaluation is single-client); this
//! figure characterizes the PR-5 service layer: K client threads issuing
//! cleansed queries through [`QueryService`] while one ingest thread
//! publishes append epochs. Reported per worker count: wall clock,
//! queries/second, mean queue wait and execution time, and the final
//! epoch — demonstrating that readers never block on the writer.
//!
//! Wall-clock based and machine-dependent, so this figure is **not** in
//! the `all` list and is never gated by `bench-gate`.

use crate::harness::setup;
use dc_json::Json;
use dc_relational::batch::Batch;
use dc_service::{QueryRequest, QueryService, ServiceConfig, ShardConfig};
use std::sync::Arc;
use std::time::Instant;

/// One measured point of the service figure.
#[derive(Debug, Clone)]
pub struct ServiceBenchRow {
    /// Worker-pool size (also the number of client threads).
    pub workers: usize,
    pub queries: u64,
    pub appends: u64,
    /// Queries answered by coalescing onto an identical concurrent
    /// execution (0 at one worker: coalescing needs overlap).
    pub coalesced: u64,
    pub wall_ms: f64,
    pub queries_per_sec: f64,
    pub mean_queue_wait_us: f64,
    pub mean_exec_us: f64,
    pub final_epoch: u64,
}

impl ServiceBenchRow {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("workers", self.workers)
            .set("queries", self.queries)
            .set("appends", self.appends)
            .set("coalesced", self.coalesced)
            .set("wall_ms", Json::Num(self.wall_ms))
            .set("queries_per_sec", Json::Num(self.queries_per_sec))
            .set("mean_queue_wait_us", Json::Num(self.mean_queue_wait_us))
            .set("mean_exec_us", Json::Num(self.mean_exec_us))
            .set("final_epoch", self.final_epoch)
    }

    pub fn render(&self) -> String {
        format!(
            "workers={:>2}  {:>4} queries + {:>2} appends in {:>8.1}ms  \
             ({:>7.1} q/s, {:>3} coalesced, queue {:>7.1}us, exec {:>8.1}us, epoch {})",
            self.workers,
            self.queries,
            self.appends,
            self.wall_ms,
            self.queries_per_sec,
            self.coalesced,
            self.mean_queue_wait_us,
            self.mean_exec_us,
            self.final_epoch
        )
    }
}

/// Measure the service at each worker count: `queries_per_client` cleansed
/// queries per client thread under the 3-rule application, with one ingest
/// thread publishing `appends` epochs concurrently.
pub fn service_throughput(scale: usize, seed: u64, workers_list: &[usize]) -> Vec<ServiceBenchRow> {
    let mut rows = Vec::new();
    for &workers in workers_list {
        rows.push(run_point(scale, seed, workers, 16, 8));
    }
    rows
}

fn run_point(
    scale: usize,
    seed: u64,
    workers: usize,
    queries_per_client: usize,
    appends: usize,
) -> ServiceBenchRow {
    let env = setup(scale, 10.0, seed);
    let t_low = env.dataset.rtime_quantile(0.10);
    let t_high = env.dataset.rtime_quantile(0.90);
    let pool = [env.dataset.q1(t_low), env.dataset.q2(t_high, 2)];

    // A small schema-consistent batch for the ingest thread, cut from the
    // generated reads themselves.
    let seed_batch = {
        let table = env.system.catalog().get("caser").expect("caser exists");
        let data = table.data();
        let rows: Vec<Vec<_>> = (0..5.min(data.num_rows())).map(|i| data.row(i)).collect();
        Batch::from_rows(data.schema().clone(), &rows).expect("append batch")
    };

    let svc = Arc::new(QueryService::start(
        env.system,
        ServiceConfig {
            workers,
            queue_capacity: 2 * workers + 4,
            ..ServiceConfig::default()
        },
    ));

    let start = Instant::now();
    let appender = {
        let svc = Arc::clone(&svc);
        let batch = seed_batch;
        std::thread::spawn(move || {
            for _ in 0..appends {
                svc.append("caser", batch.clone()).expect("append");
                std::thread::yield_now();
            }
        })
    };
    let clients: Vec<_> = (0..workers)
        .map(|c| {
            let svc = Arc::clone(&svc);
            let pool: Vec<String> = pool.to_vec();
            std::thread::spawn(move || {
                let mut wait_us = 0.0f64;
                let mut exec_us = 0.0f64;
                for q in 0..queries_per_client {
                    let sql = &pool[(c + q) % pool.len()];
                    let resp = svc
                        .execute(QueryRequest::new("rules-3", sql))
                        .expect("service query");
                    wait_us += resp.service.queue_wait.as_secs_f64() * 1e6;
                    exec_us += resp.service.exec_time.as_secs_f64() * 1e6;
                }
                (wait_us, exec_us)
            })
        })
        .collect();

    appender.join().expect("appender");
    let mut wait_us = 0.0;
    let mut exec_us = 0.0;
    for c in clients {
        let (w, e) = c.join().expect("client");
        wait_us += w;
        exec_us += e;
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let queries = (workers * queries_per_client) as u64;
    ServiceBenchRow {
        workers,
        queries,
        appends: appends as u64,
        coalesced: svc.counters().coalesced,
        wall_ms,
        queries_per_sec: queries as f64 / (wall_ms / 1e3),
        mean_queue_wait_us: wait_us / queries as f64,
        mean_exec_us: exec_us / queries as f64,
        final_epoch: svc.epoch(),
    }
}

/// One row of the deterministic `sharded` figure: the same cleansed query
/// executed through the scatter-gather coordinator at one shard count.
/// Work counters are deterministic for a fixed (scale, seed, shards) — the
/// hash partitioner is process-stable and shard execution is exhaustive —
/// so `bench-gate` diffs them exactly; only `millis` is wall-clock.
#[derive(Debug, Clone)]
pub struct ShardedScatterRow {
    pub shards: usize,
    /// Query label (`q1`, `q2`).
    pub variant: &'static str,
    pub result_rows: u64,
    /// Partial rows the coordinator merged from shard executors
    /// (0 at one shard only when the query never scatters).
    pub shard_rows_merged: u64,
    pub segments_scanned: u64,
    pub sort_comparisons: u64,
    /// Hash-kernel work across shard executors plus the coordinator's
    /// partial-aggregate / DISTINCT merge.
    pub hash_ops: u64,
    pub millis: f64,
}

impl ShardedScatterRow {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("shards", self.shards)
            .set("variant", self.variant)
            .set("result_rows", self.result_rows)
            .set("shard_rows_merged", self.shard_rows_merged)
            .set("segments_scanned", self.segments_scanned)
            .set("sort_comparisons", self.sort_comparisons)
            .set("hash_ops", self.hash_ops)
            .set("millis", Json::Num(self.millis))
    }

    pub fn render(&self) -> String {
        format!(
            "shards={}  {:<3} {:>8.1}ms  rows={:>6} merged={:>6} segments={:>4} sort_cmp={:>8} hash_ops={:>8}",
            self.shards,
            self.variant,
            self.millis,
            self.result_rows,
            self.shard_rows_merged,
            self.segments_scanned,
            self.sort_comparisons,
            self.hash_ops
        )
    }
}

/// The deterministic sharded figure: run the Figure-7 query pair through a
/// scatter-gather service at each shard count (one worker, no concurrent
/// ingest, caches off) and record the coordinator's work counters.
pub fn sharded_scatter(scale: usize, seed: u64, shards_list: &[usize]) -> Vec<ShardedScatterRow> {
    let mut rows = Vec::new();
    for &shards in shards_list {
        let env = setup(scale, 10.0, seed);
        let t_low = env.dataset.rtime_quantile(0.10);
        let t_high = env.dataset.rtime_quantile(0.90);
        let pool = [
            ("q1", env.dataset.q1(t_low)),
            ("q2", env.dataset.q2(t_high, 2)),
        ];
        let svc = QueryService::start_sharded(
            env.system,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            ShardConfig::new(shards, "epc"),
        )
        .expect("sharded service");
        for (variant, sql) in &pool {
            let start = Instant::now();
            let resp = svc
                .execute(QueryRequest::new("rules-3", sql))
                .expect("sharded query");
            let stats = &resp.report.stats;
            rows.push(ShardedScatterRow {
                shards,
                variant,
                result_rows: resp.batch.num_rows() as u64,
                shard_rows_merged: stats.shard_rows_merged,
                segments_scanned: stats.segments_scanned,
                sort_comparisons: stats.sort_comparisons,
                hash_ops: stats.hash_ops,
                millis: start.elapsed().as_secs_f64() * 1e3,
            });
        }
    }
    rows
}

/// One point of the wall-clock shard-scaling sweep.
#[derive(Debug, Clone)]
pub struct ShardScalingRow {
    pub shards: usize,
    pub queries: u64,
    pub wall_ms: f64,
    pub queries_per_sec: f64,
}

impl ShardScalingRow {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("shards", self.shards)
            .set("queries", self.queries)
            .set("wall_ms", Json::Num(self.wall_ms))
            .set("queries_per_sec", Json::Num(self.queries_per_sec))
    }

    pub fn render(&self) -> String {
        format!(
            "shards={}  {:>4} queries in {:>8.1}ms  ({:>7.1} q/s)",
            self.shards, self.queries, self.wall_ms, self.queries_per_sec
        )
    }
}

/// Wall-clock q/s at each shard count: one client issuing `queries`
/// cleansed queries serially through the scatter-gather service (caches
/// off, no concurrent ingest), so throughput isolates exactly the shard
/// executors' parallel speedup. Machine-dependent and therefore never
/// gated by counters — the CI smoke run asserts a scaling *ratio*, which
/// only needs cores, not a calibrated machine.
///
/// The pool is deliberately **cleansing-dominated** (window work over the
/// partitioned fact table, no dimension joins): cleansing cost splits with
/// the shards, while a broadcast join's hash build repeats per shard —
/// queries like figure 7's q1/q2 measure that replication cost, not shard
/// scaling (the deterministic `sharded` figure tracks them instead).
pub fn shard_scaling(
    scale: usize,
    seed: u64,
    shards_list: &[usize],
    queries: usize,
) -> Vec<ShardScalingRow> {
    let mut rows = Vec::new();
    for &shards in shards_list {
        let env = setup(scale, 10.0, seed);
        let pool = [
            "select epc, count(*) as n, max(rtime) as last_seen from caser group by epc"
                .to_string(),
            "select biz_loc, count(*) as n from caser where rtime >= 0 \
             group by biz_loc order by biz_loc"
                .to_string(),
        ];
        let svc = QueryService::start_sharded(
            env.system,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
            ShardConfig::new(shards, "epc"),
        )
        .expect("sharded service");
        let start = Instant::now();
        for q in 0..queries {
            svc.execute(QueryRequest::new("rules-3", &pool[q % pool.len()]))
                .expect("sharded query");
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        rows.push(ShardScalingRow {
            shards,
            queries: queries as u64,
            wall_ms,
            queries_per_sec: queries as f64 / (wall_ms / 1e3),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_point_completes_and_publishes_all_epochs() {
        let row = run_point(2, 7, 2, 3, 4);
        assert_eq!(row.queries, 6);
        assert_eq!(row.final_epoch, 4);
        assert!(row.queries_per_sec > 0.0);
    }

    #[test]
    fn sharded_scatter_counters_are_deterministic_and_result_stable() {
        let a = sharded_scatter(2, 7, &[1, 2]);
        let b = sharded_scatter(2, 7, &[1, 2]);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.result_rows, y.result_rows);
            assert_eq!(x.shard_rows_merged, y.shard_rows_merged);
            assert_eq!(x.segments_scanned, y.segments_scanned);
            assert_eq!(x.sort_comparisons, y.sort_comparisons);
        }
        // Shard count never changes the answer.
        for (x, y) in a.iter().take(2).zip(a.iter().skip(2)) {
            assert_eq!(x.variant, y.variant);
            assert_eq!(x.result_rows, y.result_rows);
        }
        // The scattered run merged partial rows; the gate watches this.
        assert!(a.iter().skip(2).any(|r| r.shard_rows_merged > 0));
    }

    #[test]
    fn shard_scaling_produces_throughput_points() {
        let rows = shard_scaling(2, 7, &[1, 2], 2);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.queries_per_sec > 0.0));
    }
}
