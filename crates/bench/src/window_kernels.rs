//! Kernel-level ablation for the Φ_C hot path: naive per-row frame
//! recomputation vs the incremental sliding kernels, and run-aware merge
//! sort vs a from-scratch full sort.
//!
//! Unlike the figure experiments this does not go through SQL — it drives
//! [`WindowEval`] and [`sort_batch_runs`] directly so the two sides differ
//! *only* in the kernel under test. Work counters are deterministic; the
//! bench binary gates on them and reports wall-clock as colour.

use dc_relational::batch::{schema_ref, Batch};
use dc_relational::expr::Expr;
use dc_relational::schema::{Field, Schema};
use dc_relational::sort::{sort_batch_runs, SortKey};
use dc_relational::value::{DataType, Value};
use dc_relational::window::{Frame, FrameBound, WindowEval, WindowExpr, WindowFuncKind};
use std::time::Instant;

/// One frame width measured both ways over the same data.
#[derive(Debug, Clone)]
pub struct KernelPoint {
    pub width: usize,
    /// Accumulator ops of the incremental path (frame positions entering or
    /// leaving aggregate state) — frame-width independent by design.
    pub incremental_ops: u64,
    /// Frame rows visited by the naive path — grows linearly with width.
    pub naive_work: u64,
    pub incremental_ms: f64,
    pub naive_ms: f64,
}

#[derive(Debug, Clone)]
pub struct KernelAblation {
    pub rows: usize,
    pub partitions: usize,
    pub points: Vec<KernelPoint>,
}

impl KernelAblation {
    /// Counter growth of the incremental path from the narrowest to the
    /// widest measured frame. The acceptance bar is ≤ 1.2×; the naive
    /// path's equivalent ratio tracks the width ratio itself.
    pub fn incremental_growth(&self) -> f64 {
        let first = self.points.first().map_or(1, |p| p.incremental_ops);
        let last = self.points.last().map_or(1, |p| p.incremental_ops);
        last as f64 / first.max(1) as f64
    }
}

fn reads_like_batch(rows: usize, partitions: usize) -> Batch {
    let schema = schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Int),
        Field::new("v", DataType::Int),
    ]));
    let per = rows.div_ceil(partitions.max(1));
    // Deterministic pseudo-random values (no RNG dependency): a fixed
    // multiplicative hash of the row index.
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33;
            vec![Value::Int((i / per) as i64), Value::Int((h % 1000) as i64)]
        })
        .collect();
    Batch::from_rows(schema, &data).expect("bench batch")
}

fn bench_exprs(width: usize) -> Vec<WindowExpr> {
    let frame = Frame::rows(
        FrameBound::Preceding(width as i64 - 1),
        FrameBound::CurrentRow,
    );
    [
        (WindowFuncKind::Sum, "s"),
        (WindowFuncKind::Min, "m"),
        (WindowFuncKind::Count, "c"),
    ]
    .into_iter()
    .map(|(func, alias)| WindowExpr {
        func,
        arg: Some(Expr::col("v")),
        frame: frame.clone(),
        alias: alias.to_string(),
    })
    .collect()
}

/// Evaluate every partition with `eval`, returning (total work, elapsed ms,
/// per-expression outputs concatenated in partition order).
fn run_eval(
    ev: &WindowEval<'_>,
    eval: impl Fn(&WindowEval<'_>, (usize, usize)) -> (Vec<Vec<Value>>, u64),
) -> (u64, f64, Vec<Vec<Value>>) {
    let start = Instant::now();
    let mut work = 0u64;
    let mut outs: Vec<Vec<Value>> = vec![Vec::new(); ev.output_types().len()];
    for &range in ev.partitions() {
        let (cols, w) = eval(ev, range);
        work += w;
        for (acc, col) in outs.iter_mut().zip(cols) {
            acc.extend(col);
        }
    }
    (work, start.elapsed().as_secs_f64() * 1e3, outs)
}

/// Measure naive vs incremental window evaluation at each frame width over
/// one fixed dataset. Panics if the two paths ever disagree on a value —
/// the bench doubles as an end-to-end equivalence check.
pub fn kernel_ablation(rows: usize, partitions: usize, widths: &[usize]) -> KernelAblation {
    let batch = reads_like_batch(rows, partitions);
    let points = widths
        .iter()
        .map(|&width| {
            let exprs = bench_exprs(width);
            let ev = WindowEval::prepare(&batch, &[Expr::col("epc")], None, &exprs)
                .expect("prepare window eval");
            let (inc_ops, inc_ms, inc_out) =
                run_eval(&ev, |ev, r| ev.eval_partition(r).expect("incremental"));
            let (naive_work, naive_ms, naive_out) =
                run_eval(&ev, |ev, r| ev.eval_partition_naive(r).expect("naive"));
            assert_eq!(inc_out, naive_out, "kernel mismatch at width {width}");
            KernelPoint {
                width,
                incremental_ops: inc_ops,
                naive_work,
                incremental_ms: inc_ms,
                naive_ms,
            }
        })
        .collect();
    KernelAblation {
        rows,
        partitions,
        points,
    }
}

/// Run-aware sort vs full sort over the same segmented-append-shaped data.
#[derive(Debug, Clone)]
pub struct SortAblation {
    pub rows: usize,
    /// Pre-sorted runs merged (one per simulated segment append).
    pub runs: u64,
    /// Comparisons with segment-metadata run hints (no detection pass).
    pub hinted_comparisons: u64,
    /// Comparisons with data-driven run detection (detection + merge).
    pub detected_comparisons: u64,
    /// Comparisons a from-scratch stable sort of the same rows performs.
    pub full_sort_comparisons: u64,
    /// A fully-sorted input skipped its sort entirely.
    pub sorted_input_elided: bool,
}

/// Build `k` runs of `per_run` ascending keys with overlapping value ranges
/// — the shape of a table assembled from time-ordered segment appends —
/// then sort it three ways: hinted merge, detected merge, and a counted
/// from-scratch stable sort. Panics if the merge output ever differs from
/// the full sort's.
pub fn sort_ablation(per_run: usize, k: usize) -> SortAblation {
    let schema = schema_ref(Schema::new(vec![Field::new("t", DataType::Int)]));
    let mut keys: Vec<i64> = Vec::with_capacity(per_run * k);
    let mut run_starts = Vec::with_capacity(k);
    for run in 0..k {
        run_starts.push(keys.len());
        // Each run overlaps half of its neighbour's range.
        let base = (run * per_run / 2) as i64;
        keys.extend((0..per_run).map(|i| base + i as i64));
    }
    let rows: Vec<Vec<Value>> = keys.iter().map(|&t| vec![Value::Int(t)]).collect();
    let batch = Batch::from_rows(schema, &rows).expect("bench batch");
    let sort_keys = [SortKey::asc(Expr::col("t"))];

    let (hinted, h_eff) =
        sort_batch_runs(&batch, &sort_keys, Some(&run_starts)).expect("hinted sort");
    let (detected, d_eff) = sort_batch_runs(&batch, &sort_keys, None).expect("detected sort");

    // Counted reference: the full-sort path this engine would otherwise
    // take (stable comparison sort of row indices on the key).
    let mut full_sort_comparisons = 0u64;
    let mut perm: Vec<usize> = (0..keys.len()).collect();
    perm.sort_by(|&a, &b| {
        full_sort_comparisons += 1;
        keys[a].cmp(&keys[b])
    });
    let reference = batch.take(&perm);
    let same =
        |b: &Batch| (0..b.num_rows()).all(|i| b.column(0).value(i) == reference.column(0).value(i));
    assert!(same(&hinted) && same(&detected), "merge mismatch");

    let (_, sorted_eff) =
        sort_batch_runs(&reference, &sort_keys, None).expect("sort of sorted input");

    SortAblation {
        rows: keys.len(),
        runs: h_eff.runs,
        hinted_comparisons: h_eff.comparisons,
        detected_comparisons: d_eff.comparisons,
        full_sort_comparisons,
        sorted_input_elided: sorted_eff.elided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_ops_are_width_independent() {
        let ka = kernel_ablation(512, 4, &[16, 64]);
        assert!(ka.incremental_growth() <= 1.2, "{ka:?}");
        // The naive side really does pay per frame row.
        assert!(ka.points[1].naive_work > 2 * ka.points[0].naive_work);
    }

    #[test]
    fn merge_beats_full_sort_on_append_shaped_data() {
        let sa = sort_ablation(256, 4);
        assert_eq!(sa.runs, 4);
        assert!(sa.hinted_comparisons < sa.full_sort_comparisons);
        assert!(sa.hinted_comparisons < sa.detected_comparisons);
        assert!(sa.sorted_input_elided);
    }
}
