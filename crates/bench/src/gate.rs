//! Deterministic perf-regression gate over `BENCH_repro.json`.
//!
//! The repro harness separates *work counters* (rows scanned/sorted, window
//! work, join probes, …) from *wall-clock*. Counters are identical for a
//! given (scale, seed) at any parallelism, so CI can diff them exactly: a
//! counter that grows more than the tolerance against the committed
//! `BENCH_baseline.json` means a plan or rewrite silently got more
//! expensive. Wall-clock keys are compared too but never gate — machine
//! noise is reported, not failed on.

use dc_json::Json;

/// Counter growth tolerated before the gate fails (5%).
pub const DEFAULT_TOLERANCE: f64 = 0.05;

/// Keys whose numeric values are deterministic work counters — gated.
pub const GATING_KEYS: &[&str] = &[
    "result_rows",
    "rows_scanned",
    "rows_sorted",
    "sorts",
    "sort_comparisons",
    "window_accumulator_ops",
    "join_probes",
    "partitions",
    "eager_rows",
    "segments_scanned",
    "cache_misses",
    // Partial rows the scatter-gather coordinator pulled from shard
    // executors: growth means a shard stopped finishing its work locally
    // (e.g. an aggregate no longer lowers to per-shard partials).
    "shard_rows_merged",
    // Standing-query maintenance (the `stream` figure): growth in any of
    // these means incremental maintenance got more expensive — bigger
    // deltas, more rows re-cleansed, more cleansing work relative to a
    // cold recompute, or maintenance steps losing their incremental mode.
    "notifications",
    "delta_rows",
    "recleansed_rows",
    "fallbacks",
    "recompute_window_ops",
    "delta_work_pct",
    // Per-value hash computations spent by the normalized-key machinery
    // (join build/probe, GROUP BY, DISTINCT, coordinator merge): growth
    // means more rows or more key columns reached a hash operator.
    "hash_ops",
    // Durable-log recovery (the `recovery` figure): more replayed records
    // means the log got chattier for the same epochs; more loaded or
    // cold-opened segment files means lazy materialization or zone-map
    // pruning stopped skipping work.
    "log_records_replayed",
    "segments_loaded_lazy",
    "segments_opened_cold",
];

/// Deterministic keys that are reported when they drift but never gate:
/// their "good" direction is context-dependent (more pruning and more
/// cache hits are better), so the gate watches the costly siblings
/// (`segments_scanned`, `cache_misses`) instead.
pub const INFORMATIONAL_KEYS: &[&str] = &[
    "segments_total",
    "segments_pruned",
    "cache_hits",
    "cache_invalidations",
    // More elided sorts / more merged runs are generally good; the costly
    // sibling `sort_comparisons` is what gates.
    "sorts_elided",
    "merge_runs_used",
    // Streaming-pipeline observability: chunk counts depend on the chunk
    // size knob and avoided copies track filter selectivity — neither has a
    // single "bad" direction, so both report without gating.
    "batches_processed",
    "selection_avoided_copies",
    // Worker-sweep throughput: wall-clock derived, machine-dependent.
    "queries_per_sec",
    // Hash-machinery observability: collisions depend on data, memcmps
    // and encoded bytes track table sizes — the costly sibling that gates
    // is `hash_ops`.
    "hash_collisions",
    "probe_memcmps",
    "key_bytes_encoded",
    // More zone-refuted segment files is better; the costly sibling that
    // gates is `segments_opened_cold`.
    "segments_pruned_unopened",
];

/// Keys that must match exactly between baseline and current run —
/// comparing counters from different configurations is meaningless.
/// `shards` appears per-row in the sharded figure (rows are positional),
/// so a baseline row is only ever diffed against the same shard count.
/// `epochs_recovered` and `as_of_rows` are answer stability: recovering a
/// different epoch count or a different historical answer from the same
/// logs is a correctness bug, not a perf drift.
pub const EXACT_KEYS: &[&str] = &[
    "scale",
    "seed",
    "parallelism",
    "shards",
    "appends",
    "epochs_recovered",
    "as_of_rows",
];

/// Wall-clock keys: reported, never gating.
fn is_timing_key(key: &str) -> bool {
    key == "millis" || key.ends_with("_ms")
}

/// One gating counter that grew beyond tolerance.
#[derive(Debug, Clone)]
pub struct Regression {
    /// JSON path of the counter (`figure.rows[i].key`).
    pub path: String,
    /// The gated key that regressed.
    pub key: String,
    pub baseline: f64,
    pub current: f64,
    /// Tolerance the comparison ran with (fraction, e.g. 0.05).
    pub tolerance: f64,
}

impl Regression {
    /// Relative growth in percent; infinite when the baseline was zero.
    pub fn pct(&self) -> f64 {
        if self.baseline > 0.0 {
            (self.current / self.baseline - 1.0) * 100.0
        } else {
            f64::INFINITY
        }
    }
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pct = if self.baseline > 0.0 {
            format!("{:+.1}%", self.pct())
        } else {
            "was 0".to_string()
        };
        write!(
            f,
            "{}: {} -> {} ({pct}, tolerance {:.0}%)",
            self.path,
            self.baseline,
            self.current,
            self.tolerance * 100.0
        )
    }
}

/// Outcome of one baseline/current comparison.
#[derive(Debug, Default)]
pub struct GateReport {
    /// Gating counter increases beyond tolerance — each one fails the gate.
    pub regressions: Vec<Regression>,
    /// Structural problems (config mismatch, missing figures/keys, type
    /// changes) — each one fails the gate.
    pub errors: Vec<String>,
    /// Gating counters that *decreased* (informational).
    pub improvements: Vec<String>,
    /// Non-gating observations: string changes, new keys, timing drift.
    pub notes: Vec<String>,
    /// How many gating counter values were compared.
    pub counters_checked: usize,
    /// How many wall-clock values were compared (non-gating).
    pub timing_compared: usize,
}

impl GateReport {
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.errors.is_empty()
    }

    /// The regressions ranked worst first: by relative growth, then by
    /// absolute increase (so a zero-baseline jump outranks a small drift).
    pub fn ranked_regressions(&self) -> Vec<&Regression> {
        let mut ranked: Vec<&Regression> = self.regressions.iter().collect();
        ranked.sort_by(|a, b| {
            b.pct()
                .total_cmp(&a.pct())
                .then_with(|| (b.current - b.baseline).total_cmp(&(a.current - a.baseline)))
        });
        ranked
    }

    pub fn render(&self) -> String {
        let mut out = format!(
            "bench gate: {} work counters compared, {} wall-clock values (non-gating)\n",
            self.counters_checked, self.timing_compared
        );
        for line in &self.errors {
            out.push_str(&format!("error: {line}\n"));
        }
        for r in self.ranked_regressions() {
            out.push_str(&format!("regression: {r}\n"));
        }
        for line in &self.improvements {
            out.push_str(&format!("improved: {line}\n"));
        }
        for line in &self.notes {
            out.push_str(&format!("note: {line}\n"));
        }
        out.push_str(if self.passed() {
            "gate: PASS\n"
        } else {
            "gate: FAIL\n"
        });
        out
    }

    /// Markdown rendering for CI step summaries: verdict, then the worst
    /// regressions as a table, then structural errors.
    pub fn markdown_summary(&self) -> String {
        let mut out = format!(
            "### Bench gate: {}\n\n{} work counters compared, {} wall-clock values (non-gating).\n\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.counters_checked,
            self.timing_compared
        );
        if !self.regressions.is_empty() {
            out.push_str("Worst regressions first:\n\n");
            out.push_str("| counter | baseline | current | Δ |\n");
            out.push_str("|---|---:|---:|---:|\n");
            for r in self.ranked_regressions() {
                let pct = if r.baseline > 0.0 {
                    format!("{:+.1}%", r.pct())
                } else {
                    "was 0".to_string()
                };
                out.push_str(&format!(
                    "| `{}` | {} | {} | {pct} |\n",
                    r.path, r.baseline, r.current
                ));
            }
            out.push('\n');
        }
        if !self.errors.is_empty() {
            out.push_str("Errors:\n\n");
            for e in &self.errors {
                out.push_str(&format!("- {e}\n"));
            }
            out.push('\n');
        }
        out
    }
}

/// Compare a current `BENCH_repro.json` against a committed baseline.
///
/// Figures are matched by `name` (order-insensitive); within a figure the
/// row arrays are positional, since the harness emits them deterministically.
pub fn compare(baseline: &Json, current: &Json, tolerance: f64) -> GateReport {
    let mut rep = GateReport::default();

    for key in EXACT_KEYS {
        let b = baseline.get(key);
        let c = current.get(key);
        if b != c {
            rep.errors.push(format!(
                "config key '{key}' differs: baseline {} vs current {} \
                 (counters are only comparable for identical configs)",
                render_leaf(b),
                render_leaf(c)
            ));
        }
    }

    let base_figs = figures_by_name(baseline);
    let cur_figs = figures_by_name(current);
    for (name, base_fig) in &base_figs {
        match cur_figs.iter().find(|(n, _)| n == name) {
            Some((_, cur_fig)) => walk(name, None, base_fig, cur_fig, tolerance, &mut rep),
            None => rep
                .errors
                .push(format!("figure '{name}' missing from current run")),
        }
    }
    for (name, _) in &cur_figs {
        if !base_figs.iter().any(|(n, _)| n == name) {
            rep.notes.push(format!(
                "figure '{name}' is new in current run (not gated; refresh the baseline)"
            ));
        }
    }
    rep
}

fn figures_by_name(doc: &Json) -> Vec<(String, &Json)> {
    doc.get("figures")
        .and_then(Json::as_arr)
        .map(|figs| {
            figs.iter()
                .map(|f| {
                    let name = f
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or("<unnamed>")
                        .to_string();
                    (name, f)
                })
                .collect()
        })
        .unwrap_or_default()
}

fn walk(path: &str, key: Option<&str>, base: &Json, cur: &Json, tol: f64, rep: &mut GateReport) {
    match (base, cur) {
        (Json::Obj(members), Json::Obj(cur_members)) => {
            for (k, bv) in members {
                let child = format!("{path}.{k}");
                match cur.get(k) {
                    Some(cv) => walk(&child, Some(k), bv, cv, tol, rep),
                    None => rep
                        .errors
                        .push(format!("{child}: missing from current run")),
                }
            }
            for (k, _) in cur_members {
                if base.get(k).is_none() {
                    rep.notes
                        .push(format!("{path}.{k}: new key in current run (not gated)"));
                }
            }
        }
        (Json::Arr(bs), Json::Arr(cs)) => {
            if bs.len() != cs.len() {
                rep.errors.push(format!(
                    "{path}: {} entries in baseline vs {} in current",
                    bs.len(),
                    cs.len()
                ));
            }
            for (i, (bv, cv)) in bs.iter().zip(cs).enumerate() {
                walk(&format!("{path}[{i}]"), key, bv, cv, tol, rep);
            }
        }
        (Json::Num(b), Json::Num(c)) => compare_number(path, key, *b, *c, tol, rep),
        (Json::Str(b), Json::Str(c)) => {
            if b != c {
                rep.notes
                    .push(format!("{path}: '{b}' became '{c}' (not gated)"));
            }
        }
        _ => {
            if base != cur {
                rep.errors.push(format!(
                    "{path}: value kind changed ({} vs {})",
                    render_leaf(Some(base)),
                    render_leaf(Some(cur))
                ));
            }
        }
    }
}

fn compare_number(
    path: &str,
    key: Option<&str>,
    base: f64,
    cur: f64,
    tol: f64,
    rep: &mut GateReport,
) {
    let key = key.unwrap_or("");
    if is_timing_key(key) {
        rep.timing_compared += 1;
        return; // wall-clock: counted, never judged
    }
    if EXACT_KEYS.contains(&key) {
        if base != cur {
            rep.errors
                .push(format!("{path}: config value {base} became {cur}"));
        }
        return;
    }
    if GATING_KEYS.contains(&key) {
        rep.counters_checked += 1;
        let limit = base * (1.0 + tol);
        if cur > limit {
            rep.regressions.push(Regression {
                path: path.to_string(),
                key: key.to_string(),
                baseline: base,
                current: cur,
                tolerance: tol,
            });
        } else if cur < base {
            rep.improvements.push(format!("{path}: {base} -> {cur}"));
        }
        return;
    }
    if INFORMATIONAL_KEYS.contains(&key) {
        if base != cur {
            rep.notes.push(format!(
                "{path}: {base} -> {cur} (informational, not gated)"
            ));
        }
        return;
    }
    // Unclassified numeric key: a silent change here would dodge the gate,
    // so any drift is an error until the key is classified above.
    if base != cur {
        rep.errors.push(format!(
            "{path}: unclassified counter '{key}' changed {base} -> {cur} \
             (add it to GATING_KEYS or the timing set)"
        ));
    }
}

fn render_leaf(v: Option<&Json>) -> String {
    v.map_or_else(|| "<absent>".to_string(), Json::compact)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_json::parse;

    fn doc(rows_scanned: u64, millis: f64) -> Json {
        Json::obj()
            .set("scale", 2usize)
            .set("seed", 2006u64)
            .set("parallelism", 2usize)
            .set(
                "figures",
                Json::Arr(vec![Json::obj().set("name", "fig7a").set(
                    "rows",
                    Json::Arr(vec![Json::obj()
                        .set("variant", "q_e")
                        .set("rows_scanned", rows_scanned)
                        .set("millis", Json::Num(millis))]),
                )]),
            )
    }

    #[test]
    fn identical_runs_pass() {
        let rep = compare(&doc(1000, 12.0), &doc(1000, 99.0), DEFAULT_TOLERANCE);
        assert!(rep.passed(), "{}", rep.render());
        assert_eq!(rep.counters_checked, 1);
        assert_eq!(rep.timing_compared, 1);
        assert!(rep.render().contains("PASS"));
    }

    #[test]
    fn counter_regression_fails_but_small_growth_passes() {
        // +10% > 5% tolerance: fail.
        let rep = compare(&doc(1000, 12.0), &doc(1100, 12.0), DEFAULT_TOLERANCE);
        assert!(!rep.passed());
        assert_eq!(rep.regressions.len(), 1);
        assert!(rep.render().contains("FAIL"));
        // +4% within tolerance: pass.
        let rep = compare(&doc(1000, 12.0), &doc(1040, 12.0), DEFAULT_TOLERANCE);
        assert!(rep.passed(), "{}", rep.render());
    }

    #[test]
    fn improvement_is_informational() {
        let rep = compare(&doc(1000, 12.0), &doc(900, 12.0), DEFAULT_TOLERANCE);
        assert!(rep.passed());
        assert_eq!(rep.improvements.len(), 1);
    }

    #[test]
    fn config_mismatch_is_an_error() {
        let mut other = doc(1000, 12.0);
        if let Json::Obj(members) = &mut other {
            members[0].1 = Json::from(4usize); // scale
        }
        let rep = compare(&doc(1000, 12.0), &other, DEFAULT_TOLERANCE);
        assert!(!rep.passed());
        assert!(rep.errors.iter().any(|e| e.contains("scale")));
    }

    #[test]
    fn missing_figure_fails_and_new_figure_notes() {
        let empty = parse(r#"{"scale":2,"seed":2006,"parallelism":2,"figures":[]}"#).unwrap();
        let rep = compare(&doc(1000, 12.0), &empty, DEFAULT_TOLERANCE);
        assert!(!rep.passed());
        assert!(rep.errors.iter().any(|e| e.contains("fig7a")));

        let rep = compare(&empty, &doc(1000, 12.0), DEFAULT_TOLERANCE);
        assert!(rep.passed());
        assert!(rep.notes.iter().any(|n| n.contains("new in current")));
    }

    #[test]
    fn regression_from_zero_baseline_fails() {
        let base = doc(0, 12.0);
        let rep = compare(&base, &doc(5, 12.0), DEFAULT_TOLERANCE);
        assert!(!rep.passed());
    }

    #[test]
    fn unclassified_counter_drift_is_an_error() {
        let mk = |v: u64| {
            Json::obj()
                .set("scale", 2usize)
                .set("seed", 2006u64)
                .set("parallelism", 1usize)
                .set(
                    "figures",
                    Json::Arr(vec![Json::obj()
                        .set("name", "x")
                        .set("rows", Json::Arr(vec![Json::obj().set("mystery", v)]))]),
                )
        };
        let rep = compare(&mk(1), &mk(2), DEFAULT_TOLERANCE);
        assert!(!rep.passed());
        assert!(rep.errors.iter().any(|e| e.contains("mystery")));
        // unchanged unclassified keys are fine
        assert!(compare(&mk(1), &mk(1), DEFAULT_TOLERANCE).passed());
    }

    #[test]
    fn regressions_ranked_worst_first_and_rendered_as_markdown() {
        let mk = |scanned: u64, probes: u64| {
            Json::obj()
                .set("scale", 2usize)
                .set("seed", 2006u64)
                .set("parallelism", 1usize)
                .set(
                    "figures",
                    Json::Arr(vec![Json::obj().set("name", "fig7a").set(
                        "rows",
                        Json::Arr(vec![Json::obj()
                            .set("rows_scanned", scanned)
                            .set("join_probes", probes)]),
                    )]),
                )
        };
        // rows_scanned +10%, join_probes +100%: probes must rank first.
        let rep = compare(&mk(1000, 100), &mk(1100, 200), DEFAULT_TOLERANCE);
        assert!(!rep.passed());
        assert_eq!(rep.regressions.len(), 2);
        let ranked = rep.ranked_regressions();
        assert_eq!(ranked[0].key, "join_probes");
        assert_eq!(ranked[1].key, "rows_scanned");
        let render = rep.render();
        let probes_at = render.find("join_probes").unwrap();
        let scanned_at = render.find("rows_scanned").unwrap();
        assert!(probes_at < scanned_at, "{render}");
        // Old line format preserved.
        assert!(render.contains("100 -> 200 (+100.0%, tolerance 5%)"));

        let md = rep.markdown_summary();
        assert!(md.contains("### Bench gate: FAIL"));
        assert!(md.contains("| counter | baseline | current |"));
        assert!(md.contains("| +100.0% |"));
        assert!(compare(&mk(1, 1), &mk(1, 1), DEFAULT_TOLERANCE)
            .markdown_summary()
            .contains("PASS"));
    }

    #[test]
    fn informational_keys_note_but_never_gate() {
        let mk = |pruned: u64, hits: u64| {
            Json::obj()
                .set("scale", 2usize)
                .set("seed", 2006u64)
                .set("parallelism", 1usize)
                .set(
                    "figures",
                    Json::Arr(vec![Json::obj().set("name", "storage").set(
                        "rows",
                        Json::Arr(vec![Json::obj()
                            .set("segments_pruned", pruned)
                            .set("cache_hits", hits)]),
                    )]),
                )
        };
        // Drift in either direction is a note, not a failure.
        let rep = compare(&mk(9, 50), &mk(2, 80), DEFAULT_TOLERANCE);
        assert!(rep.passed(), "{}", rep.render());
        assert_eq!(rep.notes.len(), 2);
        assert!(rep.notes.iter().all(|n| n.contains("informational")));
        assert!(compare(&mk(9, 50), &mk(9, 50), DEFAULT_TOLERANCE)
            .notes
            .is_empty());
    }

    #[test]
    fn shard_count_mismatch_is_an_error_and_merge_counter_gates() {
        let mk = |shards: u64, merged: u64| {
            Json::obj()
                .set("scale", 2usize)
                .set("seed", 2006u64)
                .set("parallelism", 1usize)
                .set(
                    "figures",
                    Json::Arr(vec![Json::obj().set("name", "sharded").set(
                        "rows",
                        Json::Arr(vec![Json::obj()
                            .set("shards", shards)
                            .set("shard_rows_merged", merged)]),
                    )]),
                )
        };
        // Different shard count in the same row position: config error.
        let rep = compare(&mk(4, 100), &mk(2, 100), DEFAULT_TOLERANCE);
        assert!(!rep.passed());
        assert!(rep.errors.iter().any(|e| e.contains("shards")));
        // Merge-counter growth beyond tolerance gates.
        let rep = compare(&mk(4, 100), &mk(4, 150), DEFAULT_TOLERANCE);
        assert!(!rep.passed());
        assert_eq!(rep.regressions.len(), 1);
        assert_eq!(rep.regressions[0].key, "shard_rows_merged");
        // Identical runs pass.
        assert!(compare(&mk(4, 100), &mk(4, 100), DEFAULT_TOLERANCE).passed());
    }

    #[test]
    fn string_change_is_informational() {
        let mut other = doc(1000, 12.0);
        // flip variant q_e -> q_j
        let s = other.pretty().replace("q_e", "q_j");
        other = parse(&s).unwrap();
        let rep = compare(&doc(1000, 12.0), &other, DEFAULT_TOLERANCE);
        assert!(rep.passed());
        assert!(rep.notes.iter().any(|n| n.contains("q_j")));
    }
}
