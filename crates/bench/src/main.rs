//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [all|table1|fig7a|fig7d|fig8|fig9ab|fig9cd|plans|ablations]
//!       [--scale N] [--seed S] [--json]
//! ```

use dc_bench::experiments::{
    ablation_joinback, ablation_order_sharing, eager_vs_deferred, fig7_selectivity, fig9_dirty,
    fig9_rules, plans, table1, DEFAULT_SCALE, DEFAULT_SEED,
};
use dc_bench::report::{render_figure, render_table1};

struct Args {
    what: String,
    scale: usize,
    seed: u64,
    json: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        what: "all".to_string(),
        scale: DEFAULT_SCALE,
        seed: DEFAULT_SEED,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it.next().and_then(|v| v.parse().ok()).expect("--scale N");
            }
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--json" => args.json = true,
            other if !other.starts_with('-') => args.what = other.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn run_one(args: &Args, what: &str) {
    let selectivities = [0.01, 0.05, 0.10, 0.20, 0.30, 0.40];
    match what {
        "table1" => {
            let rows = table1(args.scale, args.seed);
            if args.json {
                println!("{}", serde_json::to_string_pretty(&rows).unwrap());
            } else {
                println!("== Table 1: expanded (context) conditions ==");
                println!("{}", render_table1(&rows));
            }
        }
        "fig7a" => {
            let rows = fig7_selectivity("q1", args.scale, args.seed, &selectivities);
            emit(args.json, "Figure 7(a): q1 vs selectivity (reader rule, db-10)", &rows);
        }
        "fig7d" => {
            let rows = fig7_selectivity("q2", args.scale, args.seed, &selectivities);
            emit(args.json, "Figure 7(d): q2 vs selectivity (reader rule, db-10)", &rows);
        }
        "fig8" => {
            let rows = fig7_selectivity("q2prime", args.scale, args.seed, &selectivities);
            emit(args.json, "Figure 8: q2' (uncorrelated predicate) vs selectivity", &rows);
        }
        "fig9ab" => {
            let rows = fig9_rules("q1", args.scale, args.seed);
            emit(args.json, "Figure 9(a): q1 vs number of rules (10% sel, db-10)", &rows);
            let rows = fig9_rules("q2", args.scale, args.seed);
            emit(args.json, "Figure 9(b): q2 vs number of rules (10% sel, db-10)", &rows);
        }
        "fig9cd" => {
            let rows = fig9_dirty("q1", args.scale, args.seed);
            emit(args.json, "Figure 9(c): q1 vs anomaly % (3 rules, 10% sel)", &rows);
            let rows = fig9_dirty("q2", args.scale, args.seed);
            emit(args.json, "Figure 9(d): q2 vs anomaly % (3 rules, 10% sel)", &rows);
        }
        "plans" => {
            for (label, text) in plans(args.scale, args.seed) {
                println!("== {label} ==\n{text}");
            }
        }
        "ablations" => {
            let (shared, unshared) = ablation_order_sharing(args.scale, args.seed);
            println!("== Ablation: order sharing (q1_e) ==");
            println!(
                "with sharing   : {:>8.1}ms  sorts={} rows_sorted={}",
                shared.millis, shared.sorts, shared.rows_sorted
            );
            println!(
                "without sharing: {:>8.1}ms  sorts={} rows_sorted={}",
                unshared.millis, unshared.sorts, unshared.rows_sorted
            );
            let (improved, plain) = ablation_joinback(args.scale, args.seed);
            println!("== Ablation: improved vs plain join-back (q1_j) ==");
            println!(
                "improved (ec on outer arm): {:>8.1}ms  rows_sorted={} rows_scanned={}",
                improved.millis, improved.rows_sorted, improved.rows_scanned
            );
            println!(
                "plain (no ec on outer arm): {:>8.1}ms  rows_sorted={} rows_scanned={}",
                plain.millis, plain.rows_sorted, plain.rows_scanned
            );
        }
        "eager" => {
            let c = eager_vs_deferred(args.scale, args.seed);
            println!("== Eager vs deferred (q1, 3 rules, 10% sel) ==");
            println!(
                "eager: materialize {:.1}ms once ({} rows), then {:.1}ms per query",
                c.materialize_ms, c.eager_rows, c.eager_query_ms
            );
            println!("deferred: {:.1}ms per query, nothing materialized", c.deferred_query_ms);
        }
        other => panic!("unknown experiment '{other}'"),
    }
}

fn main() {
    let args = parse_args();
    if args.what == "all" {
        for what in [
            "table1", "plans", "fig7a", "fig7d", "fig8", "fig9ab", "fig9cd", "ablations", "eager",
        ] {
            run_one(&args, what);
        }
    } else {
        run_one(&args, &args.what);
    }
}

fn emit(json: bool, title: &str, rows: &[dc_bench::experiments::ExperimentRow]) {
    if json {
        println!("{}", serde_json::to_string_pretty(rows).unwrap());
    } else {
        println!("{}", render_figure(title, rows));
    }
}
