//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [all|table1|fig7a|fig7d|fig8|fig9ab|fig9cd|storage|plans|ablations|eager|sharded|stream|recovery|service]
//!       [--scale N] [--seed S] [--threads N] [--workers A,B,..] [--shards A,B,..]
//!       [--out-dir DIR] [--json] [--explain]
//! ```
//!
//! `sharded` runs the Figure-7 query pair through the scatter-gather
//! coordinator at each `--shards` count and records the coordinator's
//! deterministic work counters (`shard_rows_merged`, `segments_scanned`,
//! `sort_comparisons`); it **is** part of `all` and gated by `bench-gate`.
//!
//! `stream` subscribes one standing query per incremental maintenance mode
//! and publishes an append-heavy suffix workload, comparing the scoped
//! maintenance cleansing work against cold full recomputes
//! (`delta_work_pct`). Deterministic, part of `all`, gated by `bench-gate`.
//!
//! `recovery` bootstraps a durable service, publishes append epochs, and
//! restarts from the logs alone, recording replayed records, lazily loaded
//! segment files, and zone-map pruning of a cold historical scan. Its work
//! counters are deterministic, so it **is** part of `all` and gated.
//!
//! `service` measures the concurrent `QueryService` (readers + live
//! append ingest), plus a wall-clock q/s sweep over `--shards` counts. It
//! is wall-clock-bound and intentionally **not** part of `all`, so the
//! deterministic bench gate never sees it.
//!
//! Besides the console rendering, every run writes `BENCH_repro.json` into
//! `--out-dir` (default `target/repro`, also the recovery scratch root) — a
//! machine-readable record of per-figure wall-clock, the deterministic work
//! counters of every measurement, and the parallelism used. `--threads N`
//! enables partition-parallel Φ_C cleansing: window wall-clock improves with
//! N while every work counter stays identical.
//!
//! `--explain` switches to EXPLAIN ANALYZE mode instead: it runs the
//! Figure-7 queries under the cost-based strategy, prints each one's
//! rewrite decision (chosen candidate, all cost estimates, derived
//! conditions) and executed physical plan with per-operator row counts,
//! and writes the machine-readable trees to `EXPLAIN_repro.json`.

use dc_bench::experiments::{
    ablation_joinback, ablation_order_sharing, eager_vs_deferred, explains, fig7_selectivity,
    fig9_dirty, fig9_rules, plans, storage_cache, table1, ExperimentRow, DEFAULT_SCALE,
    DEFAULT_SEED,
};
use dc_bench::report::{render_figure, render_table1};
use dc_json::Json;
use std::time::Instant;

struct Args {
    what: String,
    scale: usize,
    seed: u64,
    threads: usize,
    /// Worker-pool sizes swept by the `service` figure.
    workers: Vec<usize>,
    /// Shard counts swept by the `sharded` figure and the `service` q/s
    /// sweep.
    shards: Vec<usize>,
    /// Directory for machine-readable outputs and recovery scratch state.
    out_dir: std::path::PathBuf,
    json: bool,
    explain: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        what: "all".to_string(),
        scale: DEFAULT_SCALE,
        seed: DEFAULT_SEED,
        threads: 1,
        workers: vec![1, 2, 4],
        shards: vec![1, 2, 4],
        out_dir: std::path::PathBuf::from("target/repro"),
        json: false,
        explain: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it.next().and_then(|v| v.parse().ok()).expect("--scale N");
            }
            "--seed" => {
                args.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S");
            }
            "--threads" => {
                // The engine clamps parallelism to >= 1; clamp here too so the
                // BENCH_repro.json header agrees with the per-run reports.
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .map(|n: usize| n.max(1))
                    .expect("--threads N");
            }
            "--workers" => {
                // Comma-separated worker-pool sizes for the service sweep,
                // e.g. `--workers 1,2,4`. Zero-size pools are clamped to 1.
                let list = it.next().expect("--workers A,B,..");
                args.workers = list
                    .split(',')
                    .map(|v| v.trim().parse::<usize>().map(|n| n.max(1)))
                    .collect::<Result<_, _>>()
                    .expect("--workers takes comma-separated counts");
                assert!(
                    !args.workers.is_empty(),
                    "--workers takes at least one count"
                );
            }
            "--shards" => {
                // Comma-separated shard counts for the sharded figures,
                // e.g. `--shards 1,2,4`. Zero shards are clamped to 1.
                let list = it.next().expect("--shards A,B,..");
                args.shards = list
                    .split(',')
                    .map(|v| v.trim().parse::<usize>().map(|n| n.max(1)))
                    .collect::<Result<_, _>>()
                    .expect("--shards takes comma-separated counts");
                assert!(!args.shards.is_empty(), "--shards takes at least one count");
            }
            "--out-dir" => {
                args.out_dir = it
                    .next()
                    .map(std::path::PathBuf::from)
                    .expect("--out-dir DIR");
            }
            "--json" => args.json = true,
            "--explain" => args.explain = true,
            other if !other.starts_with('-') => args.what = other.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn rows_json(rows: &[ExperimentRow]) -> Json {
    Json::Arr(rows.iter().map(|r| r.to_json()).collect())
}

/// Run one experiment: print it, and return its machine-readable record(s)
/// for `BENCH_repro.json` (figure name → result rows).
fn run_one(args: &Args, what: &str) -> Vec<(String, Json)> {
    let selectivities = [0.01, 0.05, 0.10, 0.20, 0.30, 0.40];
    let emit = |title: &str, rows: &[ExperimentRow]| {
        if args.json {
            println!("{}", rows_json(rows).pretty());
        } else {
            println!("{}", render_figure(title, rows));
        }
    };
    match what {
        "table1" => {
            let rows = table1(args.scale, args.seed);
            let json = Json::Arr(rows.iter().map(|r| r.to_json()).collect());
            if args.json {
                println!("{}", json.pretty());
            } else {
                println!("== Table 1: expanded (context) conditions ==");
                println!("{}", render_table1(&rows));
            }
            vec![("table1".into(), json)]
        }
        "fig7a" => {
            let rows = fig7_selectivity("q1", args.scale, args.seed, &selectivities, args.threads);
            emit("Figure 7(a): q1 vs selectivity (reader rule, db-10)", &rows);
            vec![("fig7a".into(), rows_json(&rows))]
        }
        "fig7d" => {
            let rows = fig7_selectivity("q2", args.scale, args.seed, &selectivities, args.threads);
            emit("Figure 7(d): q2 vs selectivity (reader rule, db-10)", &rows);
            vec![("fig7d".into(), rows_json(&rows))]
        }
        "fig8" => {
            let rows = fig7_selectivity(
                "q2prime",
                args.scale,
                args.seed,
                &selectivities,
                args.threads,
            );
            emit(
                "Figure 8: q2' (uncorrelated predicate) vs selectivity",
                &rows,
            );
            vec![("fig8".into(), rows_json(&rows))]
        }
        "fig9ab" => {
            let a = fig9_rules("q1", args.scale, args.seed, args.threads);
            emit("Figure 9(a): q1 vs number of rules (10% sel, db-10)", &a);
            let b = fig9_rules("q2", args.scale, args.seed, args.threads);
            emit("Figure 9(b): q2 vs number of rules (10% sel, db-10)", &b);
            vec![
                ("fig9a".into(), rows_json(&a)),
                ("fig9b".into(), rows_json(&b)),
            ]
        }
        "fig9cd" => {
            let c = fig9_dirty("q1", args.scale, args.seed, args.threads);
            emit("Figure 9(c): q1 vs anomaly % (3 rules, 10% sel)", &c);
            let d = fig9_dirty("q2", args.scale, args.seed, args.threads);
            emit("Figure 9(d): q2 vs anomaly % (3 rules, 10% sel)", &d);
            vec![
                ("fig9c".into(), rows_json(&c)),
                ("fig9d".into(), rows_json(&d)),
            ]
        }
        "plans" => {
            let ps = plans(args.scale, args.seed);
            let mut arr = Vec::new();
            for (label, text) in &ps {
                println!("== {label} ==\n{text}");
                arr.push(
                    Json::obj()
                        .set("label", label.as_str())
                        .set("plan", text.as_str()),
                );
            }
            vec![("plans".into(), Json::Arr(arr))]
        }
        "ablations" => {
            let (shared, unshared) = ablation_order_sharing(args.scale, args.seed);
            println!("== Ablation: order sharing (q1_e) ==");
            println!(
                "with sharing   : {:>8.1}ms  sorts={} rows_sorted={}",
                shared.millis, shared.sorts, shared.rows_sorted
            );
            println!(
                "without sharing: {:>8.1}ms  sorts={} rows_sorted={}",
                unshared.millis, unshared.sorts, unshared.rows_sorted
            );
            let (improved, plain) = ablation_joinback(args.scale, args.seed);
            println!("== Ablation: improved vs plain join-back (q1_j) ==");
            println!(
                "improved (ec on outer arm): {:>8.1}ms  rows_sorted={} rows_scanned={}",
                improved.millis, improved.rows_sorted, improved.rows_scanned
            );
            println!(
                "plain (no ec on outer arm): {:>8.1}ms  rows_sorted={} rows_scanned={}",
                plain.millis, plain.rows_sorted, plain.rows_scanned
            );
            let json = Json::obj()
                .set("order_sharing_on", shared.to_json())
                .set("order_sharing_off", unshared.to_json())
                .set("joinback_improved", improved.to_json())
                .set("joinback_plain", plain.to_json());
            vec![("ablations".into(), json)]
        }
        "storage" => {
            let rows = storage_cache(args.scale, args.seed, args.threads);
            emit("Storage: zone-map pruning + cleansed-sequence cache", &rows);
            vec![("storage".into(), rows_json(&rows))]
        }
        "eager" => {
            let c = eager_vs_deferred(args.scale, args.seed);
            println!("== Eager vs deferred (q1, 3 rules, 10% sel) ==");
            println!(
                "eager: materialize {:.1}ms once ({} rows), then {:.1}ms per query",
                c.materialize_ms, c.eager_rows, c.eager_query_ms
            );
            println!(
                "deferred: {:.1}ms per query, nothing materialized",
                c.deferred_query_ms
            );
            let json = Json::obj()
                .set("materialize_ms", Json::Num(c.materialize_ms))
                .set("eager_rows", c.eager_rows)
                .set("eager_query_ms", Json::Num(c.eager_query_ms))
                .set("deferred_query_ms", Json::Num(c.deferred_query_ms));
            vec![("eager".into(), json)]
        }
        "sharded" => {
            let rows =
                dc_bench::service_bench::sharded_scatter(args.scale, args.seed, &args.shards);
            println!("== Sharded: scatter-gather coordinator work counters ==");
            for r in &rows {
                println!("{}", r.render());
            }
            let json = Json::Arr(rows.iter().map(|r| r.to_json()).collect());
            vec![("sharded".into(), json)]
        }
        "stream" => {
            let rows = dc_bench::stream_bench::stream_maintenance(args.scale, args.seed, 8);
            println!("== Stream: standing-query maintenance vs cold recompute ==");
            for r in &rows {
                println!("{}", r.render());
            }
            let json = Json::Arr(rows.iter().map(|r| r.to_json()).collect());
            vec![("stream".into(), json)]
        }
        "recovery" => {
            let scratch = args.out_dir.join("recovery-scratch");
            let rows = dc_bench::recovery_bench::recovery_figure(
                args.scale,
                args.seed,
                &[2, 4, 8],
                &scratch,
            );
            let _ = std::fs::remove_dir_all(&scratch);
            println!("== Recovery: durable log replay + time travel ==");
            for r in &rows {
                println!("{}", r.render());
            }
            let json = Json::Arr(rows.iter().map(|r| r.to_json()).collect());
            vec![("recovery".into(), json)]
        }
        "service" => {
            let rows = dc_bench::service_bench::service_throughput(
                args.scale.min(8),
                args.seed,
                &args.workers,
            );
            println!("== Service: concurrent snapshot queries + live ingest ==");
            for r in &rows {
                println!("{}", r.render());
            }
            let scaling = dc_bench::service_bench::shard_scaling(
                args.scale.min(8),
                args.seed,
                &args.shards,
                16,
            );
            println!("== Service: scatter-gather q/s vs shard count ==");
            for r in &scaling {
                println!("{}", r.render());
            }
            vec![
                (
                    "service".into(),
                    Json::Arr(rows.iter().map(|r| r.to_json()).collect()),
                ),
                (
                    "service_sharded".into(),
                    Json::Arr(scaling.iter().map(|r| r.to_json()).collect()),
                ),
            ]
        }
        other => panic!("unknown experiment '{other}'"),
    }
}

/// EXPLAIN ANALYZE mode: print the Figure-7 rewrite decisions and executed
/// plans, and write `EXPLAIN_repro.json`.
fn run_explain(args: &Args) {
    let reports = explains(args.scale, args.seed, args.threads);
    let mut arr = Vec::new();
    for (label, rep) in &reports {
        if args.json {
            println!("{}", rep.to_json().pretty());
        } else {
            println!("== EXPLAIN ANALYZE {label} ==\n{}", rep.text());
        }
        arr.push(
            Json::obj()
                .set("label", label.as_str())
                .set("report", rep.to_json()),
        );
    }
    let record = Json::obj()
        .set("scale", args.scale)
        .set("seed", args.seed)
        .set("parallelism", args.threads)
        .set("explains", Json::Arr(arr));
    write_record(args, "EXPLAIN_repro.json", &record);
}

/// Write one machine-readable record into `--out-dir` (created if absent).
fn write_record(args: &Args, name: &str, record: &Json) {
    if let Err(e) = std::fs::create_dir_all(&args.out_dir) {
        eprintln!("could not create {}: {e}", args.out_dir.display());
        return;
    }
    let path = args.out_dir.join(name);
    match std::fs::write(&path, record.pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn main() {
    let args = parse_args();
    if args.explain {
        run_explain(&args);
        return;
    }
    let whats: Vec<&str> = if args.what == "all" {
        vec![
            "table1",
            "plans",
            "fig7a",
            "fig7d",
            "fig8",
            "fig9ab",
            "fig9cd",
            "storage",
            "ablations",
            "eager",
            "sharded",
            "stream",
            "recovery",
        ]
    } else {
        vec![args.what.as_str()]
    };

    let mut figures = Vec::new();
    for what in whats {
        let start = Instant::now();
        let records = run_one(&args, what);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        for (name, rows) in records {
            figures.push(
                Json::obj()
                    .set("name", name)
                    .set("wall_clock_ms", Json::Num(wall_ms))
                    .set("rows", rows),
            );
        }
    }

    let record = Json::obj()
        .set("scale", args.scale)
        .set("seed", args.seed)
        .set("parallelism", args.threads)
        .set("figures", Json::Arr(figures));
    write_record(&args, "BENCH_repro.json", &record);
}
