//! Experiment drivers, one per table/figure of the paper.

use crate::harness::{run_variant, setup, setup_with_parallelism, BenchEnv, Measurement, Variant};
use dc_core::Strategy;
use dc_json::Json;
use dc_relational::sql::{parse_query, plan_query};
use dc_rewrite::{analyze, RewriteEngine};
use dc_rules::compile_rule;
use dc_sqlts::parse_rule;

/// Default scale for the repro binary: s pallets ⇒ ~s·50·30 case reads.
pub const DEFAULT_SCALE: usize = 40;
pub const DEFAULT_SEED: u64 = 2006;

/// The variants measured per point, in the paper's presentation order.
pub const VARIANTS: [Variant; 4] = [
    Variant::Dirty,
    Variant::Expanded,
    Variant::JoinBack,
    Variant::Naive,
];

/// One (x-axis point, variant) measurement row.
#[derive(Debug, Clone)]
pub struct ExperimentRow {
    /// x-axis label: selectivity %, rule count, or anomaly %.
    pub x: String,
    pub query: &'static str,
    pub measurement: Option<Measurement>,
    pub variant: &'static str,
}

impl ExperimentRow {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("x", self.x.as_str())
            .set("query", self.query)
            .set("variant", self.variant)
            .set(
                "measurement",
                self.measurement.as_ref().map(|m| m.to_json()),
            )
    }
}

/// Table 1: the derived expanded (context) conditions for q1/q2 per rule.
#[derive(Debug, Clone)]
pub struct Table1Row {
    pub rule: String,
    pub q1_condition: Option<String>,
    pub q2_condition: Option<String>,
}

impl Table1Row {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("rule", self.rule.as_str())
            .set("q1_condition", self.q1_condition.as_deref())
            .set("q2_condition", self.q2_condition.as_deref())
    }
}

/// Reproduce Table 1 against a generated dataset.
pub fn table1(scale: usize, seed: u64) -> Vec<Table1Row> {
    let env = setup(scale, 10.0, seed);
    let ds = &env.dataset;
    let t1 = ds.rtime_quantile(0.10);
    let t2 = ds.rtime_quantile(0.90);
    let engine = RewriteEngine::new();
    let q1 = ds.q1(t1);
    let q2 = ds.q2(t2, 2);

    let catalog = env.system.catalog();
    let shape_of = |sql: &str| {
        let plan = plan_query(&parse_query(sql).unwrap(), catalog).unwrap();
        analyze(&plan, "caser", catalog).unwrap()
    };
    let s1 = shape_of(&q1);
    let s2 = shape_of(&q2);

    // The five logical rules; the missing rule contributes two sub-rules
    // whose conditions are reported jointly.
    let rules = ds.benchmark_rules(5);
    let mut rows = Vec::new();
    for text in &rules {
        let def = parse_rule(text).unwrap();
        let template = compile_rule(&def).unwrap();
        let c1 = engine
            .rule_context_condition(&template, &s1)
            .map(|e| e.to_string());
        let c2 = engine
            .rule_context_condition(&template, &s2)
            .map(|e| e.to_string());
        rows.push(Table1Row {
            rule: def.name.clone(),
            q1_condition: c1,
            q2_condition: c2,
        });
    }
    rows
}

/// Figure 7(a)/(d) and Figure 8: vary the rtime-predicate selectivity with
/// the reader rule enabled, on db-10.
pub fn fig7_selectivity(
    which: &'static str, // "q1" | "q2" | "q2prime"
    scale: usize,
    seed: u64,
    selectivities: &[f64],
    threads: usize,
) -> Vec<ExperimentRow> {
    let env = setup_with_parallelism(scale, 10.0, seed, threads);
    let mut rows = Vec::new();
    for &sel in selectivities {
        let sql = query_at_selectivity(&env, which, sel);
        for v in VARIANTS {
            let m = run_variant(&env, 1, &sql, v);
            rows.push(ExperimentRow {
                x: format!("{:.0}%", sel * 100.0),
                query: which,
                variant: v.label(),
                measurement: m,
            });
        }
    }
    rows
}

fn query_at_selectivity(env: &BenchEnv, which: &str, sel: f64) -> String {
    let ds = &env.dataset;
    match which {
        // q1 selects rtime <= T1 (low quantile).
        "q1" => ds.q1(ds.rtime_quantile(sel)),
        // q2/q2' select rtime >= T2 (high quantile).
        "q2" => ds.q2(ds.rtime_quantile(1.0 - sel), 2),
        "q2prime" => ds.q2_prime(ds.rtime_quantile(1.0 - sel), 3),
        other => panic!("unknown query {other}"),
    }
}

/// Figure 9(a)/(b): vary the number of rules (1–5) at 10 % selectivity on
/// db-10.
pub fn fig9_rules(
    which: &'static str,
    scale: usize,
    seed: u64,
    threads: usize,
) -> Vec<ExperimentRow> {
    let env = setup_with_parallelism(scale, 10.0, seed, threads);
    let sql = query_at_selectivity(&env, which, 0.10);
    let mut rows = Vec::new();
    for n in 1..=5 {
        for v in VARIANTS {
            let m = run_variant(&env, n, &sql, v);
            rows.push(ExperimentRow {
                x: format!("{n} rules"),
                query: which,
                variant: v.label(),
                measurement: m,
            });
        }
    }
    rows
}

/// Figure 9(c)/(d): vary the anomaly percentage (10–40 %) with the first
/// three rules at 10 % selectivity.
pub fn fig9_dirty(
    which: &'static str,
    scale: usize,
    seed: u64,
    threads: usize,
) -> Vec<ExperimentRow> {
    let mut rows = Vec::new();
    for pct in [10.0, 20.0, 30.0, 40.0] {
        let env = setup_with_parallelism(scale, pct, seed, threads);
        let sql = query_at_selectivity(&env, which, 0.10);
        for v in VARIANTS {
            let m = run_variant(&env, 3, &sql, v);
            rows.push(ExperimentRow {
                x: format!("{pct:.0}%"),
                query: which,
                variant: v.label(),
                measurement: m,
            });
        }
    }
    rows
}

/// Figure 7(b,c,e,f,g): the execution plans of q1, q1_e, q2, q2_e, q2_j.
pub fn plans(scale: usize, seed: u64) -> Vec<(String, String)> {
    let env = setup(scale, 10.0, seed);
    let ds = &env.dataset;
    let q1 = ds.q1(ds.rtime_quantile(0.10));
    let q2 = ds.q2(ds.rtime_quantile(0.90), 2);
    let mut out = Vec::new();
    let dirty_plan = |sql: &str| {
        dc_relational::sql::plan_sql(sql, env.system.catalog())
            .unwrap()
            .display_indent()
    };
    out.push(("Fig 7(b): q1 (dirty)".to_string(), dirty_plan(&q1)));
    for (label, sql, strategy) in [
        ("Fig 7(c): q1_e", &q1, Strategy::Expanded),
        ("Fig 7(f): q2_e", &q2, Strategy::Expanded),
        ("Fig 7(g): q2_j", &q2, Strategy::JoinBack),
    ] {
        let rendered = env
            .system
            .explain("rules-1", sql, strategy)
            .unwrap_or_else(|e| format!("(infeasible: {e})"));
        out.push((label.to_string(), rendered));
    }
    out.push(("Fig 7(e): q2 (dirty)".to_string(), dirty_plan(&q2)));
    out
}

/// EXPLAIN ANALYZE of the Figure-7 queries (q1 and q2 at 10 % selectivity)
/// under the reader rule with the cost-based strategy: the rewrite decision
/// trace (chosen candidate, every cost estimate, derived conditions) and
/// the executed physical plan annotated with per-operator row counts.
pub fn explains(scale: usize, seed: u64, threads: usize) -> Vec<(String, dc_core::ExplainReport)> {
    let env = setup_with_parallelism(scale, 10.0, seed, threads);
    let ds = &env.dataset;
    let q1 = ds.q1(ds.rtime_quantile(0.10));
    let q2 = ds.q2(ds.rtime_quantile(0.90), 2);
    let mut out = Vec::new();
    for (label, sql) in [("Fig 7(a): q1 @ 10%", &q1), ("Fig 7(d): q2 @ 10%", &q2)] {
        let report = env
            .system
            .explain_report("rules-1", sql, Strategy::Auto, true)
            .unwrap_or_else(|e| panic!("explain analyze of {label}: {e}"));
        out.push((label.to_string(), report));
    }
    out
}

/// Ablation: order sharing on/off for the expanded rewrite of q1. Returns
/// (sorts with sharing, sorts without sharing) work counters.
pub fn ablation_order_sharing(scale: usize, seed: u64) -> (Measurement, Measurement) {
    use dc_relational::exec::Executor;
    use dc_relational::optimizer::{optimize, OptimizerConfig};

    let env = setup(scale, 10.0, seed);
    let ds = &env.dataset;
    let sql = ds.q1(ds.rtime_quantile(0.10));
    let catalog = env.system.catalog();
    let user_plan = plan_query(&parse_query(&sql).unwrap(), catalog).unwrap();
    let rules = env.system.rules().rules_for("rules-1");
    let engine = RewriteEngine::new();
    let rewritten = engine
        .rewrite_plan(&user_plan, &rules, catalog, Strategy::Expanded)
        .unwrap();

    // The engine returns an optimized plan; reset the order-sharing marks so
    // each configuration re-decides them.
    fn clear_presorted(plan: dc_relational::plan::LogicalPlan) -> dc_relational::plan::LogicalPlan {
        use dc_relational::plan::LogicalPlan as P;
        match plan {
            P::Window {
                input,
                partition_by,
                order_by,
                exprs,
                presorted: _,
            } => P::Window {
                input: Box::new(clear_presorted(*input)),
                partition_by,
                order_by,
                exprs,
                presorted: false,
            },
            P::Filter { input, predicate } => P::Filter {
                input: Box::new(clear_presorted(*input)),
                predicate,
            },
            P::Project { input, exprs } => P::Project {
                input: Box::new(clear_presorted(*input)),
                exprs,
            },
            P::Sort { input, keys } => P::Sort {
                input: Box::new(clear_presorted(*input)),
                keys,
            },
            P::Join {
                left,
                right,
                left_keys,
                right_keys,
                join_type,
            } => P::Join {
                left: Box::new(clear_presorted(*left)),
                right: Box::new(clear_presorted(*right)),
                left_keys,
                right_keys,
                join_type,
            },
            P::Aggregate {
                input,
                group_by,
                aggs,
            } => P::Aggregate {
                input: Box::new(clear_presorted(*input)),
                group_by,
                aggs,
            },
            P::Distinct { input } => P::Distinct {
                input: Box::new(clear_presorted(*input)),
            },
            P::Union { inputs } => P::Union {
                inputs: inputs.into_iter().map(clear_presorted).collect(),
            },
            P::Limit { input, fetch } => P::Limit {
                input: Box::new(clear_presorted(*input)),
                fetch,
            },
            P::SubqueryAlias { input, alias } => P::SubqueryAlias {
                input: Box::new(clear_presorted(*input)),
                alias,
            },
            scan @ P::Scan { .. } => scan,
        }
    }
    let unoptimized = clear_presorted(rewritten.plan.clone());

    let measure = |cfg: OptimizerConfig| {
        let plan = optimize(unoptimized.clone(), catalog, &cfg);
        let mut ex = Executor::new(catalog);
        let start = std::time::Instant::now();
        let batch = ex.execute(&plan).unwrap();
        Measurement {
            variant: "q_e",
            millis: start.elapsed().as_secs_f64() * 1e3,
            result_rows: batch.num_rows(),
            rows_scanned: ex.stats.rows_scanned,
            rows_sorted: ex.stats.rows_sorted,
            sorts: ex.stats.sorts_performed,
            sort_comparisons: ex.stats.sort_comparisons,
            sorts_elided: ex.stats.sorts_elided,
            merge_runs_used: ex.stats.merge_runs_used,
            window_accumulator_ops: ex.stats.window_accumulator_ops,
            join_probes: ex.stats.join_probes,
            hash_ops: ex.stats.hash_ops,
            hash_collisions: ex.stats.hash_collisions,
            probe_memcmps: ex.stats.probe_memcmps,
            key_bytes_encoded: ex.stats.key_bytes_encoded,
            partitions: ex.stats.partitions_executed,
            window_eval_ms: ex.window_eval_nanos as f64 / 1e6,
            parallelism: 1,
            chosen: rewritten.chosen.clone(),
            segments_total: ex.stats.segments_total,
            segments_pruned: ex.stats.segments_pruned,
            segments_scanned: ex.stats.segments_scanned,
            cache_hits: 0,
            cache_misses: 0,
            cache_invalidations: 0,
        }
    };
    let shared = measure(OptimizerConfig {
        enable_pushdown: true,
        enable_order_sharing: true,
    });
    let unshared = measure(OptimizerConfig {
        enable_pushdown: true,
        enable_order_sharing: false,
    });
    (shared, unshared)
}

/// Ablation: plain vs improved join-back (pushing ec into the outer arm) for
/// q1. Returns (improved, plain).
pub fn ablation_joinback(scale: usize, seed: u64) -> (Measurement, Measurement) {
    use dc_relational::exec::Executor;
    use dc_relational::optimizer::optimize_default;

    let env = setup(scale, 10.0, seed);
    let ds = &env.dataset;
    let sql = ds.q1(ds.rtime_quantile(0.10));
    let catalog = env.system.catalog();
    let user_plan = plan_query(&parse_query(&sql).unwrap(), catalog).unwrap();
    let rules = env.system.rules().rules_for("rules-1");
    let engine = RewriteEngine::new();

    let measure = |plan: &dc_relational::plan::LogicalPlan, label: String| {
        let plan = optimize_default(plan.clone(), catalog);
        let mut ex = Executor::new(catalog);
        let start = std::time::Instant::now();
        let batch = ex.execute(&plan).unwrap();
        Measurement {
            variant: "q_j",
            millis: start.elapsed().as_secs_f64() * 1e3,
            result_rows: batch.num_rows(),
            rows_scanned: ex.stats.rows_scanned,
            rows_sorted: ex.stats.rows_sorted,
            sorts: ex.stats.sorts_performed,
            sort_comparisons: ex.stats.sort_comparisons,
            sorts_elided: ex.stats.sorts_elided,
            merge_runs_used: ex.stats.merge_runs_used,
            window_accumulator_ops: ex.stats.window_accumulator_ops,
            join_probes: ex.stats.join_probes,
            hash_ops: ex.stats.hash_ops,
            hash_collisions: ex.stats.hash_collisions,
            probe_memcmps: ex.stats.probe_memcmps,
            key_bytes_encoded: ex.stats.key_bytes_encoded,
            partitions: ex.stats.partitions_executed,
            window_eval_ms: ex.window_eval_nanos as f64 / 1e6,
            parallelism: 1,
            chosen: label,
            segments_total: ex.stats.segments_total,
            segments_pruned: ex.stats.segments_pruned,
            segments_scanned: ex.stats.segments_scanned,
            cache_hits: 0,
            cache_misses: 0,
            cache_invalidations: 0,
        }
    };

    // Improved: the engine's join-back (uses ec on the outer arm, §5.3).
    let improved_plan = engine
        .rewrite_plan_opts(&user_plan, &rules, catalog, Strategy::JoinBack, true)
        .unwrap();
    let improved = measure(&improved_plan.plan, "improved join-back".into());

    // Plain: the same rewrite with the expanded condition withheld from the
    // outer arm — the paper's un-improved Q_j.
    let plain_plan = engine
        .rewrite_plan_opts(&user_plan, &rules, catalog, Strategy::JoinBack, false)
        .unwrap();
    let plain = measure(&plain_plan.plan, "plain join-back (no ec)".into());
    (improved, plain)
}

/// Storage subsystem demonstration. Four rows:
///
/// * `prune-epc` — a point query on one case EPC; caseR is loaded in
///   case order, so zone maps confine the scan to the few segments
///   holding that case (`segments_pruned > 0`).
/// * `cache-cold` / `cache-warm` — the q1 join-back twice; the second
///   run answers every cleansed sequence from the cache.
/// * `cache-append` — one read appended for a queried EPC; exactly that
///   sequence is invalidated and recleansed, the rest still hit.
pub fn storage_cache(scale: usize, seed: u64, threads: usize) -> Vec<ExperimentRow> {
    use dc_relational::batch::Batch;
    use dc_relational::value::Value;

    let env = setup_with_parallelism(scale, 10.0, seed, threads);
    let ds = &env.dataset;
    let mut rows = Vec::new();

    let epc = ds.case_epc_urn(0);
    let point = format!("select epc, rtime, biz_loc from caser where epc = '{epc}'");
    rows.push(ExperimentRow {
        x: "prune-epc".into(),
        query: "storage",
        variant: Variant::Dirty.label(),
        measurement: run_variant(&env, 1, &point, Variant::Dirty),
    });

    let t1 = ds.rtime_quantile(0.10);
    let q1 = ds.q1(t1);
    for x in ["cache-cold", "cache-warm"] {
        rows.push(ExperimentRow {
            x: x.into(),
            query: "storage",
            variant: Variant::JoinBack.label(),
            measurement: run_variant(&env, 1, &q1, Variant::JoinBack),
        });
    }

    // Append one read for an EPC the query cleanses, so its cached
    // sequence goes stale while every other sequence stays valid.
    let victim = env
        .system
        .query_dirty(&format!(
            "select epc from caser where rtime <= {t1} limit 1"
        ))
        .expect("probe query");
    let victim = victim.row(0)[0]
        .as_str()
        .expect("epc is a string")
        .to_string();
    let caser = env.system.catalog().get("caser").expect("caser exists");
    let extra = Batch::from_rows(
        caser.schema().clone(),
        &[vec![
            Value::str(victim.as_str()),
            Value::Int(t1),
            Value::str("rdr:appended"),
            Value::str("gln:appended"),
            Value::str("step000"),
        ]],
    )
    .expect("appended batch");
    env.system
        .catalog()
        .append("caser", extra)
        .expect("append to caser");
    rows.push(ExperimentRow {
        x: "cache-append".into(),
        query: "storage",
        variant: Variant::JoinBack.label(),
        measurement: run_variant(&env, 1, &q1, Variant::JoinBack),
    });
    rows
}

/// Eager vs deferred (§6.1: "the cost of eager cleansing should be
/// comparable to that of q"): one-time materialization cost, the per-query
/// cost on the eager copy, and the deferred per-query cost.
pub struct EagerComparison {
    pub materialize_ms: f64,
    pub eager_query_ms: f64,
    pub deferred_query_ms: f64,
    pub eager_rows: usize,
}

pub fn eager_vs_deferred(scale: usize, seed: u64) -> EagerComparison {
    let env = setup(scale, 10.0, seed);
    let ds = &env.dataset;
    let t1 = ds.rtime_quantile(0.10);

    let start = std::time::Instant::now();
    let eager_rows = env
        .system
        .materialize_cleansed("rules-3", "caser_clean")
        .unwrap();
    let materialize_ms = start.elapsed().as_secs_f64() * 1e3;

    // Same q1 against the eager copy (textual substitution of the table).
    let q1_eager = ds.q1(t1).replace("from caser ", "from caser_clean ");
    let start = std::time::Instant::now();
    let a = env.system.query_dirty(&q1_eager).unwrap();
    let eager_query_ms = start.elapsed().as_secs_f64() * 1e3;

    let deferred = run_variant(&env, 3, &ds.q1(t1), Variant::Auto).unwrap();
    // Both views agree, of course.
    let b = env
        .system
        .query_with_strategy("rules-3", &ds.q1(t1), Strategy::Auto)
        .unwrap()
        .0;
    assert_eq!(a.sorted_rows(), b.sorted_rows());

    EagerComparison {
        materialize_ms,
        eager_query_ms,
        deferred_query_ms: deferred.millis,
        eager_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        let rows = table1(3, 7);
        assert_eq!(rows.len(), 6); // 4 rules + missing r1/r2
        let by_name: std::collections::HashMap<&str, &Table1Row> =
            rows.iter().map(|r| (r.rule.as_str(), r)).collect();
        // Reader: bounded both ways.
        assert!(by_name["reader"].q1_condition.is_some());
        assert!(by_name["reader"].q2_condition.is_some());
        // Duplicate: feasible both ways (sound lower bound for q2).
        assert!(by_name["duplicate"].q1_condition.is_some());
        assert!(by_name["duplicate"].q2_condition.is_some());
        // Replacing: feasible both ways.
        assert!(by_name["replacing"].q1_condition.is_some());
        // Cycle: infeasible for both queries (Table 1: {}).
        assert!(by_name["cycle"].q1_condition.is_none());
        assert!(by_name["cycle"].q2_condition.is_none());
        // Missing r2: infeasible for q1, feasible for q2.
        assert!(by_name["missing_r2"].q1_condition.is_none());
        assert!(by_name["missing_r2"].q2_condition.is_some());
    }

    #[test]
    fn fig7_rows_complete() {
        let rows = fig7_selectivity("q1", 3, 7, &[0.05, 0.2], 1);
        assert_eq!(rows.len(), 8);
        // All four variants feasible for the reader rule.
        assert!(rows.iter().all(|r| r.measurement.is_some()));
        // Rewrites agree on result rows per selectivity.
        for sel in ["5%", "20%"] {
            let counts: Vec<usize> = rows
                .iter()
                .filter(|r| r.x == sel && r.variant != "q")
                .map(|r| r.measurement.as_ref().unwrap().result_rows)
                .collect();
            assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        }
    }

    #[test]
    fn explains_carry_trace_and_metrics() {
        let reports = explains(2, 3, 1);
        assert_eq!(reports.len(), 2);
        for (label, rep) in &reports {
            assert!(!rep.trace.candidates.is_empty(), "{label}: no candidates");
            let m = rep.metrics.as_ref().unwrap_or_else(|| panic!("{label}"));
            assert!(m.rows_out > 0 || rep.result_rows == Some(0), "{label}");
            let text = rep.text();
            assert!(text.contains("-- chosen:"), "{label}");
            assert!(text.contains("rows_out="), "{label}");
        }
    }

    #[test]
    fn plans_render() {
        let ps = plans(2, 3);
        assert_eq!(ps.len(), 5);
        for (label, text) in &ps {
            assert!(!text.is_empty(), "{label} empty");
        }
        // q1_e shares the cleansing sort with the dwell window.
        let q1e = &ps.iter().find(|(l, _)| l.contains("q1_e")).unwrap().1;
        assert!(q1e.contains("order shared"), "{q1e}");
    }

    #[test]
    fn ablation_order_sharing_shows_extra_sort() {
        let (shared, unshared) = ablation_order_sharing(2, 3);
        assert!(unshared.sorts > shared.sorts);
        assert_eq!(shared.result_rows, unshared.result_rows);
    }

    #[test]
    fn eager_comparison_consistent() {
        let c = eager_vs_deferred(3, 5);
        assert!(c.eager_rows > 0);
        assert!(c.materialize_ms > 0.0);
        // Querying the eager copy is at most as expensive as the deferred
        // query (it pays no cleansing at query time).
        assert!(c.eager_query_ms <= c.deferred_query_ms * 3.0);
    }

    #[test]
    fn storage_cache_rows_demonstrate_pruning_and_caching() {
        let rows = storage_cache(3, 7, 1);
        assert_eq!(rows.len(), 4);
        let by_x: std::collections::HashMap<&str, &Measurement> = rows
            .iter()
            .map(|r| (r.x.as_str(), r.measurement.as_ref().unwrap()))
            .collect();

        let prune = by_x["prune-epc"];
        assert!(
            prune.segments_total >= 2,
            "{} segments",
            prune.segments_total
        );
        assert!(prune.segments_pruned > 0);
        assert!(prune.segments_scanned < prune.segments_total);

        let cold = by_x["cache-cold"];
        assert!(cold.cache_misses > 0);
        assert_eq!(cold.cache_hits, 0);

        let warm = by_x["cache-warm"];
        assert!(warm.cache_hits > 0);
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.result_rows, cold.result_rows);

        let appended = by_x["cache-append"];
        assert!(appended.cache_invalidations >= 1);
        assert!(appended.cache_hits > 0, "unaffected sequences still hit");
    }

    #[test]
    fn ablation_joinback_scans_differ() {
        let (improved, plain) = ablation_joinback(2, 3);
        // The improved variant's outer arm fetches less data.
        assert!(improved.rows_sorted <= plain.rows_sorted);
    }
}
