//! `bench-gate` — fail CI when a deterministic work counter regresses.
//!
//! ```text
//! bench-gate [BASELINE] [CURRENT] [--tolerance PCT]
//! ```
//!
//! Defaults to `BENCH_baseline.json` (committed) vs
//! `target/repro/BENCH_repro.json` (the `repro` binary's default
//! `--out-dir`). Exits non-zero when any gated counter
//! grew beyond the tolerance or the two runs are not comparable. When
//! `$GITHUB_STEP_SUMMARY` is set, a markdown verdict — with the worst
//! regressions ranked first — is appended to it.

use dc_bench::gate::{compare, DEFAULT_TOLERANCE};
use std::io::Write;

fn load(path: &str) -> dc_json::Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench-gate: cannot read {path}: {e}"));
    dc_json::parse(&text).unwrap_or_else(|e| panic!("bench-gate: cannot parse {path}: {e}"))
}

fn main() {
    let mut baseline = "BENCH_baseline.json".to_string();
    let mut current = "target/repro/BENCH_repro.json".to_string();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut positional = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                let pct: f64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance PCT");
                tolerance = pct / 100.0;
            }
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => panic!("bench-gate: unknown flag {other}"),
        }
    }
    let mut positional = positional.into_iter();
    if let Some(p) = positional.next() {
        baseline = p;
    }
    if let Some(p) = positional.next() {
        current = p;
    }

    let report = compare(&load(&baseline), &load(&current), tolerance);
    print!(
        "comparing {current} against baseline {baseline}\n{}",
        report.render()
    );
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        let summary = if report.passed() {
            format!(
                "Bench gate: PASS — {} work counters compared against {baseline}.\n",
                report.counters_checked
            )
        } else {
            report.markdown_summary()
        };
        match std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
        {
            Ok(mut f) => {
                if let Err(e) = f.write_all(summary.as_bytes()) {
                    eprintln!("bench-gate: cannot write step summary: {e}");
                }
            }
            Err(e) => eprintln!("bench-gate: cannot open {path}: {e}"),
        }
    }
    if !report.passed() {
        std::process::exit(1);
    }
}
