//! Microbench for the vectorized hash machinery of
//! [`dc_relational::hash`]: batch key encoding + [`RawKeyTable`] lookups
//! behind join, GROUP BY aggregation, and DISTINCT, versus the retained
//! `Vec<Value>` oracle (`rowwise == true` on the same entry points).
//!
//! The interesting numbers are not wall-clock (printed as colour only)
//! but the deterministic [`HashStats`] counters and the encoder's
//! allocation accounting: the fixed-width encode path must do a
//! **constant number of allocations regardless of row count**, and probe
//! memcmps can never exceed key lookups plus counted collisions (a memcmp
//! happens only on a full 64-bit hash match, which is either the entry we
//! are looking for or a counted collision).
//!
//! [`RawKeyTable`]: dc_relational::hash::RawKeyTable
//! [`HashStats`]: dc_relational::hash::HashStats

use dc_relational::agg::{distinct_with, hash_aggregate_with, AggExpr, AggFunc};
use dc_relational::batch::{schema_ref, Batch};
use dc_relational::column::ColumnBuilder;
use dc_relational::expr::Expr;
use dc_relational::hash::{encode_keys, HashStats, NullKeys};
use dc_relational::join::{hash_join_with, JoinType};
use dc_relational::physical::QueryBudget;
use dc_relational::schema::{Field, Schema, SchemaRef};
use dc_relational::value::{DataType, Value};
use std::time::Instant;

/// One measured (operation, input size) point.
#[derive(Debug, Clone)]
pub struct HashKernelPoint {
    pub label: &'static str,
    /// Input rows fed to the operation (left + right for joins).
    pub rows: u64,
    /// Output rows (join matches / groups / distinct survivors).
    pub out_rows: u64,
    /// Key lookups against the table (build inserts + probe gets).
    pub lookups: u64,
    pub hash_ops: u64,
    pub hash_collisions: u64,
    pub probe_memcmps: u64,
    pub key_bytes_encoded: u64,
    /// Allocation events on the key-encode path; `u64::MAX` when the case
    /// does not expose an encoder (join/agg/distinct end-to-end cases).
    pub alloc_events: u64,
    pub vectorized_ms: f64,
    pub rowwise_ms: f64,
}

impl HashKernelPoint {
    /// Whether this point carries encoder allocation accounting.
    pub fn has_alloc_events(&self) -> bool {
        self.alloc_events != u64::MAX
    }
}

/// A deterministic xorshift generator, enough to shape the data without
/// pulling in a rand crate.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn fact_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("epc", DataType::Str),
        Field::new("w", DataType::Double),
    ]))
}

fn dim_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("dk", DataType::Int),
        Field::new("gln", DataType::Str),
    ]))
}

/// `rows` fact rows: `k` Int over `rows / 4` distinct values, `epc` Str
/// over 64 distinct tags, `w` Double.
fn fact_batch(rows: usize, seed: u64) -> Batch {
    let mut rng = Rng(seed | 1);
    let mut k = ColumnBuilder::new(DataType::Int, rows);
    let mut epc = ColumnBuilder::new(DataType::Str, rows);
    let mut w = ColumnBuilder::new(DataType::Double, rows);
    let spread = (rows / 4).max(1) as u64;
    for _ in 0..rows {
        k.push(&Value::Int((rng.next() % spread) as i64)).unwrap();
        epc.push(&Value::str(format!("urn:epc:{:04}", rng.next() % 64)))
            .unwrap();
        w.push(&Value::Double((rng.next() % 1_000_000) as f64 / 1e6))
            .unwrap();
    }
    Batch::new(fact_schema(), vec![k.finish(), epc.finish(), w.finish()]).expect("fact batch")
}

/// `rows / 8` dimension rows keyed to hit about half the fact keys.
fn dim_batch(rows: usize, seed: u64) -> Batch {
    let n = (rows / 8).max(1);
    let mut rng = Rng(seed | 1);
    let spread = (rows / 2).max(1) as u64;
    let mut dk = ColumnBuilder::new(DataType::Int, n);
    let mut gln = ColumnBuilder::new(DataType::Str, n);
    for _ in 0..n {
        dk.push(&Value::Int((rng.next() % spread) as i64)).unwrap();
        gln.push(&Value::str(format!("urn:epc:{:04}", rng.next() % 96)))
            .unwrap();
    }
    Batch::new(dim_schema(), vec![dk.finish(), gln.finish()]).expect("dim batch")
}

/// Time `op` over `iters` repetitions, returning (last result, total ms).
fn timed<T>(iters: usize, mut op: impl FnMut() -> T) -> (T, f64) {
    let t = Instant::now();
    let mut last = None;
    for _ in 0..iters {
        last = Some(op());
    }
    (
        last.expect("at least one iteration"),
        t.elapsed().as_secs_f64() * 1e3,
    )
}

/// Run the hash-machinery operations over `rows`-row inputs, `iters`
/// timed repetitions per measurement.
pub fn hash_kernel_ablation(rows: usize, iters: usize) -> Vec<HashKernelPoint> {
    let fact = fact_batch(rows, 0x5eed_2006);
    let dim = dim_batch(rows, 0x00d1_ce00);
    let budget = QueryBudget::unlimited();
    let mut points = Vec::new();

    // Encode-only: fixed-width (Int + Double) and var-width (Str) layouts.
    // The rowwise lane materializes the same keys as `Vec<Value>` rows —
    // the per-row boxing the normalized encoding replaces.
    for (label, cols) in [
        ("encode_fixed", vec![0usize, 2]),
        ("encode_var", vec![1usize]),
    ] {
        let key_cols: Vec<_> = cols.iter().map(|&c| fact.column(c).clone()).collect();
        let (enc, vectorized_ms) = timed(iters, || {
            let mut stats = HashStats::default();
            let enc = encode_keys(&key_cols, None, rows, NullKeys::Match, &mut stats).unwrap();
            (enc, stats)
        });
        let (_, rowwise_ms) = timed(iters, || {
            let keys: Vec<Vec<Value>> = (0..rows)
                .map(|i| cols.iter().map(|&c| fact.column(c).value(i)).collect())
                .collect();
            keys
        });
        let (enc, stats) = enc;
        points.push(HashKernelPoint {
            label,
            rows: rows as u64,
            out_rows: enc.rows() as u64,
            lookups: 0,
            hash_ops: stats.hash_ops,
            hash_collisions: stats.hash_collisions,
            probe_memcmps: stats.probe_memcmps,
            key_bytes_encoded: stats.key_bytes_encoded,
            alloc_events: enc.alloc_events(),
            vectorized_ms,
            rowwise_ms,
        });
    }

    // End-to-end consumers: both lanes run the same entry point, with
    // `rowwise` selecting the retained `Vec<Value>` oracle.
    type Run = Box<dyn Fn(bool) -> (u64, u64, HashStats)>;
    let join = |left_keys: Vec<Expr>, right_keys: Vec<Expr>| -> Run {
        let (fact, dim, budget) = (fact.clone(), dim.clone(), budget.clone());
        Box::new(move |rowwise| {
            let (out, work) = hash_join_with(
                &fact,
                &dim,
                &left_keys,
                &right_keys,
                JoinType::Inner,
                &budget,
                rowwise,
            )
            .unwrap();
            let lookups = dim.num_rows() as u64 + work.probes;
            (out.num_rows() as u64, lookups, work.hash)
        })
    };
    let cases: Vec<(&'static str, u64, Run)> = vec![
        (
            "join_int",
            (fact.num_rows() + dim.num_rows()) as u64,
            join(vec![Expr::col("k")], vec![Expr::col("dk")]),
        ),
        (
            "join_str",
            (fact.num_rows() + dim.num_rows()) as u64,
            join(vec![Expr::col("epc")], vec![Expr::col("gln")]),
        ),
        ("group_by_str", fact.num_rows() as u64, {
            let fact = fact.clone();
            Box::new(move |rowwise| {
                let mut stats = HashStats::default();
                let out = hash_aggregate_with(
                    &fact,
                    &[(Expr::col("epc"), "epc".into())],
                    &[
                        AggExpr {
                            func: AggFunc::CountStar,
                            alias: "n".into(),
                        },
                        AggExpr {
                            func: AggFunc::Sum(Expr::col("w")),
                            alias: "s".into(),
                        },
                    ],
                    rowwise,
                    &mut stats,
                )
                .unwrap();
                (out.num_rows() as u64, fact.num_rows() as u64, stats)
            })
        }),
        ("distinct", fact.num_rows() as u64, {
            let fact = fact.clone();
            Box::new(move |rowwise| {
                let mut stats = HashStats::default();
                let out = distinct_with(&fact, rowwise, &mut stats).unwrap();
                (out.num_rows() as u64, fact.num_rows() as u64, stats)
            })
        }),
    ];
    for (label, rows_in, run) in cases {
        let (vec_out, vectorized_ms) = timed(iters, || run(false));
        let (row_out, rowwise_ms) = timed(iters, || run(true));
        assert_eq!(
            vec_out.0, row_out.0,
            "{label}: vectorized and rowwise output row counts diverge"
        );
        let (out_rows, lookups, stats) = vec_out;
        points.push(HashKernelPoint {
            label,
            rows: rows_in,
            out_rows,
            lookups,
            hash_ops: stats.hash_ops,
            hash_collisions: stats.hash_collisions,
            probe_memcmps: stats.probe_memcmps,
            key_bytes_encoded: stats.key_bytes_encoded,
            alloc_events: u64::MAX,
            vectorized_ms,
            rowwise_ms,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_encode_allocations_are_constant_in_row_count() {
        let small = hash_kernel_ablation(512, 1);
        let large = hash_kernel_ablation(4_096, 1);
        let alloc = |pts: &[HashKernelPoint]| {
            pts.iter()
                .find(|p| p.label == "encode_fixed")
                .expect("encode_fixed point")
                .alloc_events
        };
        assert_eq!(
            alloc(&small),
            alloc(&large),
            "fixed-width encode allocations must not scale with rows"
        );
        assert!(alloc(&large) <= 4);
    }

    #[test]
    fn probe_memcmps_bounded_by_lookups_plus_collisions() {
        for p in hash_kernel_ablation(2_048, 1) {
            if p.lookups == 0 {
                continue; // encode-only points never probe
            }
            assert!(
                p.probe_memcmps <= p.lookups + p.hash_collisions,
                "{}: {} memcmps > {} lookups + {} collisions",
                p.label,
                p.probe_memcmps,
                p.lookups,
                p.hash_collisions
            );
            assert!(p.hash_ops > 0, "{}: hash path did not engage", p.label);
        }
    }
}
