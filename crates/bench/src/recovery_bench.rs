//! `repro recovery` — durable-log recovery and time travel.
//!
//! Not part of the paper (the 2006 evaluation has no durability story);
//! this figure characterizes the durable segment log: bootstrap a durable
//! service from the generated workload, publish `appends` epochs, drop the
//! process state, and recover from the logs alone. Reported per append
//! count: the replayed record count, epochs restored, segment files
//! decoded lazily (recovery + one `AS OF` midpoint query), and a cold
//! zone-map scan straight off the recovered log showing how many segment
//! files a selective predicate opens versus refutes without a read.
//!
//! Everything except `recover_ms` is deterministic for a fixed
//! (scale, seed, appends), so `bench-gate` watches the work counters.

use crate::harness::setup;
use dc_core::durable::{recover_shard, SegmentStore};
use dc_json::Json;
use dc_log::LogDir;
use dc_relational::batch::Batch;
use dc_relational::prelude::Value;
use dc_service::{DurableOptions, QueryRequest, QueryService, ServiceConfig};
use dc_storage::{ZoneBound, ZonePredicate};
use std::path::Path;
use std::time::Instant;

/// One measured point of the recovery figure.
#[derive(Debug, Clone)]
pub struct RecoveryBenchRow {
    /// Epochs published after bootstrap (each one global append).
    pub appends: u64,
    /// Global epochs restored by recovery (bootstrap + appends).
    pub epochs_recovered: u64,
    /// Log records replayed across the manifest and the shard log.
    pub log_records_replayed: u64,
    /// Segment files decoded by recovery plus the midpoint `AS OF` query.
    pub segments_loaded_lazy: u64,
    /// caser segment files a cold `rtime >= p90` scan actually opened.
    pub segments_opened_cold: u64,
    /// caser segment files that scan refuted from logged zone maps alone.
    pub segments_pruned_unopened: u64,
    /// Rows of the cleansed midpoint `AS OF` query (answer stability).
    pub as_of_rows: u64,
    /// Wall clock of `QueryService::recover` (machine-dependent).
    pub recover_ms: f64,
}

impl RecoveryBenchRow {
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("appends", self.appends)
            .set("epochs_recovered", self.epochs_recovered)
            .set("log_records_replayed", self.log_records_replayed)
            .set("segments_loaded_lazy", self.segments_loaded_lazy)
            .set("segments_opened_cold", self.segments_opened_cold)
            .set("segments_pruned_unopened", self.segments_pruned_unopened)
            .set("as_of_rows", self.as_of_rows)
            .set("recover_ms", Json::Num(self.recover_ms))
    }

    pub fn render(&self) -> String {
        format!(
            "appends={:>2}  recovered {:>2} epochs from {:>4} records in {:>7.1}ms  \
             loaded={:>4} cold_open={:>3} pruned={:>3} as_of_rows={:>5}",
            self.appends,
            self.epochs_recovered,
            self.log_records_replayed,
            self.recover_ms,
            self.segments_loaded_lazy,
            self.segments_opened_cold,
            self.segments_pruned_unopened,
            self.as_of_rows
        )
    }
}

/// The recovery figure: one durable bootstrap + crash-free restart per
/// append count, with scratch directories rooted under `scratch`.
pub fn recovery_figure(
    scale: usize,
    seed: u64,
    appends_list: &[usize],
    scratch: &Path,
) -> Vec<RecoveryBenchRow> {
    appends_list
        .iter()
        .map(|&appends| run_point(scale, seed, appends, scratch))
        .collect()
}

fn run_point(scale: usize, seed: u64, appends: usize, scratch: &Path) -> RecoveryBenchRow {
    let dir = scratch.join(format!("recovery-s{scale}-a{appends}"));
    let _ = std::fs::remove_dir_all(&dir);
    let env = setup(scale, 10.0, seed);
    let t_low = env.dataset.rtime_quantile(0.10);
    let t_high = env.dataset.rtime_quantile(0.90);
    let q1 = env.dataset.q1(t_low);

    // A small schema-consistent batch for the append epochs, cut from the
    // generated reads themselves.
    let seed_batch = {
        let table = env.system.catalog().get("caser").expect("caser exists");
        let data = table.data();
        let rows: Vec<Vec<_>> = (0..5.min(data.num_rows())).map(|i| data.row(i)).collect();
        Batch::from_rows(data.schema().clone(), &rows).expect("append batch")
    };

    let config = || ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    };
    let svc = QueryService::start_durable(env.system, config(), DurableOptions::new(&dir))
        .expect("durable service");
    for _ in 0..appends {
        svc.append("caser", seed_batch.clone()).expect("append");
    }
    drop(svc);

    let start = Instant::now();
    let svc = QueryService::recover(DurableOptions::new(&dir), config()).expect("recover");
    let recover_ms = start.elapsed().as_secs_f64() * 1e3;

    // Time travel to the midpoint epoch materializes one historical
    // snapshot on top of the live catalog recovery already loaded.
    let mid = appends as u64 / 2;
    let resp = svc
        .query_as_of(&QueryRequest::new("rules-3", &q1), mid)
        .expect("as-of query");
    let as_of_rows = resp.batch.num_rows() as u64;
    let stats = svc.durable_stats().expect("durable stats");
    drop(svc);

    // Cold zone-map scan straight off the recovered shard log: only the
    // caser segment files whose logged zone maps admit `rtime >= p90`
    // are opened; the rest are refuted without a read.
    let shard = LogDir::create(dir.join("shard-0")).expect("shard dir");
    let rec = recover_shard(&shard).expect("shard recovery");
    let caser: Vec<_> = rec
        .segments
        .iter()
        .filter(|e| e.table == "caser")
        .cloned()
        .collect();
    let store = SegmentStore::new(shard);
    let pred = ZonePredicate::range(
        1,
        ZoneBound::Inclusive(Value::Int(t_high)),
        ZoneBound::Unbounded,
    );
    let opened = store.open_pruned(&caser, &[pred]).expect("pruned open");

    let row = RecoveryBenchRow {
        appends: appends as u64,
        epochs_recovered: stats.epochs_recovered,
        log_records_replayed: stats.log_records_replayed,
        segments_loaded_lazy: stats.segments_loaded_lazy,
        segments_opened_cold: opened.len() as u64,
        segments_pruned_unopened: store.segments_pruned(),
        as_of_rows,
        recover_ms,
    };
    let _ = std::fs::remove_dir_all(&dir);
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_counters_are_deterministic_and_prune() {
        let scratch = std::env::temp_dir().join(format!("dc-bench-rec-{}", std::process::id()));
        let a = recovery_figure(2, 7, &[2, 4], &scratch);
        let b = recovery_figure(2, 7, &[2, 4], &scratch);
        let _ = std::fs::remove_dir_all(&scratch);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.appends + 1, x.epochs_recovered);
            assert_eq!(x.epochs_recovered, y.epochs_recovered);
            assert_eq!(x.log_records_replayed, y.log_records_replayed);
            assert_eq!(x.segments_loaded_lazy, y.segments_loaded_lazy);
            assert_eq!(x.segments_opened_cold, y.segments_opened_cold);
            assert_eq!(x.segments_pruned_unopened, y.segments_pruned_unopened);
            assert_eq!(x.as_of_rows, y.as_of_rows);
        }
        // More appends replay more records, and the selective cold scan
        // must refute at least one file from zone maps alone.
        assert!(a[1].log_records_replayed > a[0].log_records_replayed);
        assert!(a.iter().all(|r| r.segments_pruned_unopened > 0));
    }
}
