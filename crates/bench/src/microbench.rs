//! A small wall-clock micro-benchmark runner used by the `benches/`
//! binaries (the offline build has no criterion; `harness = false` bench
//! targets drive this instead).
//!
//! Each case warms up, runs a bounded number of timed iterations, and prints
//! min / median / max per-iteration wall-clock.

use std::time::{Duration, Instant};

/// A named group of benchmark cases with shared run settings.
pub struct BenchGroup {
    name: String,
    /// Upper bound on timed iterations per case.
    pub sample_size: usize,
    /// Warm-up budget per case.
    pub warm_up_time: Duration,
    /// Measurement budget per case (stop early once exhausted).
    pub measurement_time: Duration,
}

impl BenchGroup {
    pub fn new(name: &str) -> Self {
        BenchGroup {
            name: name.to_string(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Run one case: warm up, then time up to `sample_size` iterations or
    /// until the measurement budget is used, whichever comes first.
    pub fn case<R>(&self, id: &str, mut f: impl FnMut() -> R) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            std::hint::black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time;
        while samples.len() < self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            samples.push(start.elapsed());
            if Instant::now() >= deadline && !samples.is_empty() {
                break;
            }
        }
        samples.sort_unstable();
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        println!(
            "{}/{id:<40} n={:<3} min={:>9.3}ms median={:>9.3}ms max={:>9.3}ms",
            self.name,
            samples.len(),
            ms(samples[0]),
            ms(samples[samples.len() / 2]),
            ms(*samples.last().unwrap()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_least_one_sample() {
        let mut g = BenchGroup::new("t");
        g.sample_size = 3;
        g.warm_up_time = Duration::from_millis(1);
        g.measurement_time = Duration::from_millis(5);
        let mut count = 0u32;
        g.case("noop", || count += 1);
        assert!(count >= 1);
    }
}
