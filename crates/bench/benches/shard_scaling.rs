//! Smoke check for scatter-gather shard scaling: the 4-shard service must
//! sustain at least 2x the queries/second of the 1-shard service.
//!
//! One client issues cleansed queries serially (caches off, no concurrent
//! ingest), so the only speedup source is the coordinator fanning each
//! query out to shard executors that cleanse their partitions in parallel.
//! That requires real hardware threads: on fewer than 4 cores the bar is
//! reported but not asserted — shard threads would just time-slice one
//! core and the ratio measures the scheduler, not the design. CI pins the
//! job to runners with >= 4 vCPUs, where the assertion is live.
//!
//! Wall-clock and therefore **informational** to the deterministic
//! `bench-gate`; the scaling *ratio* is the smoke bar. Best-of-two
//! attempts absorbs scheduler noise.
//!
//! `--smoke` shrinks the dataset for CI; `--out <path>` writes the rows as
//! JSON (default `BENCH_shard_scaling.json`).

use dc_bench::service_bench::shard_scaling;
use dc_json::Json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_shard_scaling.json", String::as_str);

    let (scale, queries) = if smoke { (4, 8) } else { (8, 24) };
    const BAR: f64 = 2.0;
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    let mut best_ratio = 0.0f64;
    let mut best_rows = Vec::new();
    for attempt in 1..=2 {
        let rows = shard_scaling(scale, 2006, &[1, 4], queries);
        for r in &rows {
            println!("attempt {attempt}: {}", r.render());
        }
        let ratio = rows[1].queries_per_sec / rows[0].queries_per_sec;
        println!("attempt {attempt}: 1->4 shard throughput ratio {ratio:.2}x (bar: {BAR}x)");
        if ratio > best_ratio {
            best_ratio = ratio;
            best_rows = rows;
        }
        if best_ratio >= BAR {
            break;
        }
    }

    let asserted = cores >= 4;
    if asserted {
        assert!(
            best_ratio >= BAR,
            "4 shards reached only {best_ratio:.2}x the 1-shard throughput (bar: {BAR}x)"
        );
    } else {
        println!(
            "only {cores} hardware thread(s): ratio {best_ratio:.2}x reported, \
             bar not asserted (needs >= 4 cores for parallel shard executors)"
        );
    }

    let json = Json::obj()
        .set("smoke", smoke)
        .set("scale", scale)
        .set("cores", cores)
        .set("asserted", asserted)
        .set("ratio", Json::Num(best_ratio))
        .set("bar", Json::Num(BAR))
        .set(
            "rows",
            Json::Arr(best_rows.iter().map(|r| r.to_json()).collect()),
        );
    std::fs::write(out_path, json.pretty()).expect("write bench json");
    println!("wrote {out_path}");
}
