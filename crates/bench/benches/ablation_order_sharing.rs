//! Ablation: the optimizer's order sharing (redundant-sort elimination),
//! the mechanism behind q1_e paying for a single sort (paper §6.2).

use criterion::{criterion_group, criterion_main, Criterion};
use dc_bench::experiments::ablation_order_sharing;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_order_sharing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("q1_e_with_and_without_sharing", |b| {
        b.iter(|| ablation_order_sharing(4, 1));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
