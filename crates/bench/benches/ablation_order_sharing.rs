//! Ablation: the optimizer's order sharing (redundant-sort elimination),
//! the mechanism behind q1_e paying for a single sort (paper §6.2).

use dc_bench::experiments::ablation_order_sharing;
use dc_bench::microbench::BenchGroup;

fn main() {
    let group = BenchGroup::new("ablation_order_sharing");
    group.case("q1_e_with_and_without_sharing", || {
        ablation_order_sharing(4, 1)
    });
}
