//! Figure 9(c)/(d): scaling the anomaly percentage from 10% to 40% with the
//! first three rules at 10% selectivity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_bench::{run_variant, setup, Variant};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_dirty");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for pct in [10.0f64, 40.0] {
        let env = setup(8, pct, 1);
        for qname in ["q1", "q2"] {
            let sql = match qname {
                "q1" => env.dataset.q1(env.dataset.rtime_quantile(0.10)),
                _ => env.dataset.q2(env.dataset.rtime_quantile(0.90), 2),
            };
            for variant in [Variant::Expanded, Variant::JoinBack] {
                let id = BenchmarkId::new(
                    format!("{qname}/{}", variant.label()),
                    format!("{pct:.0}%"),
                );
                group.bench_function(id, |b| {
                    b.iter(|| run_variant(&env, 3, &sql, variant));
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
