//! Figure 9(c)/(d): scaling the anomaly percentage from 10% to 40% with the
//! first three rules at 10% selectivity.

use dc_bench::microbench::BenchGroup;
use dc_bench::{run_variant, setup, Variant};

fn main() {
    let group = BenchGroup::new("fig9_dirty");
    for pct in [10.0f64, 40.0] {
        let env = setup(8, pct, 1);
        for qname in ["q1", "q2"] {
            let sql = match qname {
                "q1" => env.dataset.q1(env.dataset.rtime_quantile(0.10)),
                _ => env.dataset.q2(env.dataset.rtime_quantile(0.90), 2),
            };
            for variant in [Variant::Expanded, Variant::JoinBack] {
                let id = format!("{qname}/{}@{pct:.0}%", variant.label());
                group.case(&id, || run_variant(&env, 3, &sql, variant));
            }
        }
    }
}
