//! Microbench for the Φ_C hot-path kernels: incremental sliding-window
//! aggregation vs naive frame recomputation, and run-aware merge sort vs a
//! from-scratch full sort.
//!
//! Counters are deterministic, so this bench *asserts* the two acceptance
//! bars instead of just printing numbers: incremental accumulator ops must
//! grow ≤ 1.2× from the narrowest to the widest frame, and the merge path
//! must beat the full sort's comparison count on append-shaped data.
//! Wall-clock is printed as colour only.
//!
//! `--smoke` shrinks the dataset for CI; `--out <path>` writes the numbers
//! as JSON (default `BENCH_window_kernels.json`).

use dc_bench::window_kernels::{kernel_ablation, sort_ablation};
use dc_json::Json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_window_kernels.json", String::as_str);

    let (rows, partitions, per_run, runs) = if smoke {
        (8_192, 16, 1_024, 8)
    } else {
        (131_072, 64, 16_384, 8)
    };
    let widths = [16usize, 64, 256];

    let ka = kernel_ablation(rows, partitions, &widths);
    println!("window_kernels: {rows} rows, {partitions} partitions, 3 aggregates (sum/min/count)");
    for p in &ka.points {
        println!(
            "  width {:>4}: incremental {:>9} ops {:>9.3}ms | naive {:>10} frame rows {:>9.3}ms",
            p.width, p.incremental_ops, p.incremental_ms, p.naive_work, p.naive_ms
        );
    }
    let growth = ka.incremental_growth();
    let naive_growth = ka.points.last().unwrap().naive_work as f64
        / ka.points.first().unwrap().naive_work.max(1) as f64;
    println!("  ops growth 16->256: incremental {growth:.3}x, naive {naive_growth:.1}x");
    assert!(
        growth <= 1.2,
        "incremental accumulator ops grew {growth:.3}x from width 16 to 256 (bar: 1.2x)"
    );

    let sa = sort_ablation(per_run, runs);
    println!(
        "run_aware_sort: {} rows in {} runs: hinted {} cmps, detected {} cmps, full sort {} cmps, \
         sorted input elided: {}",
        sa.rows,
        sa.runs,
        sa.hinted_comparisons,
        sa.detected_comparisons,
        sa.full_sort_comparisons,
        sa.sorted_input_elided
    );
    assert!(sa.runs > 1, "append-shaped input must yield multiple runs");
    assert!(
        sa.hinted_comparisons < sa.full_sort_comparisons,
        "hinted merge ({}) must beat the full sort ({})",
        sa.hinted_comparisons,
        sa.full_sort_comparisons
    );
    assert!(sa.sorted_input_elided, "sorted input must elide its sort");

    let json = Json::obj()
        .set("smoke", smoke)
        .set("rows", rows)
        .set("partitions", partitions)
        .set(
            "kernel_points",
            Json::Arr(
                ka.points
                    .iter()
                    .map(|p| {
                        Json::obj()
                            .set("width", p.width)
                            .set("incremental_ops", p.incremental_ops)
                            .set("naive_work", p.naive_work)
                            .set("incremental_ms", Json::Num(p.incremental_ms))
                            .set("naive_ms", Json::Num(p.naive_ms))
                    })
                    .collect(),
            ),
        )
        .set("incremental_growth", Json::Num(growth))
        .set(
            "sort",
            Json::obj()
                .set("rows", sa.rows)
                .set("runs", sa.runs)
                .set("hinted_comparisons", sa.hinted_comparisons)
                .set("detected_comparisons", sa.detected_comparisons)
                .set("full_sort_comparisons", sa.full_sort_comparisons)
                .set("sorted_input_elided", sa.sorted_input_elided),
        );
    std::fs::write(out_path, json.pretty()).expect("write bench json");
    println!("wrote {out_path}");
}
