//! Microbench for the typed expression kernels: `filter_chunk` over a
//! selection-carrying chunk vs the per-row `Value`-boxing oracle.
//!
//! Counters are deterministic, so this bench *asserts* the acceptance bars
//! instead of just printing numbers: every predicate must run fully on
//! typed kernels (zero fallback rows), spend at most one accumulator op
//! per compute node per **selected** row, and agree with the oracle's
//! survivor count at every selection density. Wall-clock is colour only.
//!
//! `--smoke` shrinks the chunk for CI; `--out <path>` writes the numbers
//! as JSON (default `BENCH_expr_kernels.json`).

use dc_bench::expr_kernels::expr_kernel_ablation;
use dc_json::Json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_expr_kernels.json", String::as_str);

    let (rows, iters) = if smoke { (16_384, 4) } else { (262_144, 16) };
    let densities = [100u32, 25, 1];

    let points = expr_kernel_ablation(rows, &densities, iters);
    println!("expr_kernels: {rows} rows, densities {densities:?}%, {iters} iters");
    for p in &points {
        println!(
            "  {:>13} @{:>3}%: {:>8} rows, {:>9} kernel ops ({} nodes), \
             {:>7} survive | kernel {:>8.3}ms vs oracle {:>8.3}ms",
            p.label,
            p.density_pct,
            p.evaluated_rows,
            p.kernel_ops,
            p.compute_nodes,
            p.kernel_survivors,
            p.kernel_ms,
            p.oracle_ms
        );
        assert_eq!(
            p.fallback_rows, 0,
            "{} fell back to the boxed path for {} rows",
            p.label, p.fallback_rows
        );
        assert!(
            p.kernel_ops <= p.compute_nodes * p.evaluated_rows,
            "{}@{}%: {} kernel ops exceed {} nodes x {} selected rows",
            p.label,
            p.density_pct,
            p.kernel_ops,
            p.compute_nodes,
            p.evaluated_rows
        );
        assert_eq!(
            p.kernel_survivors, p.oracle_survivors,
            "{}@{}%: kernel and oracle disagree",
            p.label, p.density_pct
        );
    }

    let json = Json::obj().set("smoke", smoke).set("rows", rows).set(
        "points",
        Json::Arr(
            points
                .iter()
                .map(|p| {
                    Json::obj()
                        .set("label", p.label)
                        .set("density_pct", u64::from(p.density_pct))
                        .set("compute_nodes", p.compute_nodes)
                        .set("evaluated_rows", p.evaluated_rows)
                        .set("kernel_ops", p.kernel_ops)
                        .set("fallback_rows", p.fallback_rows)
                        .set("survivors", p.kernel_survivors)
                        .set("kernel_ms", Json::Num(p.kernel_ms))
                        .set("oracle_ms", Json::Num(p.oracle_ms))
                })
                .collect(),
        ),
    );
    std::fs::write(out_path, json.pretty()).expect("write bench json");
    println!("wrote {out_path}");
}
