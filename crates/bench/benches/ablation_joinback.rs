//! Ablation: improved join-back (expanded condition on the outer arm,
//! paper §5.3) vs plain join-back.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_bench::experiments::ablation_joinback;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_joinback");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("q1_j_improved_vs_plain", |b| {
        b.iter(|| ablation_joinback(4, 1));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
