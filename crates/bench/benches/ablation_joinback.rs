//! Ablation: improved join-back (expanded condition on the outer arm,
//! paper §5.3) vs plain join-back.

use dc_bench::experiments::ablation_joinback;
use dc_bench::microbench::BenchGroup;

fn main() {
    let group = BenchGroup::new("ablation_joinback");
    group.case("q1_j_improved_vs_plain", || ablation_joinback(4, 1));
}
