//! Microbench for the vectorized hash machinery: batch key encoding +
//! normalized-key tables behind join, GROUP BY, and DISTINCT, vs the
//! retained `Vec<Value>` oracle.
//!
//! Counters are deterministic, so this bench *asserts* the acceptance
//! bars instead of just printing numbers: the fixed-width encode path
//! must spend a constant (≤ 4) number of allocations regardless of row
//! count, every consumer must spend at most one memcmp per key lookup
//! plus counted collisions, and the two lanes must agree on output
//! cardinality (checked inside the ablation). Wall-clock is colour only.
//!
//! `--smoke` shrinks the input for CI; `--out <path>` writes the numbers
//! as JSON (default `BENCH_hash_kernels.json`).

use dc_bench::hash_kernels::hash_kernel_ablation;
use dc_json::Json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_hash_kernels.json", String::as_str);

    let (rows, iters) = if smoke { (16_384, 4) } else { (262_144, 16) };

    // The allocation bar needs two sizes: constant means size-independent.
    let half = hash_kernel_ablation(rows / 2, 1);
    let points = hash_kernel_ablation(rows, iters);
    println!("hash_kernels: {rows} rows, {iters} iters");
    for p in &points {
        println!(
            "  {:>12}: {:>8} rows -> {:>7} out, {:>9} hash_ops, {:>4} collisions, \
             {:>8} memcmps, {:>9} key bytes | vectorized {:>8.3}ms vs rowwise {:>8.3}ms",
            p.label,
            p.rows,
            p.out_rows,
            p.hash_ops,
            p.hash_collisions,
            p.probe_memcmps,
            p.key_bytes_encoded,
            p.vectorized_ms,
            p.rowwise_ms
        );
        if p.has_alloc_events() {
            let at_half = half
                .iter()
                .find(|q| q.label == p.label)
                .expect("matching half-size point");
            assert_eq!(
                p.alloc_events, at_half.alloc_events,
                "{}: allocations scale with row count ({} at {} rows vs {} at {} rows)",
                p.label, p.alloc_events, p.rows, at_half.alloc_events, at_half.rows
            );
            if p.label == "encode_fixed" {
                assert!(
                    p.alloc_events <= 4,
                    "{}: fixed-width encoding spent {} allocations",
                    p.label,
                    p.alloc_events
                );
            }
        } else {
            assert!(
                p.probe_memcmps <= p.lookups + p.hash_collisions,
                "{}: {} memcmps exceed {} lookups + {} collisions",
                p.label,
                p.probe_memcmps,
                p.lookups,
                p.hash_collisions
            );
            assert!(p.hash_ops > 0, "{}: hash path did not engage", p.label);
        }
    }

    let json = Json::obj().set("smoke", smoke).set("rows", rows).set(
        "points",
        Json::Arr(
            points
                .iter()
                .map(|p| {
                    let mut o = Json::obj()
                        .set("label", p.label)
                        .set("rows", p.rows)
                        .set("out_rows", p.out_rows)
                        .set("lookups", p.lookups)
                        .set("hash_ops", p.hash_ops)
                        .set("hash_collisions", p.hash_collisions)
                        .set("probe_memcmps", p.probe_memcmps)
                        .set("key_bytes_encoded", p.key_bytes_encoded)
                        .set("vectorized_ms", Json::Num(p.vectorized_ms))
                        .set("rowwise_ms", Json::Num(p.rowwise_ms));
                    if p.has_alloc_events() {
                        o = o.set("alloc_events", p.alloc_events);
                    }
                    o
                })
                .collect(),
        ),
    );
    std::fs::write(out_path, json.pretty()).expect("write bench json");
    println!("wrote {out_path}");
}
