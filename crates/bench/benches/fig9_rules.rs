//! Figure 9(a)/(b): scaling the number of cleansing rules from 1 to 5
//! (the fifth brings in the missing rule over the caseR ∪ palletR-derived
//! input) at 10% selectivity on db-10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_bench::{run_variant, setup, Variant};

fn bench(c: &mut Criterion) {
    let env = setup(8, 10.0, 1);
    let mut group = c.benchmark_group("fig9_rules");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for qname in ["q1", "q2"] {
        let sql = match qname {
            "q1" => env.dataset.q1(env.dataset.rtime_quantile(0.10)),
            _ => env.dataset.q2(env.dataset.rtime_quantile(0.90), 2),
        };
        for n in 1..=5usize {
            for variant in [Variant::Expanded, Variant::JoinBack, Variant::Naive] {
                // Expanded is infeasible from 4 rules on; skip those points.
                if variant == Variant::Expanded && n >= 4 {
                    continue;
                }
                let id = BenchmarkId::new(format!("{qname}/{}", variant.label()), n);
                group.bench_function(id, |b| {
                    b.iter(|| run_variant(&env, n, &sql, variant));
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
