//! Figure 9(a)/(b): scaling the number of cleansing rules from 1 to 5
//! (the fifth brings in the missing rule over the caseR ∪ palletR-derived
//! input) at 10% selectivity on db-10.

use dc_bench::microbench::BenchGroup;
use dc_bench::{run_variant, setup, Variant};

fn main() {
    let env = setup(8, 10.0, 1);
    let group = BenchGroup::new("fig9_rules");
    for qname in ["q1", "q2"] {
        let sql = match qname {
            "q1" => env.dataset.q1(env.dataset.rtime_quantile(0.10)),
            _ => env.dataset.q2(env.dataset.rtime_quantile(0.90), 2),
        };
        for n in 1..=5usize {
            for variant in [Variant::Expanded, Variant::JoinBack, Variant::Naive] {
                // Expanded is infeasible from 4 rules on; skip those points.
                if variant == Variant::Expanded && n >= 4 {
                    continue;
                }
                let id = format!("{qname}/{}@{n}", variant.label());
                group.case(&id, || run_variant(&env, n, &sql, variant));
            }
        }
    }
}
