//! Smoke check for service throughput scaling: the 4-worker pool must
//! sustain at least 1.5x the queries/second of the 1-worker pool.
//!
//! On a single hardware thread that headroom comes from in-flight work
//! coalescing — concurrent identical queries share one execution — which
//! a lone worker can never trigger (no overlap). The measurement is
//! wall-clock and therefore **informational**: it is asserted here as a
//! smoke bar, but the numbers are never fed to the deterministic
//! `bench-gate`. Best-of-two attempts absorbs scheduler noise.
//!
//! `--smoke` shrinks the dataset for CI; `--out <path>` writes the rows as
//! JSON (default `BENCH_service_scaling.json`).

use dc_bench::service_bench::service_throughput;
use dc_json::Json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_service_scaling.json", String::as_str);

    let scale = if smoke { 2 } else { 4 };
    const BAR: f64 = 1.5;

    let mut best_ratio = 0.0f64;
    let mut best_rows = Vec::new();
    for attempt in 1..=2 {
        let rows = service_throughput(scale, 2006, &[1, 4]);
        for r in &rows {
            println!("attempt {attempt}: {}", r.render());
        }
        let ratio = rows[1].queries_per_sec / rows[0].queries_per_sec;
        println!("attempt {attempt}: 1->4 worker throughput ratio {ratio:.2}x (bar: {BAR}x)");
        if ratio > best_ratio {
            best_ratio = ratio;
            best_rows = rows;
        }
        if best_ratio >= BAR {
            break;
        }
    }

    assert!(
        best_rows[1].coalesced > 0,
        "4-worker run coalesced no queries — duplicate in-flight work is not being shared"
    );
    assert!(
        best_ratio >= BAR,
        "4 workers reached only {best_ratio:.2}x the 1-worker throughput (bar: {BAR}x)"
    );

    let json = Json::obj()
        .set("smoke", smoke)
        .set("scale", scale)
        .set("ratio", Json::Num(best_ratio))
        .set("bar", Json::Num(BAR))
        .set(
            "rows",
            Json::Arr(best_rows.iter().map(|r| r.to_json()).collect()),
        );
    std::fs::write(out_path, json.pretty()).expect("write bench json");
    println!("wrote {out_path}");
}
