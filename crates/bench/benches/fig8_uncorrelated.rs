//! Figure 8: q2' — the site predicate swapped for a step-type predicate
//! that is uncorrelated with EPCs, so join-back's sequence-set reduction
//! loses its advantage over expanded.

use dc_bench::microbench::BenchGroup;
use dc_bench::{run_variant, setup, Variant};

fn main() {
    let env = setup(8, 10.0, 1);
    let group = BenchGroup::new("fig8");
    for sel in [0.10, 0.40] {
        let sql = env
            .dataset
            .q2_prime(env.dataset.rtime_quantile(1.0 - sel), 3);
        for variant in [Variant::Expanded, Variant::JoinBack, Variant::Naive] {
            let id = format!("q2prime/{}@{:.0}%", variant.label(), sel * 100.0);
            group.case(&id, || run_variant(&env, 1, &sql, variant));
        }
    }
}
