//! Figure 8: q2' — the site predicate swapped for a step-type predicate
//! that is uncorrelated with EPCs, so join-back's sequence-set reduction
//! loses its advantage over expanded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_bench::{run_variant, setup, Variant};

fn bench(c: &mut Criterion) {
    let env = setup(8, 10.0, 1);
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for sel in [0.10, 0.40] {
        let sql = env.dataset.q2_prime(env.dataset.rtime_quantile(1.0 - sel), 3);
        for variant in [Variant::Expanded, Variant::JoinBack, Variant::Naive] {
            let id = BenchmarkId::new(
                format!("q2prime/{}", variant.label()),
                format!("{:.0}%", sel * 100.0),
            );
            group.bench_function(id, |b| {
                b.iter(|| run_variant(&env, 1, &sql, variant));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
