//! Figure 7(a)/(d): q1 and q2 elapsed time vs predicate selectivity, with
//! the reader rule on db-10, for the dirty baseline, expanded, join-back,
//! and naive rewrites.

use dc_bench::microbench::BenchGroup;
use dc_bench::{run_variant, setup, Variant};

fn main() {
    let env = setup(8, 10.0, 1);
    let group = BenchGroup::new("fig7");
    for (qname, sel) in [("q1", 0.10), ("q1", 0.40), ("q2", 0.10), ("q2", 0.40)] {
        let sql = match qname {
            "q1" => env.dataset.q1(env.dataset.rtime_quantile(sel)),
            _ => env.dataset.q2(env.dataset.rtime_quantile(1.0 - sel), 2),
        };
        for variant in [
            Variant::Dirty,
            Variant::Expanded,
            Variant::JoinBack,
            Variant::Naive,
        ] {
            let id = format!("{qname}/{}@{:.0}%", variant.label(), sel * 100.0);
            group.case(&id, || run_variant(&env, 1, &sql, variant));
        }
    }
}
