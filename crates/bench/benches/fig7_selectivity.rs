//! Figure 7(a)/(d): q1 and q2 elapsed time vs predicate selectivity, with
//! the reader rule on db-10, for the dirty baseline, expanded, join-back,
//! and naive rewrites.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_bench::{run_variant, setup, Variant};

fn bench(c: &mut Criterion) {
    let env = setup(8, 10.0, 1);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (qname, sel) in [("q1", 0.10), ("q1", 0.40), ("q2", 0.10), ("q2", 0.40)] {
        let sql = match qname {
            "q1" => env.dataset.q1(env.dataset.rtime_quantile(sel)),
            _ => env.dataset.q2(env.dataset.rtime_quantile(1.0 - sel), 2),
        };
        for variant in [Variant::Dirty, Variant::Expanded, Variant::JoinBack, Variant::Naive] {
            let id = BenchmarkId::new(
                format!("{qname}/{}", variant.label()),
                format!("{:.0}%", sel * 100.0),
            );
            group.bench_function(id, |b| {
                b.iter(|| run_variant(&env, 1, &sql, variant));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
