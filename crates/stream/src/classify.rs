//! Maintenance planning: decide how a standing query's plan can be
//! maintained incrementally.
//!
//! The soundness basis is the paper's partitioning: cleansing rules group
//! the reads table by the cluster key and never let sequences interact
//! across keys, so a restriction `ckey IN K` pushed onto the reads scan
//! commutes with cleansing. A plan is **ckey-decomposable** when that
//! restriction also commutes with every operator above the scan — then the
//! difference between two epochs' full results equals the difference
//! between the two epochs' *scoped* results over the touched keys, and
//! maintenance never has to look at untouched sequences.
//!
//! [`classify`] maps a user plan onto the cheapest sound maintenance mode:
//!
//! * decomposable plan → [`Classified::Scoped`] (per-row delta);
//! * `ORDER BY` (+ optional `LIMIT`) over a decomposable input →
//!   [`Classified::Ordered`] (sorted buffer, visible-prefix top-k);
//! * `count/sum/avg` aggregate (grouped by non-ckey keys or global) over a
//!   decomposable input → [`Classified::Aggregate`] (exact i128
//!   accumulators fed by scoped partial aggregates);
//! * everything else → [`Classified::Fallback`] with the reason —
//!   recompute-and-diff, always correct, never silently wrong.
//!
//! Conservatism notes: `DISTINCT` (and `count(distinct)`) eliminate
//! duplicates *across* cluster keys, so a scoped run cannot tell whether a
//! disappearing row is still contributed by an untouched key — fallback.
//! `min`/`max` are not invertible under deletion (re-cleansing can shrink
//! a sequence's output) — fallback. Floating-point `sum`/`avg` are
//! order-sensitive, so add/subtract maintenance cannot reproduce the cold
//! result bit-for-bit — fallback. Integer `avg` is maintainable because
//! the engine itself accumulates it exactly (i128 sum ÷ count).

use dc_relational::agg::{AggExpr, AggFunc};
use dc_relational::delta::scan_count;
use dc_relational::expr::Expr;
use dc_relational::plan::LogicalPlan;
use dc_relational::schema::SchemaRef;
use dc_relational::sort::SortKey;
use dc_relational::table::Catalog;
use dc_relational::value::DataType;

/// How one user aggregate is reconstructed from accumulator slots.
#[derive(Debug, Clone)]
pub enum UserAgg {
    /// `count(*)` — one count slot.
    CountStar { slot: usize },
    /// `count(e)` — one non-null count slot.
    Count { slot: usize },
    /// `sum(e)` over integers — sum slot + non-null count slot (the count
    /// distinguishes an all-NULL group, whose sum is NULL, from a zero sum).
    Sum { sum: usize, cnt: usize },
    /// `avg(e)` over integers — exact integer sum slot + count slot.
    Avg { sum: usize, cnt: usize },
}

/// Everything aggregate maintenance needs: the partial aggregate to run
/// scoped per epoch, and how to rebuild final result rows from
/// accumulators.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// The aggregate's input subtree (unscoped; decomposable).
    pub input: LogicalPlan,
    /// Group keys of the user aggregate (may be empty: global aggregate).
    pub group_by: Vec<(Expr, String)>,
    /// Partial aggregates executed per maintenance step; all integer
    /// valued. The last slot is always a hidden `count(*)` tracking group
    /// liveness.
    pub partials: Vec<AggExpr>,
    /// Reconstruction recipe, one entry per user aggregate, in order.
    pub user_aggs: Vec<UserAgg>,
    /// Projection applied above the aggregate in the user plan (`None`
    /// when the aggregate itself is the plan root).
    pub project: Option<Vec<(Expr, String)>>,
    /// Output schema of the aggregate node (group keys then aggregates) —
    /// the schema `project` expressions resolve in.
    pub agg_schema: SchemaRef,
}

/// The maintenance mode chosen for a subscription's plan.
#[derive(Debug, Clone)]
pub enum Classified {
    /// The whole plan is ckey-decomposable: the scoped diff is the delta.
    Scoped,
    /// Top-level `ORDER BY` (+ optional `LIMIT`) over a decomposable
    /// input: keep the input's rows in a sorted buffer, report changes to
    /// the visible prefix.
    Ordered {
        /// The sort's input subtree (produces the result rows).
        inner: LogicalPlan,
        keys: Vec<SortKey>,
        /// `LIMIT` fetch when present; `None` shows the whole buffer.
        fetch: Option<usize>,
        /// Schema the sort keys resolve in (the inner subtree's output).
        inner_schema: SchemaRef,
    },
    /// Global or non-ckey-grouped aggregation maintained by accumulators.
    Aggregate(AggSpec),
    /// Undecomposable: recompute and diff against the retained result.
    Fallback { reason: String },
}

impl Classified {
    /// Short mode name used in counters and the `-- stream:` line.
    pub fn mode_name(&self) -> &'static str {
        match self {
            Classified::Scoped => "scoped",
            Classified::Ordered { .. } => "ordered",
            Classified::Aggregate(_) => "aggregate",
            Classified::Fallback { .. } => "fallback",
        }
    }
}

/// True when `e` is a bare reference to the cluster-key column (any
/// qualifier).
fn is_ckey_col(e: &Expr, ckey: &str) -> bool {
    matches!(e, Expr::Column(c) if c.name.eq_ignore_ascii_case(ckey))
}

/// Is `plan` ckey-decomposable: does `σ_{ckey∈K}` at the reads scan
/// commute all the way to the root? Subtrees that never scan the reads
/// table are constant across reads-appends and cancel in the diff, so
/// they are trivially fine.
pub fn decomposable(plan: &LogicalPlan, table: &str, ckey: &str) -> bool {
    if scan_count(plan, table) == 0 {
        return true;
    }
    match plan {
        LogicalPlan::Scan { .. } => true,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::SubqueryAlias { input, .. }
        // A mid-plan sort is multiset-preserving; order is owned by the
        // maintenance mode, not the scoped diff.
        | LogicalPlan::Sort { input, .. } => decomposable(input, table, ckey),
        LogicalPlan::Join { left, right, .. } => {
            // Sound when only one side reads the cleansed table: the scope
            // predicate references only that side's columns and commutes
            // through the join.
            (scan_count(right, table) == 0 && decomposable(left, table, ckey))
                || (scan_count(left, table) == 0 && decomposable(right, table, ckey))
        }
        LogicalPlan::Window {
            input, partition_by, ..
        } => {
            // Windows partitioned by the cluster key never mix rows across
            // keys, so scoping the input scopes every partition whole.
            partition_by.iter().any(|e| is_ckey_col(e, ckey))
                && decomposable(input, table, ckey)
        }
        LogicalPlan::Aggregate { input, group_by, .. } => {
            // Same argument for grouping: ckey in the group keys makes
            // every group single-key.
            group_by.iter().any(|(e, _)| is_ckey_col(e, ckey))
                && decomposable(input, table, ckey)
        }
        LogicalPlan::Union { inputs } => inputs
            .iter()
            .all(|i| decomposable(i, table, ckey)),
        // DISTINCT deduplicates across cluster keys; LIMIT's cutoff
        // depends on rows outside the scope. Both break commutation.
        LogicalPlan::Distinct { .. } | LogicalPlan::Limit { .. } => false,
    }
}

/// Classify `plan` (keyed on `table`/`ckey`, the reads table and its
/// cluster key) into a maintenance mode. `catalog` supplies schemas for
/// type checks; appends never change schemas, so classifying once at
/// subscribe time is safe.
pub fn classify(plan: &LogicalPlan, catalog: &Catalog, table: &str, ckey: &str) -> Classified {
    if scan_count(plan, table) == 0 {
        return Classified::Fallback {
            reason: format!("query does not read the cleansed table {table}"),
        };
    }
    if scan_count(plan, table) > 1 {
        return Classified::Fallback {
            reason: format!("query reads {table} more than once (self-join)"),
        };
    }

    // Top-level ORDER BY (+ optional LIMIT) gets the sorted-buffer mode so
    // the visible order is maintained, not just the multiset.
    let (sorted, fetch) = match plan {
        LogicalPlan::Limit { input, fetch } => match input.as_ref() {
            LogicalPlan::Sort { .. } => (Some(input.as_ref()), Some(*fetch)),
            _ => (None, None),
        },
        LogicalPlan::Sort { .. } => (Some(plan), None),
        _ => (None, None),
    };
    if let Some(LogicalPlan::Sort { input, keys }) = sorted {
        if decomposable(input, table, ckey) {
            match input.schema(catalog) {
                Ok(inner_schema) => {
                    return Classified::Ordered {
                        inner: input.as_ref().clone(),
                        keys: keys.clone(),
                        fetch,
                        inner_schema,
                    }
                }
                Err(e) => {
                    return Classified::Fallback {
                        reason: format!("sort input schema unavailable: {e}"),
                    }
                }
            }
        }
        return Classified::Fallback {
            reason: "ORDER BY over a non-decomposable input".into(),
        };
    }

    if decomposable(plan, table, ckey) {
        return Classified::Scoped;
    }

    // Project(Aggregate(input)) / Aggregate(input) with non-ckey groups.
    let (project, agg) = match plan {
        LogicalPlan::Project { input, exprs } => match input.as_ref() {
            LogicalPlan::Aggregate { .. } => (Some(exprs.clone()), input.as_ref()),
            _ => (None, plan),
        },
        _ => (None, plan),
    };
    if let LogicalPlan::Aggregate {
        input,
        group_by,
        aggs,
    } = agg
    {
        if decomposable(input, table, ckey) {
            match build_agg_spec(agg, input, group_by, aggs, project, catalog) {
                Ok(spec) => return Classified::Aggregate(spec),
                Err(reason) => return Classified::Fallback { reason },
            }
        }
        return Classified::Fallback {
            reason: "aggregate over a non-decomposable input".into(),
        };
    }

    Classified::Fallback {
        reason: format!("plan shape is not decomposable by {ckey}"),
    }
}

/// Build the partial-aggregate spec, or a human-readable fallback reason
/// when some aggregate cannot be maintained exactly.
fn build_agg_spec(
    agg_node: &LogicalPlan,
    input: &LogicalPlan,
    group_by: &[(Expr, String)],
    aggs: &[AggExpr],
    project: Option<Vec<(Expr, String)>>,
    catalog: &Catalog,
) -> std::result::Result<AggSpec, String> {
    let input_schema = input
        .schema(catalog)
        .map_err(|e| format!("aggregate input schema unavailable: {e}"))?;
    let int_arg = |e: &Expr| -> std::result::Result<(), String> {
        match e.data_type(&input_schema) {
            Ok(DataType::Int) => Ok(()),
            Ok(other) => Err(format!(
                "{e} has type {other:?}; only integer sums/averages are order-insensitive"
            )),
            Err(err) => Err(format!("cannot type {e}: {err}")),
        }
    };

    let mut partials: Vec<AggExpr> = Vec::new();
    let mut user_aggs: Vec<UserAgg> = Vec::new();
    let slot = |partials: &mut Vec<AggExpr>, func: AggFunc| -> usize {
        let s = partials.len();
        partials.push(AggExpr {
            func,
            alias: format!("__p{s}"),
        });
        s
    };
    for a in aggs {
        match &a.func {
            AggFunc::CountStar => {
                let s = slot(&mut partials, AggFunc::CountStar);
                user_aggs.push(UserAgg::CountStar { slot: s });
            }
            AggFunc::Count(e) => {
                let s = slot(&mut partials, AggFunc::Count(e.clone()));
                user_aggs.push(UserAgg::Count { slot: s });
            }
            AggFunc::Sum(e) => {
                int_arg(e).map_err(|r| format!("sum: {r}"))?;
                let sum = slot(&mut partials, AggFunc::Sum(e.clone()));
                let cnt = slot(&mut partials, AggFunc::Count(e.clone()));
                user_aggs.push(UserAgg::Sum { sum, cnt });
            }
            AggFunc::Avg(e) => {
                int_arg(e).map_err(|r| format!("avg: {r}"))?;
                let sum = slot(&mut partials, AggFunc::Sum(e.clone()));
                let cnt = slot(&mut partials, AggFunc::Count(e.clone()));
                user_aggs.push(UserAgg::Avg { sum, cnt });
            }
            AggFunc::CountDistinct(_) => {
                return Err("count(distinct) deduplicates across cluster keys".into())
            }
            AggFunc::Min(_) | AggFunc::Max(_) => {
                return Err("min/max are not invertible under re-cleansing deletions".into())
            }
        }
    }
    // Hidden liveness counter: a group leaves the result exactly when its
    // input-row count reaches zero.
    slot(&mut partials, AggFunc::CountStar);

    let agg_schema = agg_node
        .schema(catalog)
        .map_err(|e| format!("aggregate schema unavailable: {e}"))?;
    Ok(AggSpec {
        input: input.clone(),
        group_by: group_by.to_vec(),
        partials,
        user_aggs,
        project,
        agg_schema,
    })
}

/// Schema sanity used by callers that need the partial plan: the scoped
/// partial aggregate over `spec` for key set `keys`.
pub fn partial_plan(
    spec: &AggSpec,
    table: &str,
    ckey: &str,
    keys: Option<&[dc_relational::value::Value]>,
) -> LogicalPlan {
    let input = match keys {
        Some(k) => dc_relational::delta::scope_plan(&spec.input, table, ckey, k),
        None => spec.input.clone(),
    };
    LogicalPlan::Aggregate {
        input: Box::new(input),
        group_by: spec.group_by.clone(),
        aggs: spec.partials.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::batch::{schema_ref, Batch};
    use dc_relational::schema::{Field, Schema};
    use dc_relational::sql::plan_sql;
    use dc_relational::table::{Catalog, Table};
    use dc_relational::value::Value;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        let schema = schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
        ]));
        cat.register(Table::new(
            "caser",
            Batch::from_rows(
                schema,
                &[vec![Value::str("e1"), Value::Int(1), Value::str("l1")]],
            )
            .unwrap(),
        ));
        cat
    }

    fn classify_sql(sql: &str) -> Classified {
        let cat = catalog();
        let plan = plan_sql(sql, &cat).unwrap();
        classify(&plan, &cat, "caser", "epc")
    }

    #[test]
    fn filter_project_is_scoped() {
        let c = classify_sql("SELECT epc, rtime FROM caser WHERE rtime > 5");
        assert!(matches!(c, Classified::Scoped), "{c:?}");
    }

    #[test]
    fn ckey_grouped_aggregate_is_scoped() {
        let c = classify_sql("SELECT epc, count(*) FROM caser GROUP BY epc");
        assert!(matches!(c, Classified::Scoped), "{c:?}");
    }

    #[test]
    fn order_by_limit_is_ordered_with_fetch() {
        let c = classify_sql("SELECT epc, rtime FROM caser ORDER BY rtime DESC LIMIT 5");
        match c {
            Classified::Ordered { fetch, keys, .. } => {
                assert_eq!(fetch, Some(5));
                assert_eq!(keys.len(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn global_count_sum_avg_is_aggregate() {
        let c = classify_sql("SELECT count(*), sum(rtime), avg(rtime) FROM caser");
        match c {
            Classified::Aggregate(spec) => {
                // count(*) + (sum,count) + (sum,count) + hidden liveness.
                assert_eq!(spec.partials.len(), 6);
                assert_eq!(spec.user_aggs.len(), 3);
                assert!(spec.group_by.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn non_ckey_grouped_aggregate_is_aggregate() {
        let c = classify_sql("SELECT biz_loc, count(*) FROM caser GROUP BY biz_loc");
        assert!(matches!(c, Classified::Aggregate(_)), "{c:?}");
    }

    #[test]
    fn distinct_min_max_fall_back() {
        assert!(matches!(
            classify_sql("SELECT DISTINCT biz_loc FROM caser"),
            Classified::Fallback { .. }
        ));
        assert!(matches!(
            classify_sql("SELECT min(rtime) FROM caser"),
            Classified::Fallback { .. }
        ));
        assert!(matches!(
            classify_sql("SELECT count(distinct biz_loc) FROM caser"),
            Classified::Fallback { .. }
        ));
    }

    #[test]
    fn constant_query_falls_back() {
        let cat = catalog();
        let plan = plan_sql("SELECT biz_loc FROM caser", &cat).unwrap();
        // A plan over a *different* table never matches the reads table.
        let c = classify(&plan, &cat, "other", "epc");
        assert!(matches!(c, Classified::Fallback { .. }), "{c:?}");
    }
}
