//! Backpressure-bounded change queues.
//!
//! Each subscription owns one [`ChangeChannel`]: the maintenance side
//! pushes a [`ChangeSet`] per relevant publish, the consumer drains it at
//! its own pace. The queue is bounded; a consumer that falls behind does
//! not block ingest and does not grow memory — the channel flips to
//! **lagged**, keeps the already-queued prefix (so the consumer sees an
//! uninterrupted in-order prefix of the feed), drops everything after it,
//! and counts the drops. Once lagged the feed is gap-broken and folding it
//! would silently diverge, so the channel reports
//! [`StreamError::Lagged`] after the prefix drains and stays silent until
//! the subscription is resynchronized with a fresh full result.

use crate::{ChangeSet, StreamError};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// What happened to a pushed change set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Queued for the consumer.
    Delivered,
    /// Dropped: the channel is (or just became) lagged.
    Dropped,
    /// The channel is closed; the subscription can be reaped.
    Closed,
}

#[derive(Default)]
struct State {
    pending: VecDeque<ChangeSet>,
    lagged: bool,
    missed: u64,
    closed: bool,
}

/// A bounded MPSC-ish queue of [`ChangeSet`]s with prefix-then-gap lag
/// semantics. Push never blocks; receive can wait with a timeout.
pub struct ChangeChannel {
    capacity: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl ChangeChannel {
    /// A channel holding at most `capacity` undelivered change sets
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        ChangeChannel {
            capacity: capacity.max(1),
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
        }
    }

    /// Maximum undelivered change sets before the channel lags.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue a change set. Never blocks: on a full queue the channel
    /// becomes lagged and the set is dropped (the queued prefix survives);
    /// while lagged every push is dropped and counted.
    pub fn push(&self, cs: ChangeSet) -> PushOutcome {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed {
            return PushOutcome::Closed;
        }
        if st.lagged {
            st.missed += 1;
            return PushOutcome::Dropped;
        }
        if st.pending.len() >= self.capacity {
            st.lagged = true;
            st.missed = 1;
            self.cv.notify_all();
            return PushOutcome::Dropped;
        }
        st.pending.push_back(cs);
        self.cv.notify_all();
        PushOutcome::Delivered
    }

    /// Non-blocking receive: `Ok(Some)` with the next queued change set,
    /// `Ok(None)` when the feed is healthy but idle, [`StreamError::Lagged`]
    /// once a lag gap is reached, [`StreamError::Closed`] after close.
    /// The queued prefix is always delivered before the lag error.
    pub fn try_recv(&self) -> Result<Option<ChangeSet>, StreamError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(cs) = st.pending.pop_front() {
            return Ok(Some(cs));
        }
        if st.lagged {
            return Err(StreamError::Lagged { missed: st.missed });
        }
        if st.closed {
            return Err(StreamError::Closed);
        }
        Ok(None)
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<ChangeSet, StreamError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(cs) = st.pending.pop_front() {
                return Ok(cs);
            }
            if st.lagged {
                return Err(StreamError::Lagged { missed: st.missed });
            }
            if st.closed {
                return Err(StreamError::Closed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(StreamError::Timeout);
            }
            let (guard, _) = self
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Force the channel into the lagged state. The maintenance driver uses
    /// this when a step fails outright (the recompute itself errored): the
    /// feed can no longer be proven gapless, so the consumer must resync.
    pub fn force_lag(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !st.closed {
            st.lagged = true;
            st.missed += 1;
            self.cv.notify_all();
        }
    }

    /// Whether the channel has entered the lagged state.
    pub fn is_lagged(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).lagged
    }

    /// Change sets dropped since the channel lagged.
    pub fn missed(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).missed
    }

    /// Close the channel: consumers drain the queue then see
    /// [`StreamError::Closed`]; pushes report [`PushOutcome::Closed`].
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        self.cv.notify_all();
    }

    /// Whether the channel has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    /// Reset after a resynchronization: the pending (stale) prefix and the
    /// lag gap are discarded; the feed restarts from the fresh full result
    /// the resync produced.
    pub fn mark_resynced(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.pending.clear();
        st.lagged = false;
        st.missed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EpochVector;

    fn cs(epoch: u64) -> ChangeSet {
        ChangeSet {
            epochs: EpochVector(vec![epoch]),
            ..Default::default()
        }
    }

    #[test]
    fn delivers_in_order_then_idle() {
        let ch = ChangeChannel::new(4);
        assert_eq!(ch.push(cs(1)), PushOutcome::Delivered);
        assert_eq!(ch.push(cs(2)), PushOutcome::Delivered);
        assert_eq!(ch.try_recv().unwrap().unwrap().epochs.0, vec![1]);
        assert_eq!(ch.try_recv().unwrap().unwrap().epochs.0, vec![2]);
        assert!(ch.try_recv().unwrap().is_none());
    }

    #[test]
    fn overflow_keeps_prefix_then_reports_lag() {
        let ch = ChangeChannel::new(2);
        assert_eq!(ch.push(cs(1)), PushOutcome::Delivered);
        assert_eq!(ch.push(cs(2)), PushOutcome::Delivered);
        assert_eq!(ch.push(cs(3)), PushOutcome::Dropped);
        assert_eq!(ch.push(cs(4)), PushOutcome::Dropped);
        assert!(ch.is_lagged());
        // In-order prefix survives, then the gap surfaces with a count.
        assert_eq!(ch.try_recv().unwrap().unwrap().epochs.0, vec![1]);
        assert_eq!(ch.try_recv().unwrap().unwrap().epochs.0, vec![2]);
        assert_eq!(
            ch.try_recv().unwrap_err(),
            StreamError::Lagged { missed: 2 }
        );
        // Resync clears the gap.
        ch.mark_resynced();
        assert!(ch.try_recv().unwrap().is_none());
        assert_eq!(ch.push(cs(5)), PushOutcome::Delivered);
    }

    #[test]
    fn close_drains_then_errors_and_rejects_pushes() {
        let ch = ChangeChannel::new(2);
        ch.push(cs(1));
        ch.close();
        assert_eq!(ch.push(cs(2)), PushOutcome::Closed);
        assert_eq!(ch.try_recv().unwrap().unwrap().epochs.0, vec![1]);
        assert_eq!(ch.try_recv().unwrap_err(), StreamError::Closed);
    }

    #[test]
    fn recv_timeout_times_out() {
        let ch = ChangeChannel::new(1);
        assert_eq!(
            ch.recv_timeout(Duration::from_millis(10)).unwrap_err(),
            StreamError::Timeout
        );
    }
}
