//! Standing queries over deferred cleansing: incremental maintenance and
//! epoch change feeds.
//!
//! The paper cleanses at query time; this crate runs the same rule-based
//! cleansing *continuously*. A client subscribes to a query and receives
//! the initial result plus one [`ChangeSet`] per published epoch — the
//! exact multiset delta between the query's answer at the previous and new
//! snapshots. Folding the feed over the initial result reproduces a cold
//! re-execution at every epoch; that equivalence is the subsystem's
//! correctness contract and is enforced by the seeded battery in
//! `tests/stream_maintenance.rs`.
//!
//! The leverage comes from the paper's own partitioning: cleansing rules
//! group readings by the **cluster key** (CLUSTER BY, typically the EPC)
//! and sequences never interact across keys. An append therefore changes
//! the cleansed relation only for the keys it touches, so maintenance
//! re-cleanses just those sequences (a *scoped* re-execution of the plan,
//! see [`dc_relational::delta::scope_plan`]) and diffs old against new.
//! How the diff becomes a delta depends on the plan shape
//! ([`classify::classify`]):
//!
//! * **Scoped** — ckey-decomposable plans (filter/project/join-to-dims/
//!   per-ckey windows and aggregates): the scoped diff *is* the delta,
//!   applied per-row to the retained result;
//! * **Ordered** — a top-level `ORDER BY` (+ optional `LIMIT`) over a
//!   decomposable input keeps the full sorted buffer and reports changes
//!   to the visible prefix (top-k maintenance);
//! * **Aggregate** — global or non-ckey-grouped `count/sum/avg` over a
//!   decomposable input keeps exact per-group i128 accumulators updated
//!   from scoped partial aggregates;
//! * **Fallback** — anything undecomposable (DISTINCT, mid-plan LIMIT,
//!   `min`/`max`, floating-point sums, …) re-executes in full and diffs
//!   against the retained previous result. Always correct, counted
//!   separately so benchmarks can show how rarely it is needed.
//!
//! The crate is engine-agnostic plumbing over `dc-relational`; the service
//! layer implements [`maintain::MaintenanceRunner`] to execute plans
//! against its epoch-stamped snapshots and owns subscriptions, change
//! queues, and backpressure ([`channel::ChangeChannel`]).

use dc_relational::delta::{cmp_rows, remove_rows};
use dc_relational::error::Result;
use dc_relational::exec::ExecStats;
use dc_relational::physical::OperatorMetrics;
use dc_relational::value::Value;
use std::cmp::Ordering;
use std::fmt;

pub mod channel;
pub mod classify;
pub mod maintain;

pub use channel::{ChangeChannel, PushOutcome};
pub use classify::{classify, Classified};
pub use maintain::{MaintenanceRunner, StandingState};

/// The per-shard epochs one dispatch observed — a vector clock over the
/// shard snapshot cells. Component `i` is shard `i`'s publication epoch.
/// Two queries with equal epoch vectors (and equal rules) see identical
/// data and must produce identical results; the service keys its in-flight
/// work coalescing on exactly this, and every [`ChangeSet`] is tagged with
/// the vector it advances to. An unsharded service has a one-entry vector.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct EpochVector(pub Vec<u64>);

impl EpochVector {
    /// Sum of all components: the total number of appends applied across
    /// the service, and the dense epoch itself when there is one shard.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Number of shards the vector spans.
    pub fn shards(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for EpochVector {
    /// Dot-joined components, e.g. `0.3.1.2`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

/// A row wrapped with the engine's total value order so rows can key
/// ordered maps. `Null == Null` and doubles compare via `total_cmp`,
/// matching [`cmp_rows`] everywhere maintenance identifies rows.
#[derive(Debug, Clone)]
pub struct RowKey(pub Vec<Value>);

impl PartialEq for RowKey {
    fn eq(&self, other: &Self) -> bool {
        cmp_rows(&self.0, &other.0) == Ordering::Equal
    }
}
impl Eq for RowKey {}
impl PartialOrd for RowKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RowKey {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_rows(&self.0, &other.0)
    }
}

/// Work accounting for one maintenance step, carried on every
/// [`ChangeSet`]. Renders as a `-- stream:` comment line in the style of
/// the service's `-- service:` EXPLAIN ANALYZE annotation.
#[derive(Debug, Clone, Default)]
pub struct MaintenanceStats {
    /// Epoch vector the subscription advanced to.
    pub epochs: EpochVector,
    /// Cluster keys the append touched (and maintenance re-cleansed).
    pub ckeys: usize,
    /// Maintenance strategy that produced the delta: `scoped`, `ordered`,
    /// `aggregate`, or `fallback`.
    pub mode: &'static str,
    /// Whether this step recomputed the full result and diffed it (either
    /// a fallback-mode subscription or a forced re-seed, e.g. after a
    /// dimension-table append).
    pub fallback: bool,
    /// Execution work done by the scoped / fallback re-executions,
    /// including the `maintenance_*` counters.
    pub exec: ExecStats,
}

impl MaintenanceStats {
    /// One-line observability comment, e.g.
    /// `-- stream: epochs=0.3 mode=scoped ckeys=2 recleansed_rows=41 delta=+3/-1/~0 fallback=false`.
    pub fn render_comment(&self, inserted: usize, deleted: usize, updated: usize) -> String {
        format!(
            "-- stream: epochs={} mode={} ckeys={} recleansed_rows={} delta=+{}/-{}/~{} fallback={}",
            self.epochs,
            self.mode,
            self.ckeys,
            self.exec.maintenance_scoped_rows,
            inserted,
            deleted,
            updated,
            self.fallback
        )
    }

    /// A synthetic operator-metrics node summarizing the maintenance step,
    /// so stream work shows up beside ordinary operators in metrics trees.
    pub fn metrics(&self, delta_rows: u64) -> OperatorMetrics {
        OperatorMetrics {
            name: "MaintainExec".into(),
            label: format!(
                "MaintainExec mode={} ckeys={} fallback={}",
                self.mode, self.ckeys, self.fallback
            ),
            rows_in: self.exec.maintenance_scoped_rows,
            rows_out: delta_rows,
            comparisons: self.exec.maintenance_delta_rows,
            partitions: 0,
            segments_total: 0,
            segments_pruned: 0,
            segments_scanned: 0,
            batches_processed: 0,
            selection_avoided_copies: 0,
            hash_ops: self.exec.hash_ops,
            hash_collisions: self.exec.hash_collisions,
            probe_memcmps: self.exec.probe_memcmps,
            key_bytes_encoded: self.exec.key_bytes_encoded,
            wall_nanos: 0,
            children: vec![],
        }
    }
}

/// The delta between a standing query's results at two consecutive epoch
/// vectors. `inserted`/`deleted` are multisets of whole result rows;
/// `updated` pairs an old row with its replacement (produced by aggregate
/// maintenance, where a group's row changes in place). Folding a feed of
/// change sets over the initial result with [`ChangeSet::apply`]
/// reproduces a cold re-execution at each tagged epoch vector.
#[derive(Debug, Clone, Default)]
pub struct ChangeSet {
    /// Epoch vector this change set advances the subscriber to.
    pub epochs: EpochVector,
    pub inserted: Vec<Vec<Value>>,
    pub deleted: Vec<Vec<Value>>,
    pub updated: Vec<(Vec<Value>, Vec<Value>)>,
    /// Work accounting and the `-- stream:` observability line.
    pub stats: MaintenanceStats,
}

impl ChangeSet {
    /// True when the epoch advanced but the result did not change.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty() && self.updated.is_empty()
    }

    /// Total rows carried (each update counts its old and new row).
    pub fn delta_rows(&self) -> usize {
        self.inserted.len() + self.deleted.len() + 2 * self.updated.len()
    }

    /// Fold this delta into a materialized result multiset: remove
    /// `deleted` and the old side of `updated`, add `inserted` and the new
    /// side. Errors if a removed row is absent — the feed and the
    /// materialization have diverged.
    pub fn apply(&self, rows: &mut Vec<Vec<Value>>) -> Result<()> {
        remove_rows(rows, &self.deleted)?;
        let old: Vec<Vec<Value>> = self.updated.iter().map(|(o, _)| o.clone()).collect();
        remove_rows(rows, &old)?;
        rows.extend(self.inserted.iter().cloned());
        rows.extend(self.updated.iter().map(|(_, n)| n.clone()));
        Ok(())
    }

    /// The `-- stream:` comment line for this notification.
    pub fn render_comment(&self) -> String {
        self.stats
            .render_comment(self.inserted.len(), self.deleted.len(), self.updated.len())
    }
}

/// Typed errors a subscription consumer can observe on its change feed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// The subscriber fell behind: its bounded queue overflowed and
    /// `missed` change sets were dropped. The retained queue prefix is
    /// still delivered in order; after this error the feed stays silent
    /// until the subscription is resynchronized with a fresh full result.
    Lagged { missed: u64 },
    /// The subscription was closed (handle dropped, explicit unsubscribe,
    /// or service shutdown); no further change sets will arrive.
    Closed,
    /// `recv_timeout` elapsed without a notification.
    Timeout,
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Lagged { missed } => {
                write!(
                    f,
                    "subscriber lagged: {missed} change set(s) dropped; resync required"
                )
            }
            StreamError::Closed => f.write_str("subscription closed"),
            StreamError::Timeout => f.write_str("timed out waiting for a change set"),
        }
    }
}

impl std::error::Error for StreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|v| Value::Int(*v)).collect()
    }

    #[test]
    fn epoch_vector_display_and_total() {
        let ev = EpochVector(vec![0, 3, 1, 2]);
        assert_eq!(ev.to_string(), "0.3.1.2");
        assert_eq!(ev.total(), 6);
        assert_eq!(ev.shards(), 4);
    }

    #[test]
    fn changeset_apply_folds_multiset() {
        let mut rows = vec![iv(&[1]), iv(&[2]), iv(&[3])];
        let cs = ChangeSet {
            epochs: EpochVector(vec![1]),
            inserted: vec![iv(&[4])],
            deleted: vec![iv(&[1])],
            updated: vec![(iv(&[2]), iv(&[20]))],
            stats: MaintenanceStats::default(),
        };
        cs.apply(&mut rows).unwrap();
        rows.sort_by(|a, b| cmp_rows(a, b));
        assert_eq!(rows, vec![iv(&[3]), iv(&[4]), iv(&[20])]);
        assert_eq!(cs.delta_rows(), 4);
        assert!(!cs.is_empty());
    }

    #[test]
    fn changeset_apply_detects_divergence() {
        let mut rows = vec![iv(&[1])];
        let cs = ChangeSet {
            deleted: vec![iv(&[9])],
            ..Default::default()
        };
        assert!(cs.apply(&mut rows).is_err());
    }

    #[test]
    fn stream_comment_format() {
        let mut stats = MaintenanceStats {
            epochs: EpochVector(vec![0, 2]),
            ckeys: 3,
            mode: "scoped",
            fallback: false,
            exec: ExecStats::default(),
        };
        stats.exec.maintenance_scoped_rows = 41;
        assert_eq!(
            stats.render_comment(3, 1, 0),
            "-- stream: epochs=0.2 mode=scoped ckeys=3 recleansed_rows=41 delta=+3/-1/~0 fallback=false"
        );
    }
}
