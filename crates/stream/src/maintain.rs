//! Standing-query state and the per-epoch maintenance step.
//!
//! A [`StandingState`] retains whatever its maintenance mode needs to turn
//! a publish into a [`ChangeSet`] without recomputing the full query:
//!
//! * **Scoped** — just the current result multiset; the delta is the diff
//!   of the scoped plan run on the previous vs new snapshots;
//! * **Ordered** — the sort input's rows in a key-sorted buffer; the
//!   delta is the change to the visible prefix;
//! * **Aggregate** — per-group integer accumulators; the delta is the
//!   groups whose reconstructed row changed;
//! * **Fallback** — the current result; every step recomputes and diffs.
//!
//! Execution is delegated through [`MaintenanceRunner`], which the service
//! implements over its epoch-stamped snapshots: `run_prev`/`run_new`
//! execute a (scoped) plan against one shard's previous/new snapshot
//! through the full cleansing rewrite, and `run_full` re-executes the
//! subscription's original query against the newly published snapshot
//! vector (scatter-gather included). Any internal divergence or overflow
//! downgrades the step to a counted fallback recompute — maintenance can
//! be slow, never wrong.

use crate::classify::{partial_plan, AggSpec, Classified, UserAgg};
use crate::{ChangeSet, EpochVector, MaintenanceStats, RowKey};
use dc_relational::batch::Batch;
use dc_relational::delta::{
    cmp_key_rows, cmp_rows, eval_key_rows, multiset_diff, remove_rows, scope_plan,
};
use dc_relational::error::{Error, Result};
use dc_relational::exec::ExecStats;
use dc_relational::hash::{encode_value_row, HashStats, RawKeyTable};
use dc_relational::plan::LogicalPlan;
use dc_relational::schema::SchemaRef;
use dc_relational::sort::SortKey;
use dc_relational::value::Value;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

/// A result multiset in execution form: one `Vec<Value>` per row.
type RowSet = Vec<Vec<Value>>;

/// Per-group accumulator store for aggregate-mode maintenance. Group
/// lookup runs on the shared normalized-key machinery ([`RawKeyTable`]
/// plus the single-row encoder) so the standing-query hot path carries no
/// `BTreeMap<RowKey, _>` comparisons; the hash work it spends is drained
/// into the step's [`ExecStats`] via [`GroupTable::take_stats`].
///
/// Slots are never removed: a dead group keeps its slot with zeroed
/// accumulators, which is indistinguishable from a never-seen group to
/// the fold (fresh slots start at zero too).
struct GroupTable {
    table: RawKeyTable,
    /// Slot → group key, in first-seen order.
    keys: Vec<RowKey>,
    /// Slot → accumulators, one i128 per partial slot.
    accs: Vec<Vec<i128>>,
    /// Reusable normalized-key encode buffer.
    key_buf: Vec<u8>,
    stats: HashStats,
}

impl GroupTable {
    fn new() -> Self {
        GroupTable {
            table: RawKeyTable::with_capacity(0),
            keys: Vec::new(),
            accs: Vec::new(),
            key_buf: Vec::new(),
            stats: HashStats::default(),
        }
    }

    /// Encode `key` into the reusable buffer and account the work the
    /// same way the columnar encoder does (per-value hashes + bytes).
    fn encode(&mut self, key: &RowKey) -> u64 {
        let h = encode_value_row(&key.0, &mut self.key_buf);
        self.stats.hash_ops += key.0.len() as u64;
        self.stats.key_bytes_encoded += self.key_buf.len() as u64;
        h
    }

    /// Accumulators for `key`, inserting a zeroed slot if unseen.
    fn upsert(&mut self, key: &RowKey, p_len: usize) -> &mut [i128] {
        let h = self.encode(key);
        let (slot, fresh) = self.table.insert(h, &self.key_buf, &mut self.stats);
        if fresh {
            self.keys.push(key.clone());
            self.accs.push(vec![0; p_len]);
        }
        &mut self.accs[slot]
    }

    fn get(&mut self, key: &RowKey) -> Option<&[i128]> {
        let h = self.encode(key);
        let slot = self.table.get(h, &self.key_buf, &mut self.stats)?;
        Some(&self.accs[slot])
    }

    /// Drop a group by zeroing its accumulators; the slot is retained so
    /// a later re-entry behaves exactly like a fresh group.
    fn kill(&mut self, key: &RowKey) {
        let h = self.encode(key);
        if let Some(slot) = self.table.get(h, &self.key_buf, &mut self.stats) {
            self.accs[slot].fill(0);
        }
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn key_at(&self, slot: usize) -> &RowKey {
        &self.keys[slot]
    }

    fn acc_at(&self, slot: usize) -> &[i128] {
        &self.accs[slot]
    }

    fn zero_at(&mut self, slot: usize) {
        self.accs[slot].fill(0);
    }

    /// Forget every group (reseed); retained hash counters survive.
    fn clear(&mut self) {
        self.table = RawKeyTable::with_capacity(0);
        self.keys.clear();
        self.accs.clear();
    }

    /// Drain the hash work spent since the last call.
    fn take_stats(&mut self) -> HashStats {
        std::mem::take(&mut self.stats)
    }
}

/// Executes plans for maintenance. Implemented by the service layer over
/// its snapshots; `shard` indexes the service's shard vector.
pub trait MaintenanceRunner {
    /// Number of shards (1 for an unsharded service).
    fn shard_count(&self) -> usize;
    /// Execute `plan` against shard `shard`'s **previous** (pre-publish)
    /// snapshot, through the cleansing rewrite.
    fn run_prev(
        &mut self,
        shard: usize,
        plan: &LogicalPlan,
    ) -> Result<(Vec<Vec<Value>>, ExecStats)>;
    /// Execute `plan` against shard `shard`'s **new** (just-published)
    /// snapshot.
    fn run_new(&mut self, shard: usize, plan: &LogicalPlan)
        -> Result<(Vec<Vec<Value>>, ExecStats)>;
    /// Re-execute the subscription's original query against the new
    /// snapshot vector (the fallback path; scatter-gather in sharded
    /// mode). Returns the result rows in the query's own output order.
    fn run_full(&mut self) -> Result<(Vec<Vec<Value>>, ExecStats)>;
}

/// Mode-specific retained state.
enum ModeState {
    Scoped,
    Ordered {
        inner: LogicalPlan,
        keys: Vec<SortKey>,
        fetch: Option<usize>,
        inner_schema: SchemaRef,
        /// `(sort key row, result row)` sorted by the key order; ties keep
        /// insertion order (new rows land after equal keys).
        buffer: Vec<(Vec<Value>, Vec<Value>)>,
    },
    Aggregate {
        spec: AggSpec,
        /// Per-group accumulators, one i128 per partial slot; the last
        /// slot is the hidden liveness `count(*)`.
        groups: Box<GroupTable>,
        /// Reconstructed final row per live group.
        finals: BTreeMap<RowKey, Vec<Value>>,
    },
    Fallback,
}

/// The maintained state of one subscription.
pub struct StandingState {
    plan: LogicalPlan,
    table: String,
    ckey: String,
    mode: ModeState,
    mode_name: &'static str,
    fallback_reason: Option<String>,
    current: Vec<Vec<Value>>,
}

impl StandingState {
    /// Build and seed the state for a freshly classified subscription.
    /// `initial_rows` is the subscribe-time full execution (what the
    /// client was handed); runner calls see the subscribe-time snapshots
    /// on their `run_new` side.
    pub fn new(
        plan: LogicalPlan,
        table: &str,
        ckey: &str,
        classified: Classified,
        initial_rows: Vec<Vec<Value>>,
        runner: &mut dyn MaintenanceRunner,
    ) -> Result<Self> {
        let mode_name = classified.mode_name();
        let mut state = StandingState {
            plan,
            table: table.to_ascii_lowercase(),
            ckey: ckey.to_ascii_lowercase(),
            mode: ModeState::Fallback,
            mode_name,
            fallback_reason: None,
            current: Vec::new(),
        };
        match classified {
            Classified::Scoped => {
                state.mode = ModeState::Scoped;
                state.current = initial_rows;
            }
            Classified::Fallback { reason } => {
                state.fallback_reason = Some(reason);
                state.current = initial_rows;
            }
            Classified::Ordered {
                inner,
                keys,
                fetch,
                inner_schema,
            } => {
                state.mode = ModeState::Ordered {
                    inner,
                    keys,
                    fetch,
                    inner_schema,
                    buffer: Vec::new(),
                };
                state.seed_ordered(runner)?;
            }
            Classified::Aggregate(spec) => {
                state.mode = ModeState::Aggregate {
                    spec,
                    groups: Box::new(GroupTable::new()),
                    finals: BTreeMap::new(),
                };
                state.seed_aggregate(runner)?;
            }
        }
        Ok(state)
    }

    /// The maintenance mode's short name.
    pub fn mode_name(&self) -> &'static str {
        self.mode_name
    }

    /// Why the subscription fell back to recompute-and-diff, if it did.
    pub fn fallback_reason(&self) -> Option<&str> {
        self.fallback_reason.as_deref()
    }

    /// The maintained result. For `ordered` subscriptions this is the
    /// visible prefix in exact sort order; for other modes it is the
    /// result multiset (aggregate rows come out in group-key order, which
    /// may differ from a cold run's first-seen group order).
    pub fn current(&self) -> &[Vec<Value>] {
        &self.current
    }

    /// One maintenance step for a publish that advanced to `epochs`.
    /// `keys` are the cluster keys the append touched and `shards` the
    /// shards that received rows; `reads_touched` is false when the append
    /// went to some *other* table the plan reads (a dimension table), in
    /// which case ckey scoping is unsound and the step recomputes.
    ///
    /// Always returns a change set that is exactly the difference between
    /// the previous and new results: incremental errors (state divergence,
    /// accumulator overflow) downgrade to a counted fallback recompute.
    pub fn maintain(
        &mut self,
        runner: &mut dyn MaintenanceRunner,
        epochs: EpochVector,
        keys: &[Value],
        shards: &[usize],
        reads_touched: bool,
    ) -> Result<ChangeSet> {
        let mut stats = MaintenanceStats {
            epochs: epochs.clone(),
            ckeys: keys.len(),
            mode: self.mode_name,
            fallback: false,
            exec: ExecStats::default(),
        };
        let before = self.current.clone();
        let incremental = if !reads_touched || matches!(self.mode, ModeState::Fallback) {
            None
        } else {
            // On divergence / overflow the partial step is discarded and
            // recomputed. The fallback diff below is taken against the
            // subscriber's view (`before`), so the feed stays exact.
            self.maintain_incremental(runner, keys, shards, &mut stats)
                .ok()
        };
        let (inserted, deleted, updated) = match incremental {
            Some(delta) => delta,
            None => {
                stats.fallback = true;
                stats.exec.maintenance_fallbacks += 1;
                self.reseed(runner, &mut stats)?;
                let (deleted, inserted) = multiset_diff(&before, &self.current, &mut stats.exec);
                (inserted, deleted, Vec::new())
            }
        };
        Ok(ChangeSet {
            epochs,
            inserted,
            deleted,
            updated,
            stats,
        })
    }

    /// Run `plan` scoped-style on the previous and new snapshots of every
    /// touched shard, concatenating rows and accounting the work.
    fn scoped_runs(
        runner: &mut dyn MaintenanceRunner,
        plan: &LogicalPlan,
        shards: &[usize],
        stats: &mut MaintenanceStats,
    ) -> Result<(RowSet, RowSet)> {
        let mut old_rows = Vec::new();
        let mut new_rows = Vec::new();
        for &s in shards {
            let (rows, st) = runner.run_prev(s, plan)?;
            stats.exec.maintenance_scoped_rows += st.rows_scanned;
            stats.exec.add(&st);
            old_rows.extend(rows);
            let (rows, st) = runner.run_new(s, plan)?;
            stats.exec.maintenance_scoped_rows += st.rows_scanned;
            stats.exec.add(&st);
            new_rows.extend(rows);
        }
        Ok((old_rows, new_rows))
    }

    #[allow(clippy::type_complexity)]
    fn maintain_incremental(
        &mut self,
        runner: &mut dyn MaintenanceRunner,
        keys: &[Value],
        shards: &[usize],
        stats: &mut MaintenanceStats,
    ) -> Result<(
        Vec<Vec<Value>>,
        Vec<Vec<Value>>,
        Vec<(Vec<Value>, Vec<Value>)>,
    )> {
        match &mut self.mode {
            ModeState::Fallback => Err(Error::Internal("fallback mode is not incremental".into())),
            ModeState::Scoped => {
                let scoped = scope_plan(&self.plan, &self.table, &self.ckey, keys);
                let (old_rows, new_rows) = Self::scoped_runs(runner, &scoped, shards, stats)?;
                let (deleted, inserted) = multiset_diff(&old_rows, &new_rows, &mut stats.exec);
                remove_rows(&mut self.current, &deleted)?;
                self.current.extend(inserted.iter().cloned());
                Ok((inserted, deleted, Vec::new()))
            }
            ModeState::Ordered {
                inner,
                keys: sort_keys,
                fetch,
                inner_schema,
                buffer,
            } => {
                let scoped = scope_plan(inner, &self.table, &self.ckey, keys);
                let (old_rows, new_rows) = Self::scoped_runs(runner, &scoped, shards, stats)?;
                // Buffer-internal diff: not part of the visible delta, so
                // it is not counted as delta rows.
                let mut scratch = ExecStats::default();
                let (deleted, inserted) = multiset_diff(&old_rows, &new_rows, &mut scratch);
                for row in &deleted {
                    let pos = buffer
                        .iter()
                        .position(|(_, r)| cmp_rows(r, row) == Ordering::Equal)
                        .ok_or_else(|| {
                            Error::Internal("ordered buffer diverged from scoped diff".into())
                        })?;
                    buffer.remove(pos);
                }
                if !inserted.is_empty() {
                    let batch = Batch::from_rows(inner_schema.clone(), &inserted)?;
                    let key_rows = eval_key_rows(&batch, sort_keys)?;
                    for (key_row, row) in key_rows.into_iter().zip(inserted) {
                        let pos = buffer.partition_point(|(k, _)| {
                            cmp_key_rows(k, &key_row, sort_keys) != Ordering::Greater
                        });
                        buffer.insert(pos, (key_row, row));
                    }
                }
                let visible: Vec<Vec<Value>> = match fetch {
                    Some(n) => buffer.iter().take(*n).map(|(_, r)| r.clone()).collect(),
                    None => buffer.iter().map(|(_, r)| r.clone()).collect(),
                };
                let (deleted, inserted) = multiset_diff(&self.current, &visible, &mut stats.exec);
                self.current = visible;
                Ok((inserted, deleted, Vec::new()))
            }
            ModeState::Aggregate {
                spec,
                groups,
                finals,
            } => {
                let pplan = partial_plan(spec, &self.table, &self.ckey, Some(keys));
                let (old_parts, new_parts) = Self::scoped_runs(runner, &pplan, shards, stats)?;
                let mut affected: BTreeSet<RowKey> = BTreeSet::new();
                apply_partials(groups, spec, &old_parts, -1, &mut affected)?;
                apply_partials(groups, spec, &new_parts, 1, &mut affected)?;

                let global = spec.group_by.is_empty();
                let mut inserted = Vec::new();
                let mut deleted = Vec::new();
                let mut updated = Vec::new();
                for g in affected {
                    let acc = groups
                        .get(&g)
                        .ok_or_else(|| Error::Internal("affected group vanished".into()))?;
                    let live = global || acc.last().copied().unwrap_or(0) > 0;
                    let old_final = finals.get(&g).cloned();
                    if !live {
                        groups.kill(&g);
                        finals.remove(&g);
                        if let Some(of) = old_final {
                            deleted.push(of);
                        }
                        continue;
                    }
                    let new_final = emit_group(spec, &g, acc)?;
                    match old_final {
                        None => inserted.push(new_final.clone()),
                        Some(of) => {
                            if cmp_rows(&of, &new_final) != Ordering::Equal {
                                updated.push((of, new_final.clone()));
                            }
                        }
                    }
                    finals.insert(g, new_final);
                }
                stats.exec.add_hash(&groups.take_stats());
                self.current = finals.values().cloned().collect();
                stats.exec.maintenance_delta_rows +=
                    (inserted.len() + deleted.len() + 2 * updated.len()) as u64;
                Ok((inserted, deleted, updated))
            }
        }
    }

    /// Rebuild the retained state from scratch against the new snapshots.
    fn reseed(
        &mut self,
        runner: &mut dyn MaintenanceRunner,
        stats: &mut MaintenanceStats,
    ) -> Result<()> {
        match &mut self.mode {
            ModeState::Scoped | ModeState::Fallback => {
                let (rows, st) = runner.run_full()?;
                stats.exec.add(&st);
                self.current = rows;
            }
            ModeState::Ordered { .. } => {
                let st = self.seed_ordered(runner)?;
                stats.exec.add(&st);
            }
            ModeState::Aggregate { .. } => {
                let st = self.seed_aggregate(runner)?;
                stats.exec.add(&st);
            }
        }
        Ok(())
    }

    /// (Re)build the sorted buffer from unscoped runs of the sort input on
    /// every shard's new-side snapshot.
    fn seed_ordered(&mut self, runner: &mut dyn MaintenanceRunner) -> Result<ExecStats> {
        let shard_count = runner.shard_count();
        let ModeState::Ordered {
            inner,
            keys,
            fetch,
            inner_schema,
            buffer,
        } = &mut self.mode
        else {
            return Err(Error::Internal(
                "seed_ordered on a non-ordered state".into(),
            ));
        };
        let mut total = ExecStats::default();
        let mut rows = Vec::new();
        for s in 0..shard_count {
            let (r, st) = runner.run_new(s, inner)?;
            total.add(&st);
            rows.extend(r);
        }
        let batch = Batch::from_rows(inner_schema.clone(), &rows)?;
        let key_rows = eval_key_rows(&batch, keys)?;
        *buffer = key_rows.into_iter().zip(rows).collect();
        buffer.sort_by(|a, b| cmp_key_rows(&a.0, &b.0, keys));
        self.current = match fetch {
            Some(n) => buffer.iter().take(*n).map(|(_, r)| r.clone()).collect(),
            None => buffer.iter().map(|(_, r)| r.clone()).collect(),
        };
        Ok(total)
    }

    /// (Re)build the accumulators from unscoped partial aggregates on
    /// every shard's new-side snapshot.
    fn seed_aggregate(&mut self, runner: &mut dyn MaintenanceRunner) -> Result<ExecStats> {
        let shard_count = runner.shard_count();
        let pplan = match &self.mode {
            ModeState::Aggregate { spec, .. } => partial_plan(spec, &self.table, &self.ckey, None),
            _ => {
                return Err(Error::Internal(
                    "seed_aggregate on a non-aggregate state".into(),
                ))
            }
        };
        let mut total = ExecStats::default();
        let mut parts = Vec::new();
        for s in 0..shard_count {
            let (r, st) = runner.run_new(s, &pplan)?;
            total.add(&st);
            parts.extend(r);
        }
        let ModeState::Aggregate {
            spec,
            groups,
            finals,
        } = &mut self.mode
        else {
            unreachable!();
        };
        groups.clear();
        finals.clear();
        let mut affected = BTreeSet::new();
        apply_partials(groups, spec, &parts, 1, &mut affected)?;
        let global = spec.group_by.is_empty();
        // Dead groups can appear when a sharded global aggregate returns
        // all-default rows from empty shards; zero their slots (unless
        // global) so they read as never-seen.
        for slot in 0..groups.len() {
            if !global && groups.acc_at(slot).last().copied().unwrap_or(0) <= 0 {
                groups.zero_at(slot);
                continue;
            }
            let g = groups.key_at(slot);
            let row = emit_group(spec, g, groups.acc_at(slot))?;
            finals.insert(g.clone(), row);
        }
        total.add_hash(&groups.take_stats());
        self.current = finals.values().cloned().collect();
        Ok(total)
    }
}

/// Fold partial-aggregate rows into the accumulators with `sign` (+1 for
/// the new snapshot's partials, −1 for the previous snapshot's).
fn apply_partials(
    groups: &mut GroupTable,
    spec: &AggSpec,
    rows: &[Vec<Value>],
    sign: i128,
    affected: &mut BTreeSet<RowKey>,
) -> Result<()> {
    let g_len = spec.group_by.len();
    let p_len = spec.partials.len();
    for row in rows {
        if row.len() != g_len + p_len {
            return Err(Error::Internal(format!(
                "partial aggregate row has {} columns, expected {}",
                row.len(),
                g_len + p_len
            )));
        }
        let key = RowKey(row[..g_len].to_vec());
        let acc = groups.upsert(&key, p_len);
        for (slot, v) in row[g_len..].iter().enumerate() {
            let x = match v {
                Value::Null => 0,
                Value::Int(i) => *i as i128,
                other => {
                    return Err(Error::Internal(format!(
                        "non-integer partial aggregate value {other}"
                    )))
                }
            };
            acc[slot] += sign * x;
        }
        affected.insert(key);
    }
    Ok(())
}

/// Reconstruct one group's final result row from its accumulators:
/// aggregate values from the recipe, then the user projection (if any)
/// evaluated over the aggregate-schema row.
fn emit_group(spec: &AggSpec, group: &RowKey, acc: &[i128]) -> Result<Vec<Value>> {
    let int = |x: i128| -> Result<Value> {
        i64::try_from(x)
            .map(Value::Int)
            .map_err(|_| Error::Execution("aggregate accumulator overflow".into()))
    };
    let mut agg_row: Vec<Value> = group.0.clone();
    for ua in &spec.user_aggs {
        let v = match *ua {
            UserAgg::CountStar { slot } | UserAgg::Count { slot } => int(acc[slot])?,
            UserAgg::Sum { sum, cnt } => {
                if acc[cnt] == 0 {
                    Value::Null
                } else {
                    int(acc[sum])?
                }
            }
            UserAgg::Avg { sum, cnt } => {
                if acc[cnt] == 0 {
                    Value::Null
                } else {
                    // Matches the engine's exact integer average: i128 sum
                    // divided once at finish.
                    Value::Double(acc[sum] as f64 / acc[cnt] as f64)
                }
            }
        };
        agg_row.push(v);
    }
    match &spec.project {
        None => Ok(agg_row),
        Some(exprs) => {
            let batch = Batch::from_rows(spec.agg_schema.clone(), &[agg_row])?;
            exprs
                .iter()
                .map(|(e, _)| e.evaluate(&batch).map(|c| c.value(0)))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify;
    use dc_relational::batch::{schema_ref, Batch};
    use dc_relational::exec::Executor;
    use dc_relational::schema::{Field, Schema};
    use dc_relational::sql::plan_sql;
    use dc_relational::table::{Catalog, Table};
    use dc_relational::value::DataType;

    /// A runner over plain catalogs (no cleansing rewrite): maintenance
    /// logic is orthogonal to what Φ does to the rows.
    struct CatRunner {
        prev: Catalog,
        new: Catalog,
        full_plan: LogicalPlan,
    }

    impl MaintenanceRunner for CatRunner {
        fn shard_count(&self) -> usize {
            1
        }
        fn run_prev(
            &mut self,
            _shard: usize,
            plan: &LogicalPlan,
        ) -> Result<(Vec<Vec<Value>>, ExecStats)> {
            run(&self.prev, plan)
        }
        fn run_new(
            &mut self,
            _shard: usize,
            plan: &LogicalPlan,
        ) -> Result<(Vec<Vec<Value>>, ExecStats)> {
            run(&self.new, plan)
        }
        fn run_full(&mut self) -> Result<(Vec<Vec<Value>>, ExecStats)> {
            run(&self.new, &self.full_plan.clone())
        }
    }

    fn run(cat: &Catalog, plan: &LogicalPlan) -> Result<(Vec<Vec<Value>>, ExecStats)> {
        let mut ex = Executor::new(cat);
        let b = ex.execute(plan)?;
        Ok(((0..b.num_rows()).map(|i| b.row(i)).collect(), ex.stats))
    }

    fn reads_schema() -> SchemaRef {
        schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
        ]))
    }

    fn catalog(rows: &[(&str, i64)]) -> Catalog {
        let cat = Catalog::new();
        let rows: Vec<Vec<Value>> = rows
            .iter()
            .map(|(e, t)| vec![Value::str(*e), Value::Int(*t)])
            .collect();
        cat.register(Table::new(
            "r",
            Batch::from_rows(reads_schema(), &rows).unwrap(),
        ));
        cat
    }

    fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by(|a, b| cmp_rows(a, b));
        rows
    }

    fn check_fold(
        state: &mut StandingState,
        runner: &mut CatRunner,
        keys: &[Value],
        initial: Vec<Vec<Value>>,
    ) -> ChangeSet {
        let cs = state
            .maintain(runner, EpochVector(vec![1]), keys, &[0], true)
            .unwrap();
        let mut folded = initial;
        cs.apply(&mut folded).unwrap();
        let (cold, _) = run(&runner.new, &runner.full_plan.clone()).unwrap();
        assert_eq!(sorted(folded), sorted(cold));
        cs
    }

    #[test]
    fn scoped_maintain_matches_cold() {
        let prev = catalog(&[("e1", 1), ("e2", 2), ("e1", 7)]);
        let new = catalog(&[("e1", 1), ("e2", 2), ("e1", 7), ("e1", 9)]);
        let plan = plan_sql("SELECT epc, rtime FROM r WHERE rtime > 1", &prev).unwrap();
        let classified = classify(&plan, &prev, "r", "epc");
        assert!(matches!(classified, Classified::Scoped));
        let (initial, _) = run(&prev, &plan).unwrap();
        let mut runner = CatRunner {
            prev,
            new,
            full_plan: plan.clone(),
        };
        let mut state =
            StandingState::new(plan, "r", "epc", classified, initial.clone(), &mut runner).unwrap();
        let cs = check_fold(&mut state, &mut runner, &[Value::str("e1")], initial);
        assert_eq!(cs.inserted.len(), 1);
        assert!(cs.deleted.is_empty());
        assert!(!cs.stats.fallback);
        assert!(cs.stats.exec.maintenance_scoped_rows > 0);
        assert!(cs
            .render_comment()
            .starts_with("-- stream: epochs=1 mode=scoped"));
    }

    /// Seed against the subscribe-time catalog (the service's subscribe
    /// adapter presents the subscribe snapshot on its `run_new` side).
    fn seeded(
        plan: &LogicalPlan,
        prev_rows: &[(&str, i64)],
        initial: Vec<Vec<Value>>,
        classified: Classified,
    ) -> StandingState {
        let seed_cat = catalog(prev_rows);
        let mut seed_runner = CatRunner {
            prev: catalog(prev_rows),
            new: seed_cat,
            full_plan: plan.clone(),
        };
        StandingState::new(
            plan.clone(),
            "r",
            "epc",
            classified,
            initial,
            &mut seed_runner,
        )
        .unwrap()
    }

    #[test]
    fn aggregate_maintain_emits_updates() {
        let prev_rows: &[(&str, i64)] = &[("e1", 1), ("e2", 2)];
        let prev = catalog(prev_rows);
        let new = catalog(&[("e1", 1), ("e2", 2), ("e1", 9)]);
        let plan = plan_sql("SELECT count(*), sum(rtime), avg(rtime) FROM r", &prev).unwrap();
        let classified = classify(&plan, &prev, "r", "epc");
        assert!(matches!(classified, Classified::Aggregate(_)));
        let (initial, _) = run(&prev, &plan).unwrap();
        let mut state = seeded(&plan, prev_rows, initial.clone(), classified);
        let mut runner = CatRunner {
            prev,
            new,
            full_plan: plan.clone(),
        };
        assert_eq!(sorted(state.current().to_vec()), sorted(initial.clone()));
        let cs = check_fold(&mut state, &mut runner, &[Value::str("e1")], initial);
        assert_eq!(cs.updated.len(), 1);
        assert!(cs.inserted.is_empty() && cs.deleted.is_empty());
    }

    #[test]
    fn grouped_aggregate_inserts_and_deletes_groups() {
        let prev_rows: &[(&str, i64)] = &[("e1", 1)];
        let prev = catalog(prev_rows);
        let new = catalog(&[("e1", 1), ("e3", 5), ("e3", 6)]);
        let plan = plan_sql("SELECT epc, count(*) AS n FROM r GROUP BY epc", &prev).unwrap();
        // Grouped *by* the ckey is scoped; force a non-ckey group by
        // grouping on rtime instead.
        let plan2 = plan_sql("SELECT rtime, count(*) AS n FROM r GROUP BY rtime", &prev).unwrap();
        assert!(matches!(
            classify(&plan, &prev, "r", "epc"),
            Classified::Scoped
        ));
        let classified = classify(&plan2, &prev, "r", "epc");
        assert!(matches!(classified, Classified::Aggregate(_)));
        let (initial, _) = run(&prev, &plan2).unwrap();
        let mut state = seeded(&plan2, prev_rows, initial.clone(), classified);
        let mut runner = CatRunner {
            prev,
            new,
            full_plan: plan2.clone(),
        };
        let cs = check_fold(&mut state, &mut runner, &[Value::str("e3")], initial);
        assert_eq!(cs.inserted.len(), 2, "{cs:?}");
    }

    #[test]
    fn ordered_limit_maintains_visible_prefix() {
        let prev_rows: &[(&str, i64)] = &[("e1", 10), ("e2", 20), ("e3", 30)];
        let prev = catalog(prev_rows);
        let new = catalog(&[("e1", 10), ("e2", 20), ("e3", 30), ("e1", 25)]);
        let plan = plan_sql(
            "SELECT epc, rtime FROM r ORDER BY rtime DESC LIMIT 2",
            &prev,
        )
        .unwrap();
        let classified = classify(&plan, &prev, "r", "epc");
        assert!(matches!(classified, Classified::Ordered { .. }));
        let (initial, _) = run(&prev, &plan).unwrap();
        let mut state = seeded(&plan, prev_rows, initial.clone(), classified);
        let mut runner = CatRunner {
            prev,
            new,
            full_plan: plan.clone(),
        };
        assert_eq!(state.current().to_vec(), initial);
        let cs = check_fold(&mut state, &mut runner, &[Value::str("e1")], initial);
        // 25 enters the top-2, 20 leaves.
        assert_eq!(cs.inserted, vec![vec![Value::str("e1"), Value::Int(25)]]);
        assert_eq!(cs.deleted, vec![vec![Value::str("e2"), Value::Int(20)]]);
        // The visible order is maintained exactly.
        assert_eq!(
            state.current().to_vec(),
            vec![
                vec![Value::str("e3"), Value::Int(30)],
                vec![Value::str("e1"), Value::Int(25)],
            ]
        );
    }

    #[test]
    fn dim_append_forces_counted_fallback() {
        let prev = catalog(&[("e1", 1)]);
        let new = catalog(&[("e1", 1), ("e1", 2)]);
        let plan = plan_sql("SELECT epc, rtime FROM r", &prev).unwrap();
        let classified = classify(&plan, &prev, "r", "epc");
        let (initial, _) = run(&prev, &plan).unwrap();
        let mut runner = CatRunner {
            prev,
            new,
            full_plan: plan.clone(),
        };
        let mut state =
            StandingState::new(plan, "r", "epc", classified, initial.clone(), &mut runner).unwrap();
        let cs = state
            .maintain(&mut runner, EpochVector(vec![1]), &[], &[0], false)
            .unwrap();
        assert!(cs.stats.fallback);
        assert_eq!(cs.stats.exec.maintenance_fallbacks, 1);
        let mut folded = initial;
        cs.apply(&mut folded).unwrap();
        let (cold, _) = run(&runner.new, &runner.full_plan.clone()).unwrap();
        assert_eq!(sorted(folded), sorted(cold));
    }
}
