//! Incremental window kernels ≡ naive frame recomputation.
//!
//! The incremental sliding-window kernels (`WindowEval::eval_partition`)
//! must produce **byte-identical** values to the per-row recomputation
//! oracle (`eval_partition_naive`) for every aggregate, frame shape, and
//! NULL mix — and the whole-plan results must stay identical at any
//! parallelism. The oracle is the pre-optimization semantics, so these
//! properties pin the refactor down exactly.
//!
//! The offline build has no proptest; each property runs seeded random
//! cases from the vendored `rand` shim (failing seeds are printed).

use dc_relational::prelude::*;
use dc_relational::sort::sort_batch;
use dc_relational::window::WindowEval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 96;
const PARALLELISMS: [usize; 3] = [1, 2, 8];

fn check(name: &str, mut property: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let seed = 0xDCFE_0000 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(e) = result {
            eprintln!("property '{name}' failed at case {case} (seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

/// A random reads-shaped batch, pre-sorted by (epc, rtime) the way the
/// physical window operator receives its input. Both the order key and the
/// argument columns carry NULLs; `iv` is Int, `dv` Double (the Double sum
/// exercises the kernel's recompute fallback).
fn random_sorted_batch(rng: &mut StdRng) -> Batch {
    let schema = schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("iv", DataType::Int),
        Field::new("dv", DataType::Double),
    ]));
    let n = rng.gen_range(1..=80usize);
    let n_parts = rng.gen_range(1..=4u32);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|_| {
            vec![
                Value::str(format!("e{}", rng.gen_range(0..n_parts))),
                if rng.gen_bool(0.15) {
                    Value::Null
                } else {
                    // A small domain makes RANGE peer groups frequent.
                    Value::Int(rng.gen_range(0..30i64))
                },
                if rng.gen_bool(0.2) {
                    Value::Null
                } else {
                    Value::Int(rng.gen_range(-50..50i64))
                },
                if rng.gen_bool(0.2) {
                    Value::Null
                } else {
                    Value::Double(rng.gen_range(-500..500i64) as f64 / 10.0)
                },
            ]
        })
        .collect();
    let b = Batch::from_rows(schema, &rows).unwrap();
    sort_batch(
        &b,
        &[
            SortKey::asc(Expr::col("epc")),
            SortKey::asc(Expr::col("rtime")),
        ],
    )
    .unwrap()
}

fn random_frame(rng: &mut StdRng, units_rows: bool) -> Frame {
    let bound = |rng: &mut StdRng, start: bool| match rng.gen_range(0..4u32) {
        0 => {
            if start {
                FrameBound::UnboundedPreceding
            } else {
                FrameBound::UnboundedFollowing
            }
        }
        1 => FrameBound::Preceding(rng.gen_range(0..12i64)),
        2 => FrameBound::CurrentRow,
        _ => FrameBound::Following(rng.gen_range(0..12i64)),
    };
    loop {
        let (s, e) = (bound(rng, true), bound(rng, false));
        let order = |b: &FrameBound| match b {
            FrameBound::UnboundedPreceding => (0, 0),
            FrameBound::Preceding(n) => (1, -n),
            FrameBound::CurrentRow => (2, 0),
            FrameBound::Following(n) => (3, *n),
            FrameBound::UnboundedFollowing => (4, 0),
        };
        if order(&s) <= order(&e) {
            return if units_rows {
                Frame::rows(s, e)
            } else {
                Frame::range(s, e)
            };
        }
    }
}

fn random_exprs(rng: &mut StdRng, units_rows: bool) -> Vec<WindowExpr> {
    let n_exprs = rng.gen_range(1..=4usize);
    (0..n_exprs)
        .map(|i| {
            let (func, arg) = match rng.gen_range(0..7u32) {
                0 => (WindowFuncKind::Count, None),
                1 => (WindowFuncKind::Count, Some(Expr::col("dv"))),
                2 => (WindowFuncKind::Sum, Some(Expr::col("iv"))),
                3 => (WindowFuncKind::Sum, Some(Expr::col("dv"))),
                4 => (WindowFuncKind::Max, Some(Expr::col("iv"))),
                5 => (WindowFuncKind::Min, Some(Expr::col("dv"))),
                _ => (WindowFuncKind::Avg, Some(Expr::col("iv"))),
            };
            WindowExpr {
                func,
                arg,
                frame: random_frame(rng, units_rows),
                alias: format!("w{i}"),
            }
        })
        .collect()
}

/// Per-partition equivalence: the incremental kernels return the exact
/// values of the naive oracle over random ROWS and RANGE frames.
#[test]
fn incremental_matches_naive_oracle() {
    check("incremental ≡ naive", |rng| {
        let batch = random_sorted_batch(rng);
        let units_rows = rng.gen_bool(0.5);
        let exprs = random_exprs(rng, units_rows);
        // RANGE frames require the single numeric order key.
        let order_key = Expr::col("rtime");
        let ev = WindowEval::prepare(&batch, &[Expr::col("epc")], Some(&order_key), &exprs)
            .expect("prepare");
        for &range in ev.partitions() {
            let (inc, _) = ev.eval_partition(range).expect("incremental");
            let (naive, _) = ev.eval_partition_naive(range).expect("naive");
            assert_eq!(
                inc,
                naive,
                "partition {range:?} of {} rows",
                batch.num_rows()
            );
        }
    });
}

/// Whole-plan equivalence across parallelism: batches, merged stats (the
/// accumulator-ops counter included), and the deterministic metrics view
/// are identical at P = 1, 2, 8.
#[test]
fn results_and_ops_counter_parallelism_invariant() {
    check("parallelism invariance", |rng| {
        let batch = random_sorted_batch(rng);
        let cat = Catalog::new();
        cat.register(Table::new("r", batch));
        let units_rows = rng.gen_bool(0.5);
        let plan = LogicalPlan::Window {
            input: Box::new(LogicalPlan::scan("r")),
            partition_by: vec![Expr::col("epc")],
            order_by: vec![SortKey::asc(Expr::col("rtime"))],
            exprs: random_exprs(rng, units_rows),
            presorted: false,
        };
        let mut baseline: Option<(Vec<Vec<Value>>, ExecStats, Option<DeterministicMetrics>)> = None;
        for &p in &PARALLELISMS {
            let mut ex = Executor::with_options(&cat, ExecOptions::with_parallelism(p));
            let b = ex.execute(&plan).unwrap();
            let rows: Vec<Vec<Value>> = (0..b.num_rows()).map(|i| b.row(i)).collect();
            let metrics = ex.metrics.as_ref().map(|m| m.deterministic());
            match &baseline {
                None => baseline = Some((rows, ex.stats, metrics)),
                Some((rows1, stats1, metrics1)) => {
                    assert_eq!(&rows, rows1, "rows differ at P={p}");
                    assert_eq!(&ex.stats, stats1, "stats differ at P={p}");
                    assert_eq!(&metrics, metrics1, "metrics differ at P={p}");
                }
            }
        }
    });
}

/// The RANGE NULL-peer-group edge case, pinned explicitly: rows whose order
/// key is NULL sort first and form one peer group — their frame is exactly
/// the NULL rows, never the numeric rows, whatever the bounds say. Includes
/// the corner where an UNBOUNDED PRECEDING frame over the non-NULL rows is
/// empty although the coverage window spans the NULL prefix.
#[test]
fn range_null_peer_group_edge_case() {
    let schema = schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("iv", DataType::Int),
    ]));
    let rows: Vec<Vec<Value>> = vec![
        vec![Value::str("e1"), Value::Null, Value::Int(100)],
        vec![Value::str("e1"), Value::Null, Value::Int(7)],
        vec![Value::str("e1"), Value::Int(10), Value::Int(1)],
        vec![Value::str("e1"), Value::Int(20), Value::Int(2)],
        vec![Value::str("e1"), Value::Int(30), Value::Int(4)],
    ];
    let batch = Batch::from_rows(schema, &rows).unwrap();
    let frames = [
        // The corner: for rtime=30 the frame [_, 30-25] admits no numeric
        // key, so the frame is empty even though UNBOUNDED PRECEDING makes
        // the coverage window span the NULL prefix.
        Frame::range(FrameBound::UnboundedPreceding, FrameBound::Preceding(25)),
        Frame::range(FrameBound::Preceding(10), FrameBound::CurrentRow),
        Frame::range(
            FrameBound::UnboundedPreceding,
            FrameBound::UnboundedFollowing,
        ),
        Frame::range(FrameBound::CurrentRow, FrameBound::Following(10)),
    ];
    for frame in frames {
        for func in [
            WindowFuncKind::Sum,
            WindowFuncKind::Min,
            WindowFuncKind::Max,
            WindowFuncKind::Count,
            WindowFuncKind::Avg,
        ] {
            let exprs = [WindowExpr {
                func,
                arg: Some(Expr::col("iv")),
                frame: frame.clone(),
                alias: "w".into(),
            }];
            let ev = WindowEval::prepare(
                &batch,
                &[Expr::col("epc")],
                Some(&Expr::col("rtime")),
                &exprs,
            )
            .unwrap();
            let (inc, _) = ev.eval_partition((0, 5)).unwrap();
            let (naive, _) = ev.eval_partition_naive((0, 5)).unwrap();
            assert_eq!(inc, naive, "{func:?} over {frame:?}");
            // NULL-key rows aggregate their peer group only: for sum over
            // the two NULL rows that is always 107, whatever the bounds.
            if func == WindowFuncKind::Sum {
                assert_eq!(inc[0][0], Value::Int(107), "{frame:?}");
                assert_eq!(inc[0][1], Value::Int(107), "{frame:?}");
            }
        }
    }
    // And the corner itself: sum over [UNBOUNDED PRECEDING, 25 PRECEDING]
    // at rtime=30 is an empty frame -> NULL, not the NULL-prefix sum.
    let exprs = [WindowExpr {
        func: WindowFuncKind::Sum,
        arg: Some(Expr::col("iv")),
        frame: Frame::range(FrameBound::UnboundedPreceding, FrameBound::Preceding(25)),
        alias: "w".into(),
    }];
    let ev = WindowEval::prepare(
        &batch,
        &[Expr::col("epc")],
        Some(&Expr::col("rtime")),
        &exprs,
    )
    .unwrap();
    let (inc, _) = ev.eval_partition((0, 5)).unwrap();
    assert_eq!(inc[0][4], Value::Null);
}
