//! Fuzz / property tests for the SQL and SQL-TS front ends.
//!
//! Two properties, both seeded and reproducible:
//!
//! 1. **Round-trip**: for generated ASTs (SQL) and generated rule texts
//!    (SQL-TS), `parse(pretty_print(x)) == x`. The SQL side generates the
//!    AST directly — every parser-producible shape, not just what example
//!    queries happen to cover — and leans on the `Display` impls added in
//!    `sql::display`.
//! 2. **No panics**: for adversarial token soups and raw character noise,
//!    the parsers must return `Err` (or `Ok`), never panic. Any panic found
//!    by the generator gets pinned as an explicit regression case below.

use deferred_cleansing::relational::sql::ast::*;
use deferred_cleansing::relational::sql::lexer::tokenize;
use deferred_cleansing::relational::sql::{parse_expr, parse_query};
use deferred_cleansing::relational::value::Value;
use deferred_cleansing::relational::window::{FrameBound, FrameUnits};
use deferred_cleansing::sqlts::{parse_condition, parse_rule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// Identifier pool. Only bare-printable, non-keyword words: identifiers
/// that collide with keywords or literal words (`select`, `null`, …) are
/// not parser-producible ASTs — the lexer strips identifier quoting, so
/// `"null"` re-lexes as the NULL literal — and the quoting fallback is
/// covered by the pinned display tests instead.
const IDENTS: &[&str] = &["a", "b", "c", "epc", "rtime", "biz_loc", "t0", "x_1"];

fn ident(rng: &mut StdRng) -> String {
    IDENTS[rng.gen_range(0usize..IDENTS.len())].to_string()
}

/// Function-name pool (the grammar cannot quote these).
fn bare_ident(rng: &mut StdRng) -> String {
    IDENTS[rng.gen_range(0usize..IDENTS.len())].to_string()
}

/// A literal the parser can produce in expression position.
fn literal(rng: &mut StdRng) -> Value {
    match rng.gen_range(0u8..6) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.gen_range(-1000i64..1000)),
        3 => Value::Double(rng.gen_range(-4000i64..4000) as f64 / 8.0),
        4 => Value::str(format!("s{}", rng.gen_range(0u16..100))),
        // Strings with embedded quotes exercise the '' escape.
        _ => Value::str(format!("it's {}", rng.gen_range(0u8..10))),
    }
}

/// A literal valid inside an IN list (no booleans there, per the grammar).
fn in_list_literal(rng: &mut StdRng) -> Value {
    match rng.gen_range(0u8..4) {
        0 => Value::Null,
        1 => Value::Int(rng.gen_range(-100i64..100)),
        2 => Value::Double(rng.gen_range(-800i64..800) as f64 / 4.0),
        _ => Value::str(format!("v'{}", rng.gen_range(0u8..20))),
    }
}

fn column(rng: &mut StdRng) -> AstExpr {
    let qualifier = rng.gen_bool(0.3).then(|| ident(rng));
    AstExpr::Column(qualifier, ident(rng))
}

fn gen_expr(rng: &mut StdRng, depth: u32) -> AstExpr {
    if depth == 0 {
        return if rng.gen_bool(0.5) {
            column(rng)
        } else {
            AstExpr::Literal(literal(rng))
        };
    }
    match rng.gen_range(0u8..10) {
        0 | 1 => column(rng),
        2 => AstExpr::Literal(literal(rng)),
        3 | 4 => {
            use AstBinaryOp::*;
            const OPS: &[AstBinaryOp] = &[
                Eq, NotEq, Lt, LtEq, Gt, GtEq, Plus, Minus, Multiply, Divide, And, Or,
            ];
            AstExpr::Binary {
                left: Box::new(gen_expr(rng, depth - 1)),
                op: OPS[rng.gen_range(0usize..OPS.len())],
                right: Box::new(gen_expr(rng, depth - 1)),
            }
        }
        5 => AstExpr::Not(Box::new(gen_expr(rng, depth - 1))),
        6 => AstExpr::IsNull {
            expr: Box::new(gen_expr(rng, depth - 1)),
            negated: rng.gen_bool(0.5),
        },
        7 => {
            let n = rng.gen_range(1usize..4);
            AstExpr::InList {
                expr: Box::new(gen_expr(rng, depth - 1)),
                list: (0..n).map(|_| in_list_literal(rng)).collect(),
                negated: rng.gen_bool(0.5),
            }
        }
        8 => AstExpr::Between {
            expr: Box::new(gen_expr(rng, depth - 1)),
            low: Box::new(gen_expr(rng, depth - 1)),
            high: Box::new(gen_expr(rng, depth - 1)),
            negated: rng.gen_bool(0.5),
        },
        _ => {
            if rng.gen_bool(0.4) {
                let n = rng.gen_range(1usize..3);
                AstExpr::Case {
                    branches: (0..n)
                        .map(|_| (gen_expr(rng, depth - 1), gen_expr(rng, depth - 1)))
                        .collect(),
                    else_expr: rng
                        .gen_bool(0.5)
                        .then(|| Box::new(gen_expr(rng, depth - 1))),
                }
            } else {
                gen_function(rng, depth)
            }
        }
    }
}

fn gen_function(rng: &mut StdRng, depth: u32) -> AstExpr {
    let star = rng.gen_bool(0.25);
    let args = if star {
        None
    } else {
        let n = rng.gen_range(0usize..3);
        Some((0..n).map(|_| gen_expr(rng, depth - 1)).collect())
    };
    let over = rng.gen_bool(0.4).then(|| gen_window_spec(rng, depth));
    AstExpr::Function {
        name: bare_ident(rng),
        args,
        distinct: !star && rng.gen_bool(0.3),
        over,
    }
}

fn gen_window_spec(rng: &mut StdRng, depth: u32) -> WindowSpec {
    let frame = rng.gen_bool(0.6).then(|| {
        let bound = |rng: &mut StdRng| match rng.gen_range(0u8..5) {
            0 => FrameBound::UnboundedPreceding,
            1 => FrameBound::Preceding(rng.gen_range(0i64..100)),
            2 => FrameBound::CurrentRow,
            3 => FrameBound::Following(rng.gen_range(0i64..100)),
            _ => FrameBound::UnboundedFollowing,
        };
        FrameSpec {
            units: if rng.gen_bool(0.5) {
                FrameUnits::Rows
            } else {
                FrameUnits::Range
            },
            start: bound(rng),
            end: bound(rng),
        }
    });
    WindowSpec {
        partition_by: (0..rng.gen_range(0usize..3))
            .map(|_| gen_expr(rng, depth.saturating_sub(1)))
            .collect(),
        order_by: (0..rng.gen_range(0usize..3))
            .map(|_| (gen_expr(rng, depth.saturating_sub(1)), rng.gen_bool(0.5)))
            .collect(),
        frame,
    }
}

fn gen_select(rng: &mut StdRng, depth: u32) -> Select {
    let n_items = rng.gen_range(1usize..4);
    let items = (0..n_items)
        .map(|_| {
            if rng.gen_bool(0.15) {
                SelectItem::Wildcard
            } else {
                SelectItem::Expr {
                    expr: gen_expr(rng, depth),
                    alias: rng.gen_bool(0.4).then(|| ident(rng)),
                }
            }
        })
        .collect();
    let from = (0..rng.gen_range(1usize..3))
        .map(|_| TableRef {
            name: ident(rng),
            alias: rng.gen_bool(0.4).then(|| ident(rng)),
        })
        .collect();
    Select {
        distinct: rng.gen_bool(0.2),
        items,
        from,
        where_clause: rng.gen_bool(0.6).then(|| gen_expr(rng, depth)),
        group_by: (0..rng.gen_range(0usize..3))
            .map(|_| gen_expr(rng, depth.saturating_sub(1)))
            .collect(),
        order_by: (0..rng.gen_range(0usize..3))
            .map(|_| (gen_expr(rng, depth.saturating_sub(1)), rng.gen_bool(0.5)))
            .collect(),
        limit: rng.gen_bool(0.3).then(|| rng.gen_range(0usize..1000)),
    }
}

fn gen_query(rng: &mut StdRng, depth: u32) -> Query {
    // CTE bodies are whole queries; only nest while depth remains, or the
    // expected branching factor makes unbounded recursion possible.
    let n_ctes = if depth >= 2 {
        rng.gen_range(0usize..3)
    } else {
        0
    };
    Query {
        ctes: (0..n_ctes)
            .map(|i| (format!("cte{i}"), gen_query(rng, depth - 2)))
            .collect(),
        body: gen_select(rng, depth),
        as_of: rng.gen_bool(0.2).then(|| rng.gen_range(0u64..10_000)),
    }
}

// ---------------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------------

#[test]
fn sql_query_roundtrip_generated() {
    for case in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(0xF022_0000 + case);
        let q = gen_query(&mut rng, 4);
        let printed = q.to_string();
        let reparsed = parse_query(&printed).unwrap_or_else(|e| {
            panic!("case {case}: printed query failed to parse: {e}\n  printed: {printed}")
        });
        assert_eq!(
            q, reparsed,
            "case {case}: round-trip diverged\n  printed: {printed}"
        );
    }
}

#[test]
fn sql_expr_roundtrip_generated() {
    for case in 0..600u64 {
        let mut rng = StdRng::seed_from_u64(0xE022_0000 + case);
        let e = gen_expr(&mut rng, 5);
        let printed = e.to_string();
        let reparsed = parse_expr(&printed).unwrap_or_else(|err| {
            panic!("case {case}: printed expr failed to parse: {err}\n  printed: {printed}")
        });
        assert_eq!(
            e, reparsed,
            "case {case}: round-trip diverged\n  printed: {printed}"
        );
    }
}

/// Generated SQL-TS rules: random grammar pieces, then parse → Display →
/// parse must reproduce the rule (names, pattern, folded condition,
/// action — all of it).
#[test]
fn sqlts_rule_roundtrip_generated() {
    let patterns = ["(A, B)", "(A, *B)", "(A, B, C)", "(*A, B)", "(A, *B, C)"];
    let conditions = [
        "A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins",
        "B.rtime - A.rtime < 300",
        "A.reader = 'rX' or B.rtime - A.rtime <= 2 hours",
        "B.biz_loc != A.biz_loc and B.rtime - A.rtime < 1 day",
        "A.rtime >= 100 and A.rtime <= 2000 and B.rtime - A.rtime < 90 secs",
        "not (A.biz_loc = B.biz_loc) and B.rtime - A.rtime < 10 minutes",
    ];
    let actions = [
        "DELETE B",
        "KEEP A",
        "MODIFY B.biz_loc = A.biz_loc",
        "MODIFY B.rtime = A.rtime + 60, B.biz_loc = A.biz_loc",
    ];
    for case in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0x2517_0000 + case);
        let from = if rng.gen_bool(0.3) {
            "\nFROM palletr"
        } else {
            ""
        };
        let text = format!(
            "DEFINE rule{case}\nON caser{from}\nCLUSTER BY epc\nSEQUENCE BY rtime\nAS {}\nWHERE {}\nACTION {}",
            patterns[rng.gen_range(0usize..patterns.len())],
            conditions[rng.gen_range(0usize..conditions.len())],
            actions[rng.gen_range(0usize..actions.len())],
        );
        let rule = match parse_rule(&text) {
            Ok(r) => r,
            Err(e) => panic!("case {case}: generated rule rejected: {e}\n{text}"),
        };
        let printed = rule.to_string();
        let reparsed = parse_rule(&printed).unwrap_or_else(|e| {
            panic!("case {case}: printed rule failed to parse: {e}\n  printed:\n{printed}")
        });
        assert_eq!(
            rule, reparsed,
            "case {case}: rule round-trip diverged\n  printed:\n{printed}"
        );
    }
}

// ---------------------------------------------------------------------------
// No-panic fuzzing
// ---------------------------------------------------------------------------

/// Vocabulary for token-soup inputs: valid fragments recombined invalidly.
const SOUP: &[&str] = &[
    "select",
    "from",
    "where",
    "group",
    "by",
    "order",
    "limit",
    "and",
    "or",
    "not",
    "in",
    "between",
    "is",
    "null",
    "case",
    "when",
    "then",
    "else",
    "end",
    "over",
    "partition",
    "rows",
    "range",
    "preceding",
    "following",
    "unbounded",
    "current",
    "row",
    "distinct",
    "as",
    "with",
    "(",
    ")",
    ",",
    ".",
    "*",
    "+",
    "-",
    "/",
    "=",
    "!=",
    "<",
    "<=",
    ">",
    ">=",
    "<>",
    "1",
    "0",
    "42",
    "1.5",
    "'x'",
    "''",
    "a",
    "t",
    "epc",
    "count",
    "max",
    "define",
    "on",
    "cluster",
    "sequence",
    "action",
    "delete",
    "keep",
    "modify",
    "mins",
    "hours",
];

fn soup_string(rng: &mut StdRng) -> String {
    let n = rng.gen_range(0usize..40);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(SOUP[rng.gen_range(0usize..SOUP.len())]);
        if rng.gen_bool(0.8) {
            s.push(' ');
        }
    }
    s
}

fn noise_string(rng: &mut StdRng) -> String {
    const CHARS: &[u8] = b"abcXYZ019 \t\n'\"().,*+-/=!<>_;%$#@[]{}\\`~?&|^";
    let n = rng.gen_range(0usize..80);
    (0..n)
        .map(|_| CHARS[rng.gen_range(0usize..CHARS.len())] as char)
        .collect()
}

/// Every front-end entry point must return Ok/Err on arbitrary input —
/// a panic is a bug even when the input is garbage.
fn assert_no_panic(input: &str) {
    let owned = input.to_string();
    let result = std::panic::catch_unwind(move || {
        let _ = tokenize(&owned);
        let _ = parse_query(&owned);
        let _ = parse_expr(&owned);
        let _ = parse_rule(&owned);
        let _ = parse_condition(&owned);
    });
    assert!(result.is_ok(), "parser panicked on input: {input:?}");
}

#[test]
fn parsers_never_panic_on_token_soup() {
    for case in 0..1500u64 {
        let mut rng = StdRng::seed_from_u64(0x50_0000 + case);
        assert_no_panic(&soup_string(&mut rng));
    }
}

#[test]
fn parsers_never_panic_on_character_noise() {
    for case in 0..1500u64 {
        let mut rng = StdRng::seed_from_u64(0x401_5E00 + case);
        assert_no_panic(&noise_string(&mut rng));
    }
}

/// Pinned edge cases: inputs that target specific parser code paths
/// (lookahead at EOF, unterminated literals, deep nesting, stray tokens).
/// None may panic; parse failures are expected and fine.
#[test]
fn pinned_parser_regressions() {
    let cases = [
        "",
        " ",
        "--",
        "-- only a comment",
        "'",
        "'unterminated",
        "\"",
        "\"unterminated ident",
        "select",
        "select from",
        "select * from",
        "select * from t where",
        "select * from t limit",
        "select * from t limit 99999999999999999999999",
        "select a from t order by",
        "select f( from t",
        "select count(* from t",
        "select a over from t",
        "select max(x) over ( from t",
        "select max(x) over (rows between 1 preceding and) from t",
        "a between 1",
        "a between 1 and",
        "a not",
        "not",
        "a in ()",
        "a in (select)",
        "case",
        "case end",
        "case when a then",
        "1 + ",
        "1..2",
        ".5",
        "a.",
        ".a",
        "a . b . c",
        "9223372036854775808",           // i64::MAX + 1
        "-9223372036854775809",          // i64::MIN - 1
        "select 1 from t, where a = 1",  // dangling comma before keyword
        "with v as (select 1 from t)",   // CTE without body
        "with v as select 1 from t select * from v", // missing parens
        "DEFINE",
        "DEFINE r ON",
        "DEFINE r ON t CLUSTER BY",
        "DEFINE r ON t CLUSTER BY k SEQUENCE BY s AS",
        "DEFINE r ON t CLUSTER BY k SEQUENCE BY s AS (A WHERE 1 ACTION DELETE A",
        "DEFINE r ON t CLUSTER BY k SEQUENCE BY s AS (A, B) WHERE ACTION DELETE B",
        "DEFINE r ON t CLUSTER BY k SEQUENCE BY s AS (A, B) WHERE 1 ACTION",
        "DEFINE r ON t CLUSTER BY k SEQUENCE BY s AS (A, B) WHERE 1 ACTION MODIFY",
        "DEFINE r ON t CLUSTER BY k SEQUENCE BY s AS (A, B) WHERE a.rtime < 5 bogus_unit ACTION DELETE B",
    ];
    for c in cases {
        assert_no_panic(c);
    }
    // Deep nesting must yield a parse error, not a stack overflow. Found
    // by the generators above: each construct recurses in the descent.
    let deep = format!("{}1{}", "(".repeat(5000), ")".repeat(5000));
    assert_no_panic(&deep);
    assert!(parse_expr(&deep).is_err());
    let deep_not = format!("{}a", "not ".repeat(5000));
    assert_no_panic(&deep_not);
    assert!(parse_expr(&deep_not).is_err());
    let deep_neg = format!("{}1", "- ".repeat(5000));
    assert_no_panic(&deep_neg);
    let deep_cte = format!(
        "{}select a from t",
        "with v as (".repeat(5000) // unbalanced on purpose: error either way
    );
    assert_no_panic(&deep_cte);
    assert!(parse_query(&deep_cte).is_err());
    let deep_case = format!(
        "{}1{}",
        "case when ".repeat(2000),
        " then 1 else 0 end".repeat(2000)
    );
    assert_no_panic(&deep_case);
    let deep_rule_cond = format!(
        "DEFINE r ON t CLUSTER BY k SEQUENCE BY s AS (A, B) WHERE {}a.x = 1{} ACTION DELETE B",
        "(".repeat(5000),
        ")".repeat(5000)
    );
    assert_no_panic(&deep_rule_cond);
    assert!(parse_rule(&deep_rule_cond).is_err());
}
