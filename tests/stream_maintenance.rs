//! Seeded equivalence battery for standing queries (`dc-stream`).
//!
//! The subsystem's contract: folding a subscription's change feed over its
//! initial result reproduces a cold full re-execution at every epoch
//! vector. This suite drives K subscribers — covering all four maintenance
//! modes (scoped, ordered, aggregate, fallback) — through seeded random
//! append schedules on unsharded and sharded services, and after **every**
//! publish folds each subscriber's [`ChangeSet`] into its running
//! materialization and compares it against a cold re-execution of the same
//! query at that epoch vector. Appends to an irrelevant dimension table
//! must produce no notifications at all.
//!
//! Two failure-path cases ride along: a queue overflow must surface
//! [`StreamError::Lagged`] after the in-order prefix and recover through
//! [`QueryService::resync`]; unsubscribing mid-schedule must stop the feed
//! with [`StreamError::Closed`] while other subscriptions keep streaming.

use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::service::{
    ChangeSet, EpochVector, QueryRequest, QueryService, ServiceConfig, ShardConfig, StreamError,
    SubscribeOptions, SubscriptionHandle,
};
use deferred_cleansing::DeferredCleansingSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
    WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";

/// Subscription pool spanning every maintenance mode. `expect_mode` is
/// asserted when `Some`; entries with `None` exercise shapes whose
/// classification is an implementation choice — only equivalence matters.
const SUBS: &[(&str, &str, Option<&str>)] = &[
    ("app", "select epc, rtime from caser", Some("scoped")),
    (
        "app",
        "select epc, rtime, biz_loc from caser where rtime < 900",
        Some("scoped"),
    ),
    (
        "app",
        "select epc, rtime from caser order by rtime, epc limit 7",
        Some("ordered"),
    ),
    ("app", "select count(*) as n from caser", Some("aggregate")),
    (
        "app",
        "select biz_loc, count(*) as n, sum(rtime) as s from caser group by biz_loc",
        Some("aggregate"),
    ),
    (
        "app",
        "select avg(rtime) as a from caser",
        Some("aggregate"),
    ),
    ("app", "select distinct epc from caser", Some("fallback")),
    (
        "app",
        "select epc, count(*) as n from caser group by epc order by epc",
        None,
    ),
    // Rule-free application: no cleansing target, forced recompute-and-diff.
    (
        "norules",
        "select epc, rtime from caser where rtime < 600",
        Some("fallback"),
    ),
];

fn reads_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
    ]))
}

fn dim_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("loc", DataType::Str),
        Field::new("site", DataType::Str),
    ]))
}

fn seed_rows(rng: &mut StdRng, n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|_| {
            vec![
                Value::str(format!("e{}", rng.gen_range(0u8..8))),
                Value::Int(rng.gen_range(0i64..2000)),
                Value::str(format!("loc{}", rng.gen_range(0u8..3))),
            ]
        })
        .collect()
}

fn rows_of(batch: &Batch) -> Vec<Vec<Value>> {
    (0..batch.num_rows()).map(|i| batch.row(i)).collect()
}

fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| !o.is_eq())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

/// Which service topology a battery run drives.
#[derive(Clone, Copy)]
enum Topology {
    Unsharded,
    Sharded(usize),
}

fn start_service(topology: Topology, rng: &mut StdRng) -> Arc<QueryService> {
    let catalog = Arc::new(Catalog::new());
    catalog.register(Table::new(
        "caser",
        Batch::from_rows(reads_schema(), &seed_rows(rng, 60)).unwrap(),
    ));
    catalog.register(Table::new(
        "dim",
        Batch::from_rows(
            dim_schema(),
            &[vec![Value::str("loc0"), Value::str("siteA")]],
        )
        .unwrap(),
    ));
    let sys = DeferredCleansingSystem::with_catalog(catalog);
    sys.define_rule("app", DUP).unwrap();
    let config = ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    };
    Arc::new(match topology {
        Topology::Unsharded => QueryService::start(sys, config),
        Topology::Sharded(shards) => {
            QueryService::start_sharded(sys, config, ShardConfig::new(shards, "epc")).unwrap()
        }
    })
}

fn cold(svc: &QueryService, app: &str, sql: &str) -> Vec<Vec<Value>> {
    rows_of(&svc.execute(QueryRequest::new(app, sql)).unwrap().batch)
}

/// Drain exactly one change set (the publish just happened synchronously
/// under the ingest lock, so it is already queued) and verify the feed is
/// then idle.
fn take_one(handle: &SubscriptionHandle, ctx: &str) -> ChangeSet {
    let cs = handle
        .try_next()
        .unwrap_or_else(|e| panic!("{ctx}: feed errored: {e}"))
        .unwrap_or_else(|| panic!("{ctx}: expected one change set, feed idle"));
    assert!(
        handle.try_next().unwrap().is_none(),
        "{ctx}: more than one change set for a single publish"
    );
    cs
}

/// The battery: subscribe the whole pool, run a seeded append schedule
/// (mostly reads, occasionally the irrelevant dimension table), and check
/// fold-equals-cold for every subscriber after every publish.
fn run_battery(topology: Topology, seed: u64, appends: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let svc = start_service(topology, &mut rng);

    let mut handles = Vec::new();
    let mut folds: Vec<Vec<Vec<Value>>> = Vec::new();
    for (app, sql, expect_mode) in SUBS {
        let h = svc
            .subscribe(
                app,
                sql,
                SubscribeOptions::default().with_queue_capacity(appends + 4),
            )
            .unwrap();
        if let Some(mode) = expect_mode {
            assert_eq!(h.mode(), *mode, "classification of {sql:?}");
        }
        assert_eq!(
            canonical(rows_of(h.initial())),
            canonical(cold(&svc, app, sql)),
            "initial result of {sql:?} diverges from cold execution"
        );
        folds.push(rows_of(h.initial()));
        handles.push(h);
    }
    assert_eq!(svc.counters().subscriptions, SUBS.len() as u64);

    let mut reads_appends = 0u64;
    for step in 0..appends {
        if rng.gen_range(0u8..5) == 0 {
            // Dimension-table publish: irrelevant to every subscription —
            // epochs advance, no notifications.
            let batch = Batch::from_rows(
                dim_schema(),
                &[vec![
                    Value::str(format!("loc{}", rng.gen_range(0u8..3))),
                    Value::str(format!("site{step}")),
                ]],
            )
            .unwrap();
            svc.append("dim", batch).unwrap();
            for (i, h) in handles.iter().enumerate() {
                assert!(
                    h.try_next().unwrap().is_none(),
                    "step {step}: sub {i} notified for an irrelevant table"
                );
            }
            continue;
        }

        let n = rng.gen_range(1usize..6);
        let batch = Batch::from_rows(reads_schema(), &seed_rows(&mut rng, n)).unwrap();
        let outcome = svc.append("caser", batch).unwrap();
        reads_appends += 1;

        for (i, h) in handles.iter().enumerate() {
            let (app, sql, _) = SUBS[i];
            let ctx = format!("step {step} sub {i} ({sql})");
            let cs = take_one(h, &ctx);
            assert_eq!(cs.epochs, outcome.epochs, "{ctx}: epoch vector");
            let comment = cs.render_comment();
            assert!(
                comment.starts_with(&format!(
                    "-- stream: epochs={} mode={}",
                    outcome.epochs,
                    h.mode()
                )),
                "{ctx}: bad observability line: {comment}"
            );
            cs.apply(&mut folds[i])
                .unwrap_or_else(|e| panic!("{ctx}: fold diverged: {e}"));
            assert_eq!(
                canonical(folds[i].clone()),
                canonical(cold(&svc, app, sql)),
                "{ctx}: folded feed diverges from cold re-execution at {}",
                outcome.epochs
            );
        }
    }

    let counters = svc.counters();
    assert_eq!(counters.notifications, reads_appends * SUBS.len() as u64);
    assert_eq!(counters.dropped_for_lag, 0);
    // Fallback-mode subscriptions recompute on every relevant publish.
    assert!(counters.fallbacks >= 2 * reads_appends);
}

#[test]
fn fold_matches_cold_unsharded() {
    run_battery(Topology::Unsharded, 0xDC08_0001, 14);
}

#[test]
fn fold_matches_cold_sharded_1() {
    run_battery(Topology::Sharded(1), 0xDC08_0002, 12);
}

#[test]
fn fold_matches_cold_sharded_4() {
    run_battery(Topology::Sharded(4), 0xDC08_0004, 14);
}

/// Queue overflow: the in-order prefix is delivered, the gap surfaces as
/// [`StreamError::Lagged`], further maintenance is skipped (and counted)
/// while lagged, and a [`QueryService::resync`] restores the feed from a
/// fresh full result.
#[test]
fn lag_overflow_surfaces_then_resync_resumes() {
    let mut rng = StdRng::seed_from_u64(0x0DC0_81A6);
    let svc = start_service(Topology::Unsharded, &mut rng);
    let h = svc
        .subscribe(
            "app",
            "select epc, rtime from caser",
            SubscribeOptions::default().with_queue_capacity(1),
        )
        .unwrap();

    for _ in 0..4 {
        let batch = Batch::from_rows(reads_schema(), &seed_rows(&mut rng, 3)).unwrap();
        svc.append("caser", batch).unwrap();
    }

    // Capacity-1 queue: exactly one queued prefix survives, then the gap.
    let mut fold = rows_of(h.initial());
    let cs = h
        .try_next()
        .unwrap()
        .expect("queued prefix survives the lag");
    cs.apply(&mut fold).unwrap();
    assert!(matches!(h.try_next(), Err(StreamError::Lagged { missed }) if missed >= 1));
    assert!(h.is_lagged());
    assert!(svc.counters().dropped_for_lag >= 1);

    // Resync: fresh base equals a cold run at the current epoch vector.
    let (base, epochs) = svc.resync(&h).unwrap();
    assert_eq!(epochs, EpochVector(vec![4]));
    assert_eq!(
        canonical(rows_of(&base)),
        canonical(cold(&svc, "app", "select epc, rtime from caser"))
    );
    assert!(!h.is_lagged());

    // The feed resumes: the next publish delivers a change set that folds
    // the resynced base to the new cold result.
    let mut fold = rows_of(&base);
    let batch = Batch::from_rows(reads_schema(), &seed_rows(&mut rng, 2)).unwrap();
    let outcome = svc.append("caser", batch).unwrap();
    let cs = take_one(&h, "post-resync");
    assert_eq!(cs.epochs, outcome.epochs);
    cs.apply(&mut fold).unwrap();
    assert_eq!(
        canonical(fold),
        canonical(cold(&svc, "app", "select epc, rtime from caser"))
    );
}

/// Unsubscribing mid-schedule stops that feed with [`StreamError::Closed`]
/// while the surviving subscription keeps streaming correct deltas.
#[test]
fn unsubscribe_under_fire_stops_one_feed() {
    let mut rng = StdRng::seed_from_u64(0x0DC0_8F1E);
    let svc = start_service(Topology::Sharded(4), &mut rng);
    let keep = svc
        .subscribe(
            "app",
            "select biz_loc, count(*) as n from caser group by biz_loc",
            SubscribeOptions::default(),
        )
        .unwrap();
    let drop_me = svc
        .subscribe(
            "app",
            "select epc, rtime from caser",
            SubscribeOptions::default(),
        )
        .unwrap();

    let mut keep_fold = rows_of(keep.initial());
    let mut drop_fold = rows_of(drop_me.initial());
    for _ in 0..3 {
        let batch = Batch::from_rows(reads_schema(), &seed_rows(&mut rng, 4)).unwrap();
        svc.append("caser", batch).unwrap();
        take_one(&keep, "keep pre").apply(&mut keep_fold).unwrap();
        take_one(&drop_me, "drop pre")
            .apply(&mut drop_fold)
            .unwrap();
    }
    assert_eq!(
        canonical(drop_fold),
        canonical(cold(&svc, "app", "select epc, rtime from caser"))
    );

    svc.unsubscribe(&drop_me);
    let notifications_at_cut = svc.counters().notifications;

    for step in 0..3 {
        let batch = Batch::from_rows(reads_schema(), &seed_rows(&mut rng, 4)).unwrap();
        svc.append("caser", batch).unwrap();
        take_one(&keep, &format!("keep post {step}"))
            .apply(&mut keep_fold)
            .unwrap();
        assert!(matches!(drop_me.try_next(), Err(StreamError::Closed)));
    }
    assert_eq!(
        canonical(keep_fold),
        canonical(cold(
            &svc,
            "app",
            "select biz_loc, count(*) as n from caser group by biz_loc"
        ))
    );
    // Only the surviving subscription was notified after the cut.
    assert_eq!(svc.counters().notifications, notifications_at_cut + 3);
}
