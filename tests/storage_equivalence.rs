//! Storage-layer transparency: segmentation, zone-map pruning, and the
//! cleansed-sequence cache are pure optimizations.
//!
//! * A segmented table answers every query with byte-identical rows to the
//!   same data held monolithically, at any parallelism; the deterministic
//!   operator metrics agree except for the scan-level fetch counters that
//!   pruning is *supposed* to shrink.
//! * The cleansed-sequence cache returns byte-identical results cold,
//!   warm, and after an append invalidates part of it.

use dc_bench::harness::{run_variant, setup_with_parallelism, Variant};
use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::relational::sql::plan_sql;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PARALLELISMS: [usize; 3] = [1, 2, 8];
const CASES: u64 = 48;

fn rows_of(b: &Batch) -> Vec<Vec<Value>> {
    (0..b.num_rows()).map(|i| b.row(i)).collect()
}

/// Zero the counters that segment pruning legitimately changes: the
/// segment counters everywhere, and the pre-residual fetch counters of
/// scan nodes (a pruned scan fetches fewer rows; every operator above it
/// sees exactly the same stream).
fn normalize_metrics(m: &mut DeterministicMetrics) {
    m.segments_total = 0;
    m.segments_pruned = 0;
    m.segments_scanned = 0;
    if m.name == "ScanExec" {
        m.rows_in = 0;
        m.comparisons = 0;
    }
    for c in &mut m.children {
        normalize_metrics(c);
    }
}

fn normalize_stats(s: &mut ExecStats) {
    s.segments_total = 0;
    s.segments_pruned = 0;
    s.segments_scanned = 0;
    s.rows_scanned = 0;
}

fn random_reads(rng: &mut StdRng) -> Vec<Vec<Value>> {
    let n = rng.gen_range(1usize..200);
    (0..n)
        .map(|_| {
            vec![
                Value::str(format!("e{}", rng.gen_range(0u8..6))),
                Value::Int(rng.gen_range(0i64..2000)),
                Value::str(format!("loc{}", rng.gen_range(0u8..4))),
                Value::Int(rng.gen_range(-50i64..50)),
            ]
        })
        .collect()
}

fn random_query(rng: &mut StdRng) -> String {
    let lo = rng.gen_range(0i64..2000);
    let hi = lo + rng.gen_range(0i64..800);
    match rng.gen_range(0u8..5) {
        0 => format!("select epc, rtime from r where rtime < {lo}"),
        1 => format!("select epc, rtime, val from r where rtime >= {lo} and rtime < {hi}"),
        2 => format!(
            "select epc, rtime from r where epc = 'e{}'",
            rng.gen_range(0u8..6)
        ),
        3 => format!(
            "select epc, count(*) as n from r \
             where epc in ('e0', 'e{}') and rtime < {hi} group by epc",
            rng.gen_range(1u8..6)
        ),
        _ => format!(
            "select epc, rtime, val from r where val > {} and rtime < {hi}",
            rng.gen_range(-50i64..50)
        ),
    }
}

/// Segmented scan ≡ monolithic scan on random data, random segment sizes,
/// random index sets, and random range/point/IN queries, at P ∈ {1, 2, 8}.
#[test]
fn segmented_scan_equivalent_to_monolithic() {
    let schema = || {
        schema_ref(Schema::new(vec![
            Field::new("epc", DataType::Str),
            Field::new("rtime", DataType::Int),
            Field::new("biz_loc", DataType::Str),
            Field::new("val", DataType::Int),
        ]))
    };
    for case in 0..CASES {
        let seed = 0xDC51_0000 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = random_reads(&mut rng);
        let batch = Batch::from_rows(schema(), &rows).unwrap();
        let segment_rows = rng.gen_range(1usize..=rows.len().max(1) * 2);

        let mono_cat = Catalog::new();
        let mut mono = Table::new("r", batch.clone());
        let seg_cat = Catalog::new();
        let mut seg = Table::with_segment_rows("r", batch, segment_rows);
        for col in ["epc", "rtime"] {
            if rng.gen_bool(0.5) {
                mono.create_index(col).unwrap();
                seg.create_index(col).unwrap();
            }
        }
        mono_cat.register(mono);
        seg_cat.register(seg);

        let sql = random_query(&mut rng);
        let plan_m = plan_sql(&sql, &mono_cat).unwrap();
        let plan_s = plan_sql(&sql, &seg_cat).unwrap();

        let mut reference: Option<(Vec<Vec<Value>>, ExecStats, DeterministicMetrics)> = None;
        for p in PARALLELISMS {
            let opts = ExecOptions::with_parallelism(p);
            let mut ex_m = Executor::with_options(&mono_cat, opts);
            let out_m = ex_m.execute(&plan_m).unwrap();
            let mut ex_s = Executor::with_options(&seg_cat, opts);
            let out_s = ex_s.execute(&plan_s).unwrap();

            let ctx = format!("seed {seed} P={p} segment_rows={segment_rows} sql: {sql}");
            assert_eq!(rows_of(&out_m), rows_of(&out_s), "rows diverge: {ctx}");

            let mut stats_m = ex_m.stats;
            let mut stats_s = ex_s.stats;
            normalize_stats(&mut stats_m);
            normalize_stats(&mut stats_s);
            assert_eq!(stats_m, stats_s, "normalized stats diverge: {ctx}");

            let mut metrics_s = ex_s.metrics.as_ref().unwrap().deterministic();
            let mut metrics_m = ex_m.metrics.as_ref().unwrap().deterministic();
            normalize_metrics(&mut metrics_m);
            normalize_metrics(&mut metrics_s);
            assert_eq!(metrics_m, metrics_s, "normalized metrics diverge: {ctx}");

            // Across parallelism the segmented run is *strictly* identical.
            let current = (rows_of(&out_s), ex_s.stats, metrics_s);
            match &reference {
                None => reference = Some(current),
                Some(first) => {
                    assert_eq!(first.0, current.0, "rows vary with P: {ctx}");
                    assert_eq!(first.1, current.1, "stats vary with P: {ctx}");
                    assert_eq!(first.2, current.2, "metrics vary with P: {ctx}");
                }
            }
        }
    }
}

/// End-to-end cache invalidation on generated RFID data: warm hits, an
/// append evicts exactly the stale sequence, and the post-append answer is
/// byte-identical to a cold system over the same appended data.
#[test]
fn cache_invalidation_matches_cold_run() {
    let env = setup_with_parallelism(3, 10.0, 7, 2);
    let ds = &env.dataset;
    let t1 = ds.rtime_quantile(0.10);
    let sql = ds.q1(t1);

    let cold = run_variant(&env, 1, &sql, Variant::JoinBack).unwrap();
    assert!(cold.cache_misses > 0);
    let warm = run_variant(&env, 1, &sql, Variant::JoinBack).unwrap();
    assert!(warm.cache_hits > 0);
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(warm.result_rows, cold.result_rows);

    // Append one read for an EPC the query cleanses.
    let victim_sql = format!("select epc from caser where rtime <= {t1} limit 1");
    let victim = env.system.query_dirty(&victim_sql).unwrap().row(0)[0]
        .as_str()
        .unwrap()
        .to_string();
    let extra_row = vec![
        Value::str(victim.as_str()),
        Value::Int(t1),
        Value::str("rdr:late"),
        Value::str("gln:late"),
        Value::str("step000"),
    ];
    let schema = env.system.catalog().get("caser").unwrap().schema().clone();
    let extra = Batch::from_rows(schema.clone(), std::slice::from_ref(&extra_row)).unwrap();
    env.system.catalog().append("caser", extra).unwrap();

    let after = run_variant(&env, 1, &sql, Variant::JoinBack).unwrap();
    assert!(
        after.cache_invalidations >= 1,
        "append must evict the stale entry"
    );
    assert!(after.cache_hits > 0, "untouched sequences still hit");

    // A fresh environment over the same appended data agrees byte for byte.
    let fresh = setup_with_parallelism(3, 10.0, 7, 2);
    let extra = Batch::from_rows(schema, &[extra_row]).unwrap();
    fresh.system.catalog().append("caser", extra).unwrap();
    let (expect, _) = fresh
        .system
        .query_with_strategy(
            "rules-1",
            &sql,
            deferred_cleansing::rewrite::Strategy::JoinBack,
        )
        .unwrap();
    let (got, _) = env
        .system
        .query_with_strategy(
            "rules-1",
            &sql,
            deferred_cleansing::rewrite::Strategy::JoinBack,
        )
        .unwrap();
    assert_eq!(rows_of(&got), rows_of(&expect));
}
