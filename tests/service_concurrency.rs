//! Concurrency stress suite for the snapshot query service.
//!
//! K reader threads hammer a [`QueryService`] with seeded queries (mixed
//! strategies, cleanse cache enabled) while one appender publishes new
//! epochs. Every reply records the epoch it ran against; afterwards each
//! reply is re-executed **serially** on a fresh, cache-free system built
//! over that exact recorded snapshot, and the rows must match byte for
//! byte. That single oracle covers the whole contract:
//!
//! * snapshot isolation — a query never sees a torn catalog or rows from a
//!   different epoch;
//! * cache-epoch safety — the shared cleanse cache never serves an entry
//!   cleansed at another epoch (any cross-epoch pollution would diverge
//!   from the uncached replay);
//! * publication order — the final catalog equals the serial append order.

use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::rewrite::Strategy;
use deferred_cleansing::service::{QueryRequest, QueryService, ServiceConfig, Snapshot};
use deferred_cleansing::DeferredCleansingSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
    WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";

/// Query pool: cleansed threshold scans, an aggregate, and one rule-free
/// application (no rewrite) — all deterministic for a fixed snapshot.
const POOL: &[(&str, &str)] = &[
    ("app", "select epc, rtime from caser"),
    ("app", "select epc, rtime from caser where rtime < 900"),
    (
        "app",
        "select epc, rtime, biz_loc from caser where rtime < 1500",
    ),
    (
        "app",
        "select epc, count(*) as n from caser group by epc order by epc",
    ),
    ("norules", "select epc, rtime from caser where rtime < 600"),
];

const STRATEGIES: &[Strategy] = &[Strategy::Auto, Strategy::Expanded, Strategy::JoinBack];

fn reads_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
    ]))
}

fn seed_rows(rng: &mut StdRng, n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|_| {
            vec![
                Value::str(format!("e{}", rng.gen_range(0u8..4))),
                Value::Int(rng.gen_range(0i64..2000)),
                Value::str(format!("loc{}", rng.gen_range(0u8..3))),
            ]
        })
        .collect()
}

fn rows_of(batch: &Batch) -> Vec<Vec<Value>> {
    (0..batch.num_rows()).map(|i| batch.row(i)).collect()
}

/// One observed reply: which query, which strategy, which epoch, what rows.
struct Observation {
    pool_idx: usize,
    strategy: Strategy,
    epoch: u64,
    rows: Vec<Vec<Value>>,
}

/// Serial oracle: a fresh, cache-free system over the recorded snapshot.
fn serial_replay(snap: &Snapshot, pool_idx: usize, strategy: Strategy) -> Vec<Vec<Value>> {
    let sys = DeferredCleansingSystem::with_catalog(Arc::clone(&snap.catalog));
    sys.define_rule("app", DUP).unwrap();
    let (app, sql) = POOL[pool_idx];
    let (batch, _) = sys.query_with_strategy(app, sql, strategy).unwrap();
    rows_of(&batch)
}

fn run_session(k: usize, seed: u64, total_rounds: usize, appends: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = Arc::new(Catalog::new());
    catalog.register(Table::new(
        "caser",
        Batch::from_rows(reads_schema(), &seed_rows(&mut rng, 40)).unwrap(),
    ));
    let mut sys = DeferredCleansingSystem::with_catalog(catalog);
    sys.define_rule("app", DUP).unwrap();
    sys.enable_cleanse_cache(256);

    let svc = Arc::new(QueryService::start(
        sys,
        ServiceConfig {
            workers: k,
            queue_capacity: 2 * k + appends,
            ..ServiceConfig::default()
        },
    ));

    // Snapshot registry, epoch -> frozen snapshot. Epoch 0 is pre-append.
    let snapshots = Arc::new(Mutex::new(vec![svc.snapshot()]));

    // The appender: publishes `appends` epochs, recording each snapshot
    // and the batch it appended (for the final serial-order check).
    let appender = {
        let svc = Arc::clone(&svc);
        let snapshots = Arc::clone(&snapshots);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA11E_17D0);
        std::thread::spawn(move || {
            let mut appended = Vec::new();
            for _ in 0..appends {
                let n = rng.gen_range(1usize..6);
                let rows = seed_rows(&mut rng, n);
                let batch = Batch::from_rows(reads_schema(), &rows).unwrap();
                let snap = svc.append("caser", batch).unwrap().snapshot;
                snapshots.lock().unwrap().push(Arc::clone(&snap));
                appended.push(rows);
                std::thread::yield_now();
            }
            appended
        })
    };

    // K readers, each issuing its share of the seeded rounds.
    let rounds_per_reader = total_rounds.div_ceil(k);
    let readers: Vec<_> = (0..k)
        .map(|r| {
            let svc = Arc::clone(&svc);
            let mut rng = StdRng::seed_from_u64(seed ^ (0xBEAD_0000 + r as u64));
            std::thread::spawn(move || {
                let mut observed = Vec::new();
                for _ in 0..rounds_per_reader {
                    let pool_idx = rng.gen_range(0usize..POOL.len());
                    // The expanded rewrite needs a selective predicate to
                    // derive a context condition; unfiltered queries only
                    // run under Auto / JoinBack.
                    let strategy = if POOL[pool_idx].1.contains("where") {
                        STRATEGIES[rng.gen_range(0usize..STRATEGIES.len())]
                    } else {
                        [Strategy::Auto, Strategy::JoinBack][rng.gen_range(0usize..2)]
                    };
                    let (app, sql) = POOL[pool_idx];
                    let resp = svc
                        .execute(QueryRequest::new(app, sql).with_strategy(strategy))
                        .unwrap();
                    observed.push(Observation {
                        pool_idx,
                        strategy,
                        epoch: resp.service.snapshot_epoch,
                        rows: rows_of(&resp.batch),
                    });
                }
                observed
            })
        })
        .collect();

    let appended = appender.join().unwrap();
    let observations: Vec<Observation> = readers
        .into_iter()
        .flat_map(|r| r.join().unwrap())
        .collect();
    assert!(observations.len() >= total_rounds);
    assert_eq!(svc.epoch(), appends as u64);
    assert_eq!(svc.counters().appends, appends as u64);

    // Epochs are dense and every observed epoch has a frozen snapshot.
    let snapshots = snapshots.lock().unwrap();
    assert_eq!(snapshots.len(), appends + 1);
    for (i, s) in snapshots.iter().enumerate() {
        assert_eq!(s.epoch, i as u64);
    }

    // The oracle: every concurrent reply must be byte-identical to a serial
    // re-execution against its recorded epoch, uncached.
    for (i, obs) in observations.iter().enumerate() {
        let snap = &snapshots[obs.epoch as usize];
        let expected = serial_replay(snap, obs.pool_idx, obs.strategy);
        assert_eq!(
            obs.rows, expected,
            "reply {i} diverged from serial replay: k={k} seed={seed} \
             epoch={} query={:?} strategy={:?}",
            obs.epoch, POOL[obs.pool_idx], obs.strategy
        );
    }

    // Final catalog equals the serial append order applied to epoch 0.
    let expected_final = snapshots[0].catalog.overlay();
    for rows in &appended {
        expected_final
            .append("caser", Batch::from_rows(reads_schema(), rows).unwrap())
            .unwrap();
    }
    let got = svc.snapshot().catalog.get("caser").unwrap();
    let want = expected_final.get("caser").unwrap();
    assert_eq!(got.num_rows(), want.num_rows());
    assert_eq!(rows_of(got.data()), rows_of(want.data()));
}

#[test]
fn seeded_readers_match_serial_replay_k2() {
    run_session(2, 0xDC05_0002, 100, 12);
}

#[test]
fn seeded_readers_match_serial_replay_k4() {
    run_session(4, 0xDC05_0004, 100, 12);
}

#[test]
fn seeded_readers_match_serial_replay_k8() {
    run_session(8, 0xDC05_0008, 100, 12);
}

/// The cleanse cache must keep epochs apart even when the *same* join-back
/// query alternates between two snapshots — the ping-pong pattern that
/// would expose a key collision across epochs.
#[test]
fn cache_epoch_ping_pong_stays_correct() {
    let mut rng = StdRng::seed_from_u64(0xDC05_CAFE);
    let catalog = Arc::new(Catalog::new());
    catalog.register(Table::new(
        "caser",
        Batch::from_rows(reads_schema(), &seed_rows(&mut rng, 30)).unwrap(),
    ));
    let mut sys = DeferredCleansingSystem::with_catalog(catalog);
    sys.define_rule("app", DUP).unwrap();
    sys.enable_cleanse_cache(256);
    let svc = QueryService::start(sys, ServiceConfig::default());

    let old = svc.snapshot();
    svc.append(
        "caser",
        Batch::from_rows(reads_schema(), &seed_rows(&mut rng, 5)).unwrap(),
    )
    .unwrap();
    let new = svc.snapshot();
    assert_eq!((old.epoch, new.epoch), (0, 1));

    let sql = "select epc, rtime from caser where rtime < 1200";
    let expect_at = |snap: &Snapshot| {
        let fresh = DeferredCleansingSystem::with_catalog(Arc::clone(&snap.catalog));
        fresh.define_rule("app", DUP).unwrap();
        rows_of(&fresh.query("app", sql).unwrap())
    };
    let (want_old, want_new) = (expect_at(&old), expect_at(&new));
    assert_ne!(want_old, want_new, "append must change the answer");

    // Alternate epochs through the shared cache: each probe must validate
    // against its own snapshot's segments and never serve the other's.
    for _ in 0..4 {
        for (snap, want) in [(&old, &want_old), (&new, &want_new)] {
            let (batch, _) = svc
                .system()
                .query_snapshot(
                    &snap.catalog,
                    "app",
                    sql,
                    Strategy::JoinBack,
                    deferred_cleansing::core::QueryBudget::unlimited(),
                )
                .unwrap();
            assert_eq!(&rows_of(&batch), want);
        }
    }
}
