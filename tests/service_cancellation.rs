//! Deadline / row-limit / cancellation behavior of the query service.
//!
//! The contract under test: a tripped budget yields a **typed**
//! [`ServiceError::Aborted`] — never a panic, never partial rows — and an
//! immediate unbudgeted re-run of the same request succeeds with exactly
//! the rows an uncancelled serial run produces.

use deferred_cleansing::core::{AbortReason, QueryBudget};
use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::rewrite::Strategy;
use deferred_cleansing::service::{QueryRequest, QueryService, ServiceConfig, ServiceError};
use deferred_cleansing::DeferredCleansingSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
    WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";

fn reads_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
    ]))
}

/// A reads table big enough that cleansing does real work.
fn big_system(rows: usize) -> DeferredCleansingSystem {
    let mut rng = StdRng::seed_from_u64(0xDC05_ABCD);
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|_| {
            vec![
                Value::str(format!("e{}", rng.gen_range(0u16..200))),
                Value::Int(rng.gen_range(0i64..100_000)),
                Value::str(format!("loc{}", rng.gen_range(0u8..4))),
            ]
        })
        .collect();
    let catalog = Arc::new(Catalog::new());
    catalog.register(Table::new(
        "caser",
        Batch::from_rows(reads_schema(), &data).unwrap(),
    ));
    let sys = DeferredCleansingSystem::with_catalog(catalog);
    sys.define_rule("app", DUP).unwrap();
    sys
}

fn rows_of(batch: &Batch) -> Vec<Vec<Value>> {
    (0..batch.num_rows()).map(|i| batch.row(i)).collect()
}

const SQL: &str = "select epc, rtime from caser where rtime < 90000";

#[test]
fn zero_deadline_aborts_then_rerun_matches_uncancelled() {
    let svc = QueryService::start(big_system(3000), ServiceConfig::default());

    // Deadline anchored at submit time: a zero deadline is already expired
    // when the worker dispatches, so the abort is deterministic.
    let err = svc
        .execute(QueryRequest::new("app", SQL).with_deadline(Duration::ZERO))
        .unwrap_err();
    match &err {
        ServiceError::Aborted { reason, service } => {
            assert_eq!(*reason, AbortReason::DeadlineExceeded);
            assert_eq!(service.abort_reason, Some(AbortReason::DeadlineExceeded));
        }
        other => panic!("expected deadline abort, got: {other}"),
    }
    assert_eq!(svc.counters().aborted, 1);

    // The immediate re-run without a budget succeeds and matches a fresh
    // serial run on the same (unchanged, epoch-0) data.
    let resp = svc.execute(QueryRequest::new("app", SQL)).unwrap();
    let serial = big_system(3000).query("app", SQL).unwrap();
    assert_eq!(rows_of(&resp.batch), rows_of(&serial));
    assert_eq!(resp.service.snapshot_epoch, 0);
}

#[test]
fn row_limit_aborts_without_partial_rows() {
    let svc = QueryService::start(big_system(2000), ServiceConfig::default());

    let err = svc
        .execute(QueryRequest::new("app", SQL).with_row_limit(5))
        .unwrap_err();
    assert_eq!(err.abort_reason(), Some(AbortReason::RowLimitExceeded));
    // The typed error carries no batch: aborts are partial-result-free by
    // construction. Re-run clean and compare to serial.
    let resp = svc.execute(QueryRequest::new("app", SQL)).unwrap();
    let serial = big_system(2000).query("app", SQL).unwrap();
    assert_eq!(rows_of(&resp.batch), rows_of(&serial));
}

#[test]
fn default_budgets_apply_when_request_sets_none() {
    let sys = big_system(2000);
    let svc = QueryService::start(
        sys,
        ServiceConfig {
            default_row_limit: Some(5),
            ..ServiceConfig::default()
        },
    );
    let err = svc.execute(QueryRequest::new("app", SQL)).unwrap_err();
    assert_eq!(err.abort_reason(), Some(AbortReason::RowLimitExceeded));
    // A per-request budget overrides the default.
    let resp = svc
        .execute(QueryRequest::new("app", SQL).with_row_limit(u64::MAX))
        .unwrap();
    assert!(resp.batch.num_rows() > 5);
}

#[test]
fn cancelled_queued_query_aborts_and_rerun_succeeds() {
    // One worker: occupy it with a slow query so the victim is still
    // queued when the cancel lands — the abort is then deterministic.
    let svc = QueryService::start(
        big_system(4000),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let slow = svc
        .submit(QueryRequest::new("app", SQL).with_strategy(Strategy::JoinBack))
        .unwrap();
    let victim = svc.submit(QueryRequest::new("app", SQL)).unwrap();
    victim.cancel();

    match victim.wait() {
        Err(ServiceError::Aborted { reason, .. }) => {
            assert_eq!(reason, AbortReason::Cancelled)
        }
        Ok(_) => panic!("cancelled-before-dispatch query must not return rows"),
        Err(other) => panic!("unexpected error: {other}"),
    }
    slow.wait().unwrap();

    // Re-running the cancelled request immediately succeeds and matches.
    let resp = svc.execute(QueryRequest::new("app", SQL)).unwrap();
    let serial = big_system(4000).query("app", SQL).unwrap();
    assert_eq!(rows_of(&resp.batch), rows_of(&serial));
}

#[test]
fn cancel_token_trips_mid_execution() {
    // Drive the engine directly with a pre-tripped token at each budget
    // checkpoint style: pre-set, and set-after-start via a second thread.
    let sys = big_system(4000);
    let cancel = Arc::new(std::sync::atomic::AtomicBool::new(false));
    cancel.store(true, std::sync::atomic::Ordering::Relaxed);
    let budget = QueryBudget::unlimited().with_cancel(Arc::clone(&cancel));
    let err = sys
        .query_with_budget("app", SQL, Strategy::Auto, budget)
        .unwrap_err();
    assert!(matches!(
        err,
        deferred_cleansing::relational::error::Error::Aborted(AbortReason::Cancelled)
    ));
    // The system stays healthy after the abort.
    assert!(sys.query("app", SQL).is_ok());
}

#[test]
fn aborts_never_poison_the_cleanse_cache() {
    // Abort a join-back query mid-flight, then verify cached execution
    // still agrees with an uncached system: cache stores only happen after
    // a fully successful cleansing pass, so an abort must leave no torn
    // entries behind.
    let mut sys = big_system(1500);
    sys.enable_cleanse_cache(128);
    let svc = QueryService::start(sys, ServiceConfig::default());

    let _ = svc
        .execute(
            QueryRequest::new("app", SQL)
                .with_strategy(Strategy::JoinBack)
                .with_row_limit(3),
        )
        .unwrap_err();

    let warm = svc
        .execute(QueryRequest::new("app", SQL).with_strategy(Strategy::JoinBack))
        .unwrap();
    let clean = big_system(1500).query("app", SQL).unwrap();
    assert_eq!(rows_of(&warm.batch), rows_of(&clean));
}
