//! Regression suite for [`Batch::slice`] over selection vectors.
//!
//! A selected batch's logical rows are the selection entries, not the
//! physical rows; `slice(offset, len)` must therefore slice the
//! *selection*, never the columns. The oracle for every case here is
//! flatten-then-slice: `b.slice(o, l)` must equal `b.flatten().slice(o, l)`
//! row for row. The suite also pins the checked [`Batch::try_slice`]
//! contract: out-of-range windows return field-named errors instead of
//! panicking, on both flat and selected batches.

use deferred_cleansing::relational::prelude::*;

fn batch(n: i64) -> Batch {
    let schema = schema_ref(Schema::new(vec![
        Field::new("id", DataType::Int),
        Field::new("tag", DataType::Str),
    ]));
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Int(i), Value::str(format!("t{i}"))])
        .collect();
    Batch::from_rows(schema, &rows).unwrap()
}

fn rows_of(b: &Batch) -> Vec<Vec<Value>> {
    (0..b.num_rows()).map(|i| b.row(i)).collect()
}

/// Every (offset, len) window over a selected batch equals the same window
/// over the flattened batch.
#[test]
fn slice_of_selection_matches_flatten_oracle() {
    let base = batch(20);
    // An unordered, repeating selection — the hardest case: physical row
    // order, logical row order, and multiplicity all differ.
    let sel = vec![19u32, 3, 3, 11, 0, 7, 19, 2];
    let selected = base.with_selection(sel.clone());
    assert_eq!(selected.num_rows(), sel.len());
    let flat = selected.flatten();
    assert!(flat.is_flat());
    assert_eq!(rows_of(&selected), rows_of(&flat));

    for offset in 0..=sel.len() {
        for len in 0..=(sel.len() - offset) {
            let a = selected.slice(offset, len);
            let b = flat.slice(offset, len);
            assert_eq!(
                rows_of(&a),
                rows_of(&b),
                "slice({offset}, {len}) diverged from flatten oracle"
            );
            assert_eq!(a.num_rows(), len);
        }
    }
}

/// Slicing a slice composes: the selection window narrows each time and
/// still matches the flatten oracle.
#[test]
fn slice_of_slice_composes() {
    let base = batch(16);
    let selected = base.with_selection(vec![15, 1, 8, 8, 2, 13, 4, 6, 0, 10]);
    let once = selected.slice(2, 7); // logical rows 2..9
    let twice = once.slice(1, 4); // logical rows 3..7 of the original
    assert_eq!(rows_of(&twice), rows_of(&selected.flatten().slice(3, 4)));
    // And a third level, down to a single row.
    let thrice = twice.slice(3, 1);
    assert_eq!(rows_of(&thrice), rows_of(&selected.flatten().slice(6, 1)));
}

/// Empty windows are valid anywhere in range, including at the end.
#[test]
fn empty_slices_are_valid_at_every_offset() {
    for b in [batch(5), batch(5).with_selection(vec![4, 0, 2])] {
        for offset in 0..=b.num_rows() {
            let s = b.slice(offset, 0);
            assert_eq!(s.num_rows(), 0);
            assert_eq!(rows_of(&s), Vec::<Vec<Value>>::new());
        }
    }
}

/// `try_slice` errors name every field needed to debug the caller: offset,
/// len, logical row count, and the selection length when one is present.
#[test]
fn try_slice_errors_are_field_named() {
    let flat = batch(6);
    let err = flat.try_slice(4, 5).unwrap_err().to_string();
    assert!(err.contains("offset=4"), "missing offset: {err}");
    assert!(err.contains("offset+len=9"), "missing end: {err}");
    assert!(err.contains("rows=6"), "missing rows: {err}");

    let selected = batch(6).with_selection(vec![5, 1, 3]);
    let err = selected.try_slice(2, 2).unwrap_err().to_string();
    assert!(err.contains("rows=3"), "logical rows, not physical: {err}");
    assert!(
        err.contains("selection of 3 entries"),
        "missing selection length: {err}"
    );

    let err = flat.try_slice(usize::MAX, 2).unwrap_err().to_string();
    assert!(err.contains("overflows usize"), "missing overflow: {err}");

    // In-range windows on the same batches still succeed.
    assert_eq!(flat.try_slice(4, 2).unwrap().num_rows(), 2);
    assert_eq!(selected.try_slice(1, 2).unwrap().num_rows(), 2);
}
