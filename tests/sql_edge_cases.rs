//! Edge-case coverage for the SQL front end and executor against small,
//! hand-checkable inputs — the behaviours a DBMS user would trip over first.

use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::relational::sql::{parse_query, run_sql};
use std::sync::Arc;

fn catalog() -> Arc<Catalog> {
    let catalog = Arc::new(Catalog::new());
    let schema = schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
    ]));
    let rows = vec![
        vec![Value::str("e1"), Value::Int(10), Value::str("a")],
        vec![Value::str("e1"), Value::Int(20), Value::Null],
        vec![Value::str("e2"), Value::Int(30), Value::str("b")],
        vec![Value::str("e3"), Value::Int(40), Value::str("a")],
    ];
    let mut t = Table::new("r", Batch::from_rows(schema, &rows).unwrap());
    t.create_index("rtime").unwrap();
    catalog.register(t);
    catalog
}

#[test]
fn null_location_never_matches_equality_or_inequality() {
    let cat = catalog();
    let eq = run_sql("select epc from r where biz_loc = 'a'", &cat).unwrap();
    assert_eq!(eq.num_rows(), 2);
    let ne = run_sql("select epc from r where biz_loc != 'a'", &cat).unwrap();
    assert_eq!(ne.num_rows(), 1); // the NULL row matches neither
    let isnull = run_sql("select epc from r where biz_loc is null", &cat).unwrap();
    assert_eq!(isnull.num_rows(), 1);
}

#[test]
fn between_and_not_between() {
    let cat = catalog();
    let b = run_sql("select epc from r where rtime between 15 and 35", &cat).unwrap();
    assert_eq!(b.num_rows(), 2);
    let nb = run_sql("select epc from r where rtime not between 15 and 35", &cat).unwrap();
    assert_eq!(nb.num_rows(), 2);
}

#[test]
fn empty_result_aggregates() {
    let cat = catalog();
    let out = run_sql(
        "select count(*) as n, max(rtime) as mx, avg(rtime) as a from r where rtime > 999",
        &cat,
    )
    .unwrap();
    assert_eq!(out.num_rows(), 1);
    assert_eq!(out.row(0)[0], Value::Int(0));
    assert_eq!(out.row(0)[1], Value::Null);
    assert_eq!(out.row(0)[2], Value::Null);
}

#[test]
fn group_by_with_empty_input_yields_no_groups() {
    let cat = catalog();
    let out = run_sql(
        "select epc, count(*) as n from r where rtime > 999 group by epc",
        &cat,
    )
    .unwrap();
    assert_eq!(out.num_rows(), 0);
}

#[test]
fn order_by_desc_with_limit() {
    let cat = catalog();
    let out = run_sql("select rtime from r order by rtime desc limit 2", &cat).unwrap();
    assert_eq!(out.row(0)[0], Value::Int(40));
    assert_eq!(out.row(1)[0], Value::Int(30));
}

#[test]
fn limit_zero_and_oversized() {
    let cat = catalog();
    assert_eq!(
        run_sql("select * from r limit 0", &cat).unwrap().num_rows(),
        0
    );
    assert_eq!(
        run_sql("select * from r limit 999", &cat)
            .unwrap()
            .num_rows(),
        4
    );
}

#[test]
fn distinct_respects_nulls() {
    let cat = catalog();
    let out = run_sql("select distinct biz_loc from r", &cat).unwrap();
    assert_eq!(out.num_rows(), 3); // 'a', NULL, 'b'
}

#[test]
fn nested_ctes() {
    let cat = catalog();
    let out = run_sql(
        "with a as (select epc, rtime from r where rtime >= 20), \
              b as (select epc from a where rtime <= 30) \
         select count(*) as n from b",
        &cat,
    )
    .unwrap();
    assert_eq!(out.row(0)[0], Value::Int(2));
}

#[test]
fn window_default_frame_is_running() {
    // With ORDER BY and no frame, the default frame is UNBOUNDED PRECEDING
    // .. CURRENT ROW: a running aggregate.
    let cat = catalog();
    let out = run_sql(
        "select epc, rtime, sum(rtime) over (order by rtime) as running from r",
        &cat,
    )
    .unwrap();
    let running = out.column_by_name("running").unwrap();
    assert_eq!(running.int_at(0), Some(10));
    assert_eq!(running.int_at(3), Some(100));
}

#[test]
fn two_windows_one_partition_share_one_node() {
    let cat = catalog();
    let plan = deferred_cleansing::relational::sql::plan_sql(
        "select max(rtime) over (partition by epc order by rtime) as a, \
                min(rtime) over (partition by epc order by rtime) as b from r",
        &cat,
    )
    .unwrap();
    let rendered = plan.display_indent();
    assert_eq!(rendered.matches("Window").count(), 1, "{rendered}");
}

#[test]
fn division_produces_double_and_div_by_zero_is_null() {
    let cat = catalog();
    let out = run_sql(
        "select rtime / 4 as q, rtime / 0 as z from r where rtime = 10",
        &cat,
    )
    .unwrap();
    assert_eq!(out.row(0)[0], Value::Double(2.5));
    assert_eq!(out.row(0)[1], Value::Null);
}

#[test]
fn string_comparison_and_in_list() {
    let cat = catalog();
    let out = run_sql("select epc from r where epc > 'e1'", &cat).unwrap();
    assert_eq!(out.num_rows(), 2);
    let out = run_sql("select epc from r where epc in ('e1', 'e3')", &cat).unwrap();
    assert_eq!(out.num_rows(), 3);
    let out = run_sql("select epc from r where epc not in ('e1', 'e3')", &cat).unwrap();
    assert_eq!(out.num_rows(), 1);
}

#[test]
fn case_insensitive_keywords_and_identifiers() {
    let cat = catalog();
    let out = run_sql("SELECT EPC FROM R WHERE RTIME < 25 ORDER BY RTIME", &cat).unwrap();
    assert_eq!(out.num_rows(), 2);
}

#[test]
fn useful_parse_and_plan_errors() {
    let cat = catalog();
    let err = run_sql("select epc from r where", &cat).unwrap_err();
    assert_eq!(err.kind(), "parse");
    let err = run_sql("select nosuch from r", &cat).unwrap_err();
    assert!(err.to_string().contains("nosuch"));
    let err = run_sql("select epc from missing_table", &cat).unwrap_err();
    assert!(err.to_string().contains("missing_table"));
    // Ambiguity across a self-join must be reported, not guessed.
    let err = run_sql("select epc from r a, r b where a.rtime = b.rtime", &cat).unwrap_err();
    assert!(err.to_string().contains("ambiguous"), "{err}");
}

#[test]
fn parse_query_roundtrips_quoted_strings() {
    let q = parse_query("select epc from r where biz_loc = 'it''s here'").unwrap();
    assert!(format!("{:?}", q).contains("it's here"));
}

#[test]
fn aggregate_of_expression_and_alias_reference() {
    let cat = catalog();
    let out = run_sql(
        "select epc, sum(rtime * 2) as double_total from r group by epc order by epc",
        &cat,
    )
    .unwrap();
    assert_eq!(out.row(0)[1], Value::Int(60)); // e1: (10+20)*2
}
