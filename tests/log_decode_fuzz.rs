//! Corruption fuzzing for the durable log and segment decoders.
//!
//! The corpus is not synthetic: a real durable service (bootstrap, a rule
//! definition, several appends) writes a manifest, a shard commit log, and
//! columnar segment files, and the sweeps then mutate those exact bytes.
//! The contract under mutation is the same everywhere:
//!
//! * **never panic** — every failure is a typed [`LogError`] (or engine
//!   error), including on pure random bytes;
//! * **never silently wrong data** — a decoder either returns records that
//!   are byte-identical to a prefix of what was written, or refuses; a
//!   single flipped bit anywhere in a frame or a segment file is always
//!   refused by its checksum;
//! * **truncation is clean** — cutting the log at any byte recovers
//!   exactly the full frames before the cut, with a typed description of
//!   the torn tail.
//!
//! A handful of pinned regressions (oversized length prefix, unknown kind
//! byte, torn header, zero-length payload) keep the nastiest framing edge
//! cases from quietly regressing, and an end-to-end sweep drives bit
//! flips through full [`QueryService::recover`]: corruption must roll the
//! service back to a shorter durable prefix or refuse loudly — never
//! resurrect altered rows.

use deferred_cleansing::core::durable::{decode_record, recover_shard, COMMIT_LOG};
use deferred_cleansing::log::{
    decode_records, frame_record, read_log, LogDir, LogError, RECORD_HEADER_BYTES,
};
use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::service::{
    DurableOptions, QueryRequest, QueryService, ServiceConfig, MANIFEST_LOG,
};
use deferred_cleansing::DeferredCleansingSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
    WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";

const SCAN: &str = "select epc, rtime, biz_loc from caser";

const APPENDS: usize = 3;

fn reads_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
    ]))
}

fn seed_rows() -> Vec<Vec<Value>> {
    vec![
        vec![Value::str("e1"), Value::Int(0), Value::str("shelf")],
        vec![Value::str("e1"), Value::Int(60), Value::str("shelf")],
        vec![Value::str("e2"), Value::Int(10), Value::str("dock")],
        vec![Value::str("e3"), Value::Int(500), Value::str("gate")],
    ]
}

fn append_rows(i: usize) -> Vec<Vec<Value>> {
    vec![
        vec![
            Value::str(format!("e{}", i % 4)),
            Value::Int(300 * i as i64 + 7),
            Value::str("locA"),
        ],
        vec![
            Value::str(format!("e{}", (i + 1) % 4)),
            Value::Int(300 * i as i64 + 23),
            Value::str("locB"),
        ],
    ]
}

fn oracle_rows(e: usize) -> Vec<Vec<Value>> {
    let mut rows = seed_rows();
    for i in 0..e {
        rows.extend(append_rows(i));
    }
    rows
}

fn batch(rows: &[Vec<Value>]) -> Batch {
    Batch::from_rows(reads_schema(), rows).unwrap()
}

fn rows_of(b: &Batch) -> Vec<Vec<Value>> {
    (0..b.num_rows()).map(|i| b.row(i)).collect()
}

fn scratch(tag: &str) -> PathBuf {
    let base = std::env::var("DC_RECOVERY_WORKDIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    base.join(format!("dc-fuzz-{tag}-{}", std::process::id()))
}

/// Write the reference durable directory the sweeps draw their corpus
/// from: bootstrap + one rules version + `APPENDS` appends, no faults.
fn build_corpus_dir(tag: &str) -> PathBuf {
    let dir = scratch(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let catalog = Arc::new(Catalog::new());
    catalog.register(Table::new("caser", batch(&seed_rows())));
    let sys = DeferredCleansingSystem::with_catalog(catalog);
    let svc = QueryService::start_durable(
        sys,
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
        DurableOptions::new(&dir),
    )
    .unwrap();
    svc.define_rule("app", DUP).unwrap();
    for i in 0..APPENDS {
        svc.append("caser", batch(&append_rows(i))).unwrap();
    }
    drop(svc);
    dir
}

fn read_file(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Byte offsets where each full frame ends — the only clean cut points.
fn frame_boundaries(payloads: &[&[u8]]) -> Vec<usize> {
    let mut at = 0;
    let mut bounds = vec![0];
    for p in payloads {
        at += RECORD_HEADER_BYTES + p.len();
        bounds.push(at);
    }
    bounds
}

/// Flipping any single bit of a commit log must truncate the decoded
/// stream to a byte-identical prefix with a typed tail error — corrupt
/// bytes can shorten history, never alter it.
#[test]
fn commit_log_bit_flips_yield_prefix_and_typed_error() {
    let dir = build_corpus_dir("flip");
    for file in [dir.join(MANIFEST_LOG), dir.join("shard-0").join(COMMIT_LOG)] {
        let orig = read_file(&file);
        let (originals, tail) = decode_records(&orig);
        assert!(tail.is_none(), "corpus {} has a torn tail", file.display());
        assert!(originals.len() >= 3, "corpus {} too small", file.display());
        for i in 0..orig.len() {
            for bit in 0..8 {
                let mut bytes = orig.clone();
                bytes[i] ^= 1 << bit;
                let (recs, err) = decode_records(&bytes);
                assert!(
                    recs.len() < originals.len(),
                    "flip {i}.{bit} of {}: all {} records survived",
                    file.display(),
                    originals.len()
                );
                assert_eq!(
                    recs,
                    &originals[..recs.len()],
                    "flip {i}.{bit} of {}: decoded records are not a prefix",
                    file.display()
                );
                assert!(
                    err.is_some(),
                    "flip {i}.{bit} of {}: stream shortened without a tail error",
                    file.display()
                );
                // Surviving prefix records still decode as real records.
                for payload in recs {
                    decode_record(payload).unwrap();
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cutting the log at every byte offset recovers exactly the full frames
/// before the cut; a mid-frame cut reports a typed torn tail.
#[test]
fn commit_log_truncations_recover_the_full_frame_prefix() {
    let dir = build_corpus_dir("trunc");
    let orig = read_file(&dir.join("shard-0").join(COMMIT_LOG));
    let (originals, _) = decode_records(&orig);
    let bounds = frame_boundaries(&originals);
    assert_eq!(*bounds.last().unwrap(), orig.len());
    for cut in 0..=orig.len() {
        let (recs, err) = decode_records(&orig[..cut]);
        let full = bounds.iter().filter(|&&b| b <= cut).count() - 1;
        assert_eq!(recs.len(), full, "cut at {cut}");
        assert_eq!(recs, &originals[..full], "cut at {cut}: not a prefix");
        if bounds.contains(&cut) {
            assert!(err.is_none(), "cut at {cut} is a clean frame boundary");
        } else {
            assert!(
                matches!(err, Some(LogError::TruncatedRecord { .. })),
                "cut at {cut}: expected a torn-record error, got {err:?}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A columnar segment file refuses every single-bit flip and every strict
/// truncation: the whole-file checksum (or the magic / length floor)
/// catches them all.
#[test]
fn segment_file_rejects_every_bit_flip_and_truncation() {
    let dir = build_corpus_dir("seg");
    let seg_dir = dir.join("shard-0").join("seg");
    let seg_path = std::fs::read_dir(&seg_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .min()
        .expect("corpus wrote at least one segment file");
    let orig = read_file(&seg_path);
    decode_segment_file(&orig).unwrap();
    for i in 0..orig.len() {
        for bit in 0..8 {
            let mut bytes = orig.clone();
            bytes[i] ^= 1 << bit;
            assert!(
                decode_segment_file(&bytes).is_err(),
                "flip {i}.{bit}: corrupt segment file decoded successfully"
            );
        }
    }
    for cut in 0..orig.len() {
        assert!(
            decode_segment_file(&orig[..cut]).is_err(),
            "truncation to {cut} bytes decoded successfully"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded random bytes through every decoder entry point: any outcome is
/// fine except a panic.
#[test]
fn random_bytes_never_panic_any_decoder() {
    let mut rng = StdRng::seed_from_u64(0xDC10_F022);
    for case in 0..256 {
        let len = rng.gen_range(0usize..600);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.gen() as u8).collect();
        // Half the cases get a plausible record kind up front so the
        // payload decoders get past the first byte.
        if case % 2 == 0 && !bytes.is_empty() {
            bytes[0] = (case % 8) as u8;
        }
        let (recs, _) = decode_records(&bytes);
        for payload in recs {
            let _ = decode_record(payload);
        }
        let _ = decode_record(&bytes);
        let _ = decode_segment_file(&bytes);
    }
}

/// A directory whose commit log is random garbage must recover to a typed
/// error (or an explicit empty state), never a panic.
#[test]
fn recover_shard_survives_garbage_log() {
    let dir = scratch("garbage");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let mut rng = StdRng::seed_from_u64(0xDC10_6A2B);
    for _ in 0..32 {
        let len = rng.gen_range(0usize..256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen() as u8).collect();
        std::fs::write(dir.join(COMMIT_LOG), &bytes).unwrap();
        let log_dir = LogDir::create(&dir).unwrap();
        let _ = read_log(&log_dir, COMMIT_LOG);
        let _ = recover_shard(&log_dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pinned framing regressions: the specific shapes that once tempted the
/// decoder into allocating, looping, or trusting garbage.
#[test]
fn pinned_framing_regressions() {
    // Empty log: cleanly zero records.
    let (recs, err) = decode_records(&[]);
    assert!(recs.is_empty() && err.is_none());

    // Torn header: fewer bytes than a length prefix.
    let (recs, err) = decode_records(&[1, 2, 3]);
    assert!(recs.is_empty());
    assert!(matches!(err, Some(LogError::TruncatedRecord { .. })));

    // An absurd length prefix must be refused as framing garbage before
    // any allocation of that size is attempted.
    let mut oversized = u32::MAX.to_le_bytes().to_vec();
    oversized.extend_from_slice(&[0u8; 16]);
    let (recs, err) = decode_records(&oversized);
    assert!(recs.is_empty());
    assert!(matches!(err, Some(LogError::OversizedRecord { .. })));

    // A checksummed frame whose payload starts with an unknown kind:
    // framing accepts it, record decoding refuses it by kind.
    let framed = frame_record(&[0xEE, 1, 2, 3]);
    let (recs, err) = decode_records(&framed);
    assert_eq!(recs.len(), 1);
    assert!(err.is_none());
    assert!(matches!(
        decode_record(recs[0]),
        Err(LogError::BadKind { kind: 0xEE })
    ));

    // A zero-length payload frames fine but is no record.
    let empty_payload = frame_record(&[]);
    let (recs, err) = decode_records(&empty_payload);
    assert_eq!((recs.len(), err.is_none()), (1, true));
    assert!(decode_record(recs[0]).is_err());

    // Flipping a payload byte inside a valid frame is a checksum error.
    let mut framed = frame_record(&[1, 2, 3, 4]);
    let last = framed.len() - 1;
    framed[last] ^= 0x40;
    let (recs, err) = decode_records(&framed);
    assert!(recs.is_empty());
    assert!(matches!(err, Some(LogError::BadChecksum { offset: 0 })));
}

/// End to end: bit flips in the on-disk manifest or shard log must make
/// [`QueryService::recover`] either roll back to a genuine shorter prefix
/// of the history or refuse with a typed error — corrupted bytes never
/// surface as altered rows.
#[test]
fn corrupted_durable_dir_recovers_prefix_or_refuses() {
    let dir = build_corpus_dir("e2e");
    let mut rng = StdRng::seed_from_u64(0xDC10_E2E0);
    let oracles: Vec<Vec<Vec<Value>>> = (0..=APPENDS).map(oracle_rows).collect();
    for (victim, cases) in [
        (PathBuf::from(MANIFEST_LOG), 16usize),
        (Path::new("shard-0").join(COMMIT_LOG), 16),
    ] {
        let orig = read_file(&dir.join(&victim));
        for case in 0..cases {
            let copy = scratch(&format!(
                "e2e-case-{}-{case}",
                victim.display().to_string().replace(['/', '\\'], "_")
            ));
            let _ = std::fs::remove_dir_all(&copy);
            copy_dir(&dir, &copy);
            let mut bytes = orig.clone();
            let at = rng.gen_range(0usize..bytes.len());
            bytes[at] ^= 1 << rng.gen_range(0u32..8);
            std::fs::write(copy.join(&victim), &bytes).unwrap();
            match QueryService::recover(
                DurableOptions::new(&copy),
                ServiceConfig {
                    workers: 1,
                    ..ServiceConfig::default()
                },
            ) {
                Ok(svc) => {
                    let e = svc.durable_stats().unwrap().durable_epoch as usize;
                    assert!(
                        e <= APPENDS,
                        "corrupt {} byte {at}: epoch {e}",
                        victim.display()
                    );
                    let resp = svc.execute(QueryRequest::new("norules", SCAN)).unwrap();
                    assert_eq!(
                        rows_of(&resp.batch),
                        oracles[e],
                        "corrupt {} byte {at}: recovered rows are not the epoch-{e} prefix",
                        victim.display()
                    );
                }
                Err(err) => {
                    assert!(
                        err.to_string().contains("durable log"),
                        "corrupt {} byte {at}: untyped refusal: {err}",
                        victim.display()
                    );
                }
            }
            let _ = std::fs::remove_dir_all(&copy);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
