//! Fault-injection battery for the durable commit log.
//!
//! Every test follows the same script: run a fixed bootstrap + append
//! workload against a durable [`QueryService`] whose write path is wired
//! to a tick-budgeted [`FailPoint`], kill the writer after N ticks, then
//! recover the directory with a clean log handle and hold the result to
//! the durability contract:
//!
//! * recovery never panics — it either restores a consistent service or
//!   fails with a typed log error (only possible while bootstrap itself
//!   was still in flight);
//! * the recovered global epoch `E` satisfies `acked ≤ E ≤ attempted`:
//!   no acknowledged append is ever lost, and at most the one in-flight
//!   append may survive (its bytes were written but not yet fsynced —
//!   the test filesystem keeps written bytes, as a kind crash would);
//! * the recovered table is **byte-identical** to the in-memory oracle's
//!   first `E` epochs, and `query_as_of(e)` reproduces every earlier
//!   prefix `e ≤ E`;
//! * cleansing rules survive the restart, and the reopened log accepts
//!   new appends.
//!
//! The crash points are not guessed: a measurement run with an unlimited
//! fail point counts the ticks (1 per byte written, 1 per fsync / rename /
//! directory sync) each workload phase consumes, and the sweep then covers
//! **every** tick of the first append — hitting every boundary class
//! (mid-segment-file, between fsync and rename, mid-log-record, the
//! commit fsync, the manifest write) by construction — plus strided points
//! through bootstrap and the remaining appends.
//!
//! Scratch directories live under `DC_RECOVERY_WORKDIR` (CI points this at
//! a tmpfs) or the system temp dir; a per-crash-point TSV report lands in
//! `DC_RECOVERY_ARTIFACT_DIR` (default `target/repro/recovery`) for CI to
//! upload.

use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::rewrite::Strategy;
use deferred_cleansing::service::{
    DurableOptions, FailPoint, QueryRequest, QueryService, ServiceConfig, ShardConfig,
};
use deferred_cleansing::DeferredCleansingSystem;
use std::path::PathBuf;
use std::sync::Arc;

const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
    WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";

/// Full-width scan used for oracle comparisons (column order matches the
/// schema, so rows compare byte-for-byte against the oracle rows).
const SCAN: &str = "select epc, rtime, biz_loc from caser";

/// Appends in the scripted workload, two rows each.
const APPENDS: usize = 4;

fn reads_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
    ]))
}

fn seed_rows() -> Vec<Vec<Value>> {
    vec![
        vec![Value::str("e1"), Value::Int(0), Value::str("shelf")],
        vec![Value::str("e1"), Value::Int(60), Value::str("shelf")], // duplicate of row 0
        vec![Value::str("e2"), Value::Int(10), Value::str("dock")],
        vec![Value::str("e3"), Value::Int(500), Value::str("gate")],
        vec![Value::str("e2"), Value::Int(1900), Value::str("dock")],
        vec![Value::str("e4"), Value::Int(120), Value::str("shelf")],
    ]
}

/// The rows of append number `i` (0-based), deterministic so the oracle
/// and every crash-point run agree on the byte stream.
fn append_rows(i: usize) -> Vec<Vec<Value>> {
    vec![
        vec![
            Value::str(format!("e{}", i % 5)),
            Value::Int(200 * i as i64 + 17),
            Value::str("locA"),
        ],
        vec![
            Value::str(format!("e{}", (i + 2) % 5)),
            Value::Int(200 * i as i64 + 41),
            Value::str("locB"),
        ],
    ]
}

/// Raw rows the table must hold after `e` committed appends.
fn oracle_rows(e: usize) -> Vec<Vec<Value>> {
    let mut rows = seed_rows();
    for i in 0..e {
        rows.extend(append_rows(i));
    }
    rows
}

fn batch(rows: &[Vec<Value>]) -> Batch {
    Batch::from_rows(reads_schema(), rows).unwrap()
}

fn rows_of(b: &Batch) -> Vec<Vec<Value>> {
    (0..b.num_rows()).map(|i| b.row(i)).collect()
}

fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| !o.is_eq())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

fn build_system() -> DeferredCleansingSystem {
    let catalog = Arc::new(Catalog::new());
    catalog.register(Table::new("caser", batch(&seed_rows())));
    let sys = DeferredCleansingSystem::with_catalog(catalog);
    sys.define_rule("app", DUP).unwrap();
    sys
}

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    }
}

/// The duplicate-cleansed answer over the first `e` epochs, computed on a
/// fresh, cache-free, never-crashed system.
fn cleansed_oracle(e: usize) -> Vec<Vec<Value>> {
    let catalog = Arc::new(Catalog::new());
    catalog.register(Table::new("caser", batch(&oracle_rows(e))));
    let sys = DeferredCleansingSystem::with_catalog(catalog);
    sys.define_rule("app", DUP).unwrap();
    let (b, _) = sys
        .query_with_strategy("app", SCAN, Strategy::Auto)
        .unwrap();
    rows_of(&b)
}

fn scratch(tag: &str) -> PathBuf {
    let base = std::env::var("DC_RECOVERY_WORKDIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    base.join(format!("dc-recovery-{tag}-{}", std::process::id()))
}

fn assert_injected(e: &impl std::fmt::Display, what: &str, ticks: u64) {
    let msg = e.to_string();
    assert!(
        msg.contains("durable log"),
        "{what} at tick {ticks} must fail with a typed log error, got: {msg}"
    );
}

/// One crash point's outcome, a line in the battery artifact.
struct PointReport {
    ticks: u64,
    boot_crashed: bool,
    acked: u64,
    attempted: u64,
    /// Recovered global epoch; `None` when recovery itself (correctly)
    /// refused a half-bootstrapped directory.
    recovered: Option<u64>,
}

fn write_artifact(name: &str, reports: &[PointReport]) {
    let dir = std::env::var("DC_RECOVERY_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/repro/recovery"));
    let mut out = String::from("ticks\tboot_crashed\tacked\tattempted\trecovered\n");
    for r in reports {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            r.ticks,
            r.boot_crashed,
            r.acked,
            r.attempted,
            r.recovered.map_or("refused".to_string(), |e| e.to_string()),
        ));
    }
    // Artifacts are best-effort: a read-only checkout must not fail the
    // battery itself.
    let _ = std::fs::create_dir_all(&dir);
    let _ = std::fs::write(dir.join(format!("{name}.tsv")), out);
}

/// Tick checkpoints of the uninjected workload: ticks consumed by
/// bootstrap, then cumulative ticks after each append. The sweep domain.
fn measure(tag: &str, shards: Option<usize>) -> Vec<u64> {
    let dir = scratch(&format!("{tag}-measure"));
    let _ = std::fs::remove_dir_all(&dir);
    let fp = FailPoint::unlimited();
    let opts = DurableOptions::new(&dir).with_failpoint(Arc::clone(&fp));
    let svc = match shards {
        None => QueryService::start_durable(build_system(), config(), opts).unwrap(),
        Some(n) => QueryService::start_sharded_durable(
            build_system(),
            config(),
            ShardConfig::new(n, "epc").with_cleanse_cache(32),
            opts,
        )
        .unwrap(),
    };
    let mut checkpoints = vec![fp.ticks_requested()];
    for i in 0..APPENDS {
        svc.append("caser", batch(&append_rows(i))).unwrap();
        checkpoints.push(fp.ticks_requested());
    }
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
    checkpoints
}

/// The crash-point domain for one battery: every tick of the first append
/// (all boundary classes for the append path), strided coverage of
/// bootstrap and the later appends, and one uninjected control point.
fn sweep_points(checkpoints: &[u64], first_window_stride: usize) -> Vec<u64> {
    let t_boot = checkpoints[0];
    let t_first = checkpoints[1];
    let t_total = *checkpoints.last().unwrap();
    let mut points: Vec<u64> = Vec::new();
    points.extend((0..=t_boot).step_by((t_boot as usize / 16).max(1)));
    points.extend(((t_boot + 1)..=t_first).step_by(first_window_stride.max(1)));
    points.extend(((t_first + 1)..t_total).step_by(((t_total - t_first) as usize / 24).max(1)));
    points.push(t_total + 1_000); // control: never fires
    points.sort_unstable();
    points.dedup();
    points
}

/// Run the scripted workload with a crash after `ticks`, recover, and
/// check the durability contract. `shards: None` drives the unsharded
/// service with byte-identical prefix checks; `Some(n)` drives a sharded
/// one, comparing the shard union as a canonical multiset (concatenation
/// order across shards is unspecified).
fn crash_point(tag: &str, ticks: u64, shards: Option<usize>) -> PointReport {
    let dir = scratch(&format!("{tag}-p{ticks}"));
    let _ = std::fs::remove_dir_all(&dir);
    let fp = FailPoint::after_ticks(ticks);
    let opts = DurableOptions::new(&dir).with_failpoint(Arc::clone(&fp));
    let started = match shards {
        None => QueryService::start_durable(build_system(), config(), opts),
        Some(n) => QueryService::start_sharded_durable(
            build_system(),
            config(),
            ShardConfig::new(n, "epc").with_cleanse_cache(32),
            opts,
        ),
    };

    let (boot_crashed, acked, attempted) = match started {
        Err(e) => {
            assert_injected(&e, "bootstrap crash", ticks);
            (true, 0u64, 0u64)
        }
        Ok(svc) => {
            let mut acked = 0u64;
            let mut crashed = false;
            for i in 0..APPENDS {
                match svc.append("caser", batch(&append_rows(i))) {
                    Ok(_) => acked += 1,
                    Err(e) => {
                        assert_injected(&e, "append crash", ticks);
                        crashed = true;
                        break;
                    }
                }
            }
            if shards.is_none() {
                // Published epochs track acknowledged appends exactly: a
                // failed commit must publish nothing.
                assert_eq!(svc.epoch(), acked, "tick {ticks}: unpublished ack");
            }
            drop(svc);
            (false, acked, acked + crashed as u64)
        }
    };

    // Recovery runs on a clean handle — the "process" restarted.
    let recovered = QueryService::recover(DurableOptions::new(&dir), config());
    let report = if boot_crashed {
        match recovered {
            Err(e) => {
                assert_injected(&e, "recovery of a half-bootstrapped dir", ticks);
                PointReport {
                    ticks,
                    boot_crashed,
                    acked,
                    attempted,
                    recovered: None,
                }
            }
            Ok(svc) => {
                // Bootstrap's final record hit the disk before the crash
                // (written but unsynced): the service must come back as
                // exactly epoch 0, nothing more, nothing less.
                let stats = svc.durable_stats().unwrap();
                assert_eq!(stats.durable_epoch, 0, "tick {ticks}");
                check_recovered(&svc, 0, ticks, shards);
                PointReport {
                    ticks,
                    boot_crashed,
                    acked,
                    attempted,
                    recovered: Some(0),
                }
            }
        }
    } else {
        let svc = recovered.unwrap_or_else(|e| {
            panic!("tick {ticks} (acked {acked}): a crashed append must stay recoverable: {e}")
        });
        let stats = svc.durable_stats().unwrap();
        let e = stats.durable_epoch;
        assert!(
            acked <= e && e <= attempted,
            "tick {ticks}: recovered epoch {e} outside acked {acked} ..= attempted {attempted}"
        );
        assert_eq!(
            stats.epochs_recovered,
            e + 1,
            "tick {ticks}: history not dense"
        );
        assert!(stats.log_records_replayed > 0, "tick {ticks}");
        check_recovered(&svc, e, ticks, shards);

        // The reopened log accepts new appends, and the new epoch is
        // immediately time-travel-visible.
        svc.append(
            "caser",
            batch(&[vec![
                Value::str("ex"),
                Value::Int(9_999),
                Value::str("locX"),
            ]]),
        )
        .unwrap();
        let after = svc
            .query_as_of(&QueryRequest::new("norules", SCAN), e + 1)
            .unwrap();
        assert_eq!(
            after.batch.num_rows(),
            oracle_rows(e as usize).len() + 1,
            "tick {ticks}: post-recovery append not visible at epoch {}",
            e + 1
        );
        PointReport {
            ticks,
            boot_crashed,
            acked,
            attempted,
            recovered: Some(e),
        }
    };
    let _ = std::fs::remove_dir_all(&dir);
    report
}

/// Contract checks on a recovered service at global epoch `e`: the live
/// data equals the oracle prefix, rules survived, and every earlier epoch
/// is still queryable `AS OF`.
fn check_recovered(svc: &QueryService, e: u64, ticks: u64, shards: Option<usize>) {
    let want = oracle_rows(e as usize);
    let live: Vec<Vec<Value>> = (0..svc.shard_count())
        .flat_map(|i| rows_of(svc.shard_snapshot(i).catalog.get("caser").unwrap().data()))
        .collect();
    if shards.is_none() {
        // Unsharded recovery must reproduce the exact byte sequence of
        // the oracle prefix — same rows, same order.
        assert_eq!(
            live, want,
            "tick {ticks}: recovered prefix not byte-identical"
        );
    } else {
        assert_eq!(
            canonical(live),
            canonical(want.clone()),
            "tick {ticks}: recovered union diverged from the oracle prefix"
        );
    }

    // Cleansing rules were recovered from the log, not re-declared.
    let got = svc.execute(QueryRequest::new("app", SCAN)).unwrap();
    assert_eq!(
        canonical(rows_of(&got.batch)),
        canonical(cleansed_oracle(e as usize)),
        "tick {ticks}: cleansed answer diverged after recovery"
    );

    // Time travel across the whole recovered history.
    for past in 0..=e {
        let resp = svc
            .query_as_of(&QueryRequest::new("norules", SCAN), past)
            .unwrap();
        assert_eq!(
            canonical(rows_of(&resp.batch)),
            canonical(oracle_rows(past as usize)),
            "tick {ticks}: AS OF epoch {past} diverged from the oracle prefix"
        );
    }
    // One past the durable epoch must be a typed refusal, not data.
    let beyond = svc.query_as_of(&QueryRequest::new("norules", SCAN), e + 1);
    assert!(
        beyond.is_err(),
        "tick {ticks}: epoch {} should not exist yet",
        e + 1
    );
}

/// Shared battery driver: sweep the crash points, check the contract at
/// each, assert the sweep actually exercised every outcome class, and
/// drop the per-point report where CI can archive it.
fn run_battery(tag: &str, shards: Option<usize>, first_window_stride: usize) {
    let checkpoints = measure(tag, shards);
    let points = sweep_points(&checkpoints, first_window_stride);
    assert!(
        points.len() >= 48,
        "{tag}: {} crash points is too sparse a battery (checkpoints {checkpoints:?})",
        points.len()
    );

    let reports: Vec<PointReport> = points
        .iter()
        .map(|&n| crash_point(tag, n, shards))
        .collect();
    write_artifact(tag, &reports);

    // The sweep must have produced bootstrap crashes, first-append
    // crashes, late crashes, and the clean control — otherwise the tick
    // accounting regressed and the battery is shadow-boxing.
    assert!(
        reports.iter().any(|r| r.boot_crashed),
        "{tag}: no crash point landed inside bootstrap"
    );
    assert!(
        reports
            .iter()
            .any(|r| !r.boot_crashed && r.acked == 0 && r.attempted == 1),
        "{tag}: no crash point landed inside the first append"
    );
    assert!(
        reports.iter().any(|r| r.recovered == Some(APPENDS as u64)),
        "{tag}: the control point should recover the full history"
    );
    let distinct: std::collections::BTreeSet<u64> =
        reports.iter().filter_map(|r| r.recovered).collect();
    assert!(
        distinct.len() >= 3,
        "{tag}: recovered epochs {distinct:?} span too little of the history"
    );
}

/// Unsharded battery: every tick of the first append plus strided
/// bootstrap / tail coverage, byte-identical prefix recovery at each.
#[test]
fn crash_battery_recovers_longest_durable_prefix() {
    run_battery("unsharded", None, 1);
}

/// Two-shard battery: the same contract over per-shard logs bound by the
/// manifest's global commits, with the shard union as the oracle. The
/// first-append window is strided — the unsharded battery already visits
/// every byte boundary, this one adds the cross-log commit orderings.
#[test]
fn sharded_crash_battery_recovers_consistent_union() {
    run_battery("sharded", Some(2), 7);
}
