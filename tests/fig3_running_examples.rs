//! The paper's Figure 3 running examples, end-to-end through the SQL front
//! door: naive predicate pushdown returns wrong answers; the deferred
//! cleansing rewrites return the correct (empty) ones.

use deferred_cleansing::relational::batch::{schema_ref, Batch};
use deferred_cleansing::relational::schema::{Field, Schema};
use deferred_cleansing::relational::table::{Catalog, Table};
use deferred_cleansing::relational::value::{DataType, Value};
use deferred_cleansing::rewrite::Strategy;
use deferred_cleansing::DeferredCleansingSystem;
use std::sync::Arc;

fn reads_table(rows: &[(&str, i64, &str, &str)]) -> Table {
    let schema = schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
        Field::new("reader", DataType::Str),
    ]));
    let data: Vec<Vec<Value>> = rows
        .iter()
        .map(|(e, t, l, r)| {
            vec![
                Value::str(*e),
                Value::Int(*t),
                Value::str(*l),
                Value::str(*r),
            ]
        })
        .collect();
    Table::new("caser", Batch::from_rows(schema, &data).unwrap())
}

/// Figure 3(a): rule C1 (reader rule) on R1, queried by Q1 (rtime < t1).
#[test]
fn fig3a_c1_q1() {
    let t1 = 10_000i64;
    let catalog = Arc::new(Catalog::new());
    catalog.register(reads_table(&[
        ("e1", t1 - 120, "la", "readerY"), // r1: 2 min before t1
        ("e1", t1 + 120, "lb", "readerX"), // r2: 2 min after t1, readerX
    ]));
    let sys = DeferredCleansingSystem::with_catalog(catalog);
    sys.define_rule(
        "app",
        "DEFINE c1 ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
         WHERE B.reader = 'readerX' and B.rtime - A.rtime < 5 mins ACTION DELETE A",
    )
    .unwrap();

    let q1 = format!("select epc, rtime from caser where rtime < {t1}");
    // Applying C1 on R1 removes r1 (readerX read follows within 5 min), so
    // the correct answer to Q1[C1] is {}.
    for strategy in [
        Strategy::Auto,
        Strategy::Expanded,
        Strategy::JoinBack,
        Strategy::Naive,
    ] {
        let (batch, _) = sys.query_with_strategy("app", &q1, strategy).unwrap();
        assert_eq!(batch.num_rows(), 0, "{strategy:?}");
    }
    // Naive pushdown ("clean σ(R1)") would incorrectly return {r1}: with the
    // condition pushed first, r2 is out of scope and r1 survives cleansing.
    let dirty = sys.query_dirty(&q1).unwrap();
    assert_eq!(dirty.num_rows(), 1);
    assert_eq!(dirty.row(0)[1], Value::Int(t1 - 120));
}

/// Figure 3(b): rule C2 (duplicate rule without time constraint) on R2,
/// queried by Q2 (rtime > t2).
#[test]
fn fig3b_c2_q2() {
    let t2 = 50_000i64;
    let catalog = Arc::new(Catalog::new());
    catalog.register(reads_table(&[
        ("e2", t2 - 120, "locZ", "r"), // r3
        ("e2", t2 + 120, "locZ", "r"), // r4: duplicate of r3
    ]));
    let sys = DeferredCleansingSystem::with_catalog(catalog);
    sys.define_rule(
        "app",
        "DEFINE c2 ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (E, F) \
         WHERE E.biz_loc = F.biz_loc ACTION DELETE F",
    )
    .unwrap();

    let q2 = format!("select epc, rtime from caser where rtime > {t2}");
    // Applying C2 on R2 removes r4; the correct answer is {}.
    for strategy in [Strategy::Auto, Strategy::JoinBack, Strategy::Naive] {
        let (batch, _) = sys.query_with_strategy("app", &q2, strategy).unwrap();
        assert_eq!(batch.num_rows(), 0, "{strategy:?}");
    }
    // The expanded rewrite is infeasible: duplicates can be arbitrarily far
    // apart, so no context condition can be derived (paper Fig. 3(d)).
    assert!(sys
        .query_with_strategy("app", &q2, Strategy::Expanded)
        .is_err());
    // Direct pushdown would incorrectly return {r4}.
    let dirty = sys.query_dirty(&q2).unwrap();
    assert_eq!(dirty.num_rows(), 1);
}

/// §4.1's motivating example: duplicate detection via SQL/OLAP directly.
#[test]
fn sec41_duplicate_filter_in_plain_sql() {
    let catalog = Arc::new(Catalog::new());
    catalog.register(reads_table(&[
        ("e1", 10, "a", "r"),
        ("e1", 20, "a", "r"), // duplicate
        ("e1", 30, "b", "r"),
        ("e2", 5, "a", "r"),
    ]));
    let sys = DeferredCleansingSystem::with_catalog(catalog);
    // The exact statement from §4.1 (modulo table name and our SQL syntax).
    let sql = "with v1 as ( \
        select epc, rtime, biz_loc as loc_current, \
          max(biz_loc) over (partition by epc order by rtime asc \
            rows between 1 preceding and 1 preceding) as loc_before \
        from caser) \
        select epc, rtime from v1 \
        where loc_current != loc_before or loc_before is null";
    let out = sys.query_dirty(sql).unwrap();
    // The t=20 duplicate is filtered; border rows survive via IS NULL.
    assert_eq!(out.num_rows(), 3);
}

/// §4.4's rule-ordering example at the SQL level: [X Y X] cleaned by
/// cycle-then-duplicate yields [X]; duplicate-then-cycle yields [X X].
#[test]
fn sec44_rule_ordering() {
    let rows = [
        ("e1", 0i64, "X", "r"),
        ("e1", 10, "Y", "r"),
        ("e1", 20, "X", "r"),
    ];
    let cycle = "DEFINE cycle ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B, C) \
        WHERE A.biz_loc = C.biz_loc and A.biz_loc != B.biz_loc ACTION DELETE B";
    let dup = "DEFINE dup ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
        WHERE A.biz_loc = B.biz_loc ACTION DELETE B";

    let catalog = Arc::new(Catalog::new());
    catalog.register(reads_table(&rows));
    let sys = DeferredCleansingSystem::with_catalog(catalog);
    sys.define_rule("cycle_first", cycle).unwrap();
    sys.define_rule("cycle_first", dup).unwrap();
    sys.define_rule("dup_first", dup).unwrap();
    sys.define_rule("dup_first", cycle).unwrap();

    let q = "select rtime from caser";
    assert_eq!(sys.query("cycle_first", q).unwrap().num_rows(), 1);
    assert_eq!(sys.query("dup_first", q).unwrap().num_rows(), 2);
}
