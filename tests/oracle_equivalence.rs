//! The correctness contract of the whole system: for generated RFID data,
//! any query, any rule chain, and any rewrite strategy, the answer equals
//! the gold standard — the query run over a fully materialized Φ(R).

use deferred_cleansing::relational::batch::Batch;
use deferred_cleansing::relational::exec::Executor;
use deferred_cleansing::relational::plan::LogicalPlan;
use deferred_cleansing::relational::sql::{parse_query, plan_query};
use deferred_cleansing::relational::table::{Catalog, Table};
use deferred_cleansing::relational::value::Value;
use deferred_cleansing::rewrite::Strategy;
use deferred_cleansing::rfidgen::{generate_into, GenConfig};
use deferred_cleansing::rules::{cleansing_plan, RuleTemplate};
use deferred_cleansing::DeferredCleansingSystem;
use std::sync::Arc;

/// Materialize Φ(R) over `reads_table` and swap it into a catalog copy.
fn gold_catalog(catalog: &Catalog, rule_texts: &[String], reads_table: &str) -> Catalog {
    let templates: Vec<RuleTemplate> = rule_texts
        .iter()
        .map(|t| {
            deferred_cleansing::rules::compile_rule(
                &deferred_cleansing::sqlts::parse_rule(t).unwrap(),
            )
            .unwrap()
        })
        .collect();
    let refs: Vec<&RuleTemplate> = templates.iter().collect();
    let input = templates
        .first()
        .map(|t| t.def.from_table.clone())
        .unwrap_or_else(|| reads_table.to_string());
    let phi = cleansing_plan(LogicalPlan::scan(input), &refs, catalog).unwrap();
    let cleaned = Executor::new(catalog).execute(&phi).unwrap();

    let out = Catalog::new();
    for name in catalog.table_names() {
        if name != reads_table {
            let t = catalog.get(&name).unwrap();
            out.register(Table::new(&name, t.data().clone()));
        }
    }
    // Project the cleansed output down to the reads schema.
    let base = catalog.get(reads_table).unwrap();
    let n = base.schema().len();
    let cols: Vec<_> = (0..n).map(|i| cleaned.column(i).clone()).collect();
    let projected = Batch::new(base.schema().clone(), cols).unwrap();
    out.register(Table::new(reads_table, projected));
    out
}

fn gold_answer(catalog: &Catalog, sql: &str) -> Vec<Vec<Value>> {
    let plan = plan_query(&parse_query(sql).unwrap(), catalog).unwrap();
    Executor::new(catalog).execute(&plan).unwrap().sorted_rows()
}

fn check(sys: &DeferredCleansingSystem, app: &str, sql: &str, expect: &[Vec<Value>]) {
    for strategy in [
        Strategy::Auto,
        Strategy::Naive,
        Strategy::JoinBack,
        Strategy::Expanded,
    ] {
        match sys.query_with_strategy(app, sql, strategy) {
            Ok((batch, report)) => {
                assert_eq!(
                    batch.sorted_rows(),
                    expect,
                    "strategy {strategy:?} (chosen {}) diverges for:\n{sql}\nplan:\n{}",
                    report.chosen,
                    report.plan
                );
            }
            Err(e) => {
                assert!(
                    matches!(strategy, Strategy::Expanded),
                    "only Expanded may be infeasible; {strategy:?} failed: {e}"
                );
            }
        }
    }
}

/// Build a system over generated data with the first `n` benchmark rules.
fn prepared(
    scale: usize,
    pct: f64,
    seed: u64,
    n_rules: usize,
) -> (DeferredCleansingSystem, Catalog, Vec<String>) {
    let catalog = Arc::new(Catalog::new());
    let ds = generate_into(&catalog, GenConfig::tiny(scale, pct, seed)).unwrap();
    ds.materialize_missing_input(&catalog).unwrap();
    let rules = ds.benchmark_rules(n_rules);
    let sys = DeferredCleansingSystem::with_catalog(Arc::clone(&catalog));
    for r in &rules {
        sys.define_rule("app", r).unwrap();
    }
    let gold = gold_catalog(&catalog, &rules, "caser");
    (sys, gold, rules)
}

#[test]
fn selection_queries_match_gold_across_seeds() {
    for seed in [1, 2, 3] {
        let (sys, gold, _) = prepared(2, 25.0, seed, 3);
        let caser = sys.catalog().get("caser").unwrap();
        let tmin = caser.stats().column(1).unwrap().min.clone().unwrap();
        let tmax = caser.stats().column(1).unwrap().max.clone().unwrap();
        let (tmin, tmax) = (tmin.as_int().unwrap(), tmax.as_int().unwrap());
        let mid = (tmin + tmax) / 2;
        for sql in [
            format!("select epc, rtime, biz_loc from caser where rtime <= {mid}"),
            format!("select epc, rtime, biz_loc from caser where rtime >= {mid}"),
            format!(
                "select epc, rtime from caser where rtime >= {} and rtime <= {}",
                tmin + (tmax - tmin) / 4,
                mid
            ),
            "select epc, count(*) as n from caser group by epc".to_string(),
        ] {
            check(&sys, "app", &sql, &gold_answer(&gold, &sql));
        }
    }
}

#[test]
fn join_queries_match_gold() {
    let (sys, gold, _) = prepared(2, 30.0, 11, 2);
    let caser = sys.catalog().get("caser").unwrap();
    let tmax = caser.stats().column(1).unwrap().max.clone().unwrap();
    let t = tmax.as_int().unwrap() / 2;
    let sql = format!(
        "select l.site, count(distinct c.epc) as n \
         from caser c, locs l where c.biz_loc = l.gln and c.rtime <= {t} \
         group by l.site"
    );
    check(&sys, "app", &sql, &gold_answer(&gold, &sql));

    // Star query shaped like q2.
    let sql = format!(
        "select p.manufacturer, count(distinct c.reader) as readers \
         from caser c, epc_info i, product p \
         where c.epc = i.epc and i.product = p.product and c.rtime >= {t} \
         group by p.manufacturer"
    );
    check(&sys, "app", &sql, &gold_answer(&gold, &sql));
}

#[test]
fn olap_window_query_matches_gold() {
    let (sys, gold, _) = prepared(2, 20.0, 5, 3);
    let caser = sys.catalog().get("caser").unwrap();
    let tmax = caser.stats().column(1).unwrap().max.clone().unwrap();
    let t = tmax.as_int().unwrap() * 3 / 4;
    // q1 shape: dwell analysis.
    let sql = format!(
        "with v1 as (select biz_loc as cur, rtime, \
           max(rtime) over (partition by epc order by rtime \
             rows between 1 preceding and 1 preceding) as prev \
         from caser where rtime <= {t}) \
         select cur, avg(rtime - prev) as dwell from v1 \
         where prev is not null group by cur order by cur limit 20"
    );
    check(&sys, "app", &sql, &gold_answer(&gold, &sql));
}

#[test]
fn five_rule_chain_with_derived_input_matches_gold() {
    let (sys, gold, _) = prepared(2, 25.0, 7, 5);
    let caser = sys.catalog().get("caser").unwrap();
    let stats = caser.stats().column(1).unwrap();
    let t = (stats.min.clone().unwrap().as_int().unwrap()
        + stats.max.clone().unwrap().as_int().unwrap())
        / 2;
    // NOTE: the gold catalog's cleansed caseR was computed over the SAME
    // derived input (r_with_pallets), so this validates the whole missing-
    // rule pipeline including compensation.
    let sql = format!("select epc, rtime, biz_loc from caser where rtime <= {t}");
    check(&sys, "app", &sql, &gold_answer(&gold, &sql));
    let sql =
        format!("select biz_loc, count(*) as n from caser where rtime >= {t} group by biz_loc");
    check(&sys, "app", &sql, &gold_answer(&gold, &sql));
}

#[test]
fn anomaly_percentages_do_not_break_equivalence() {
    for pct in [0.0, 10.0, 40.0] {
        let (sys, gold, _) = prepared(2, pct, 13, 4);
        let caser = sys.catalog().get("caser").unwrap();
        let tmax = caser.stats().column(1).unwrap().max.clone().unwrap();
        let t = tmax.as_int().unwrap() / 3;
        let sql = format!("select epc, rtime from caser where rtime <= {t}");
        check(&sys, "app", &sql, &gold_answer(&gold, &sql));
    }
}

#[test]
fn cleansing_actually_removes_injected_anomalies() {
    // With the duplicate rule alone: cleansed row count is strictly below the
    // dirty count when duplicates were injected.
    let catalog = Arc::new(Catalog::new());
    let ds = generate_into(&catalog, GenConfig::tiny(2, 20.0, 3)).unwrap();
    assert!(ds.counts.duplicate > 0);
    let sys = DeferredCleansingSystem::with_catalog(Arc::clone(&catalog));
    sys.define_rule("app", &ds.benchmark_rules(2)[1]).unwrap();
    let dirty = sys.query_dirty("select count(*) as n from caser").unwrap();
    let clean = sys.query("app", "select count(*) as n from caser").unwrap();
    let d = dirty.row(0)[0].as_int().unwrap();
    let c = clean.row(0)[0].as_int().unwrap();
    assert!(c < d, "cleansed {c} !< dirty {d}");
    // Most injected duplicates are removed (other injections occasionally
    // land between a duplicate pair and break its adjacency).
    assert!(
        (d - c) as f64 >= 0.5 * ds.counts.duplicate as f64,
        "removed {} of {} injected duplicates",
        d - c,
        ds.counts.duplicate
    );
}
