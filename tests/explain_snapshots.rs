//! EXPLAIN snapshot tests.
//!
//! The rendered EXPLAIN text of every repro workload (q1/q2/q2' under each
//! rewrite strategy) is pinned against committed snapshots in
//! `tests/snapshots/`. The text is fully deterministic — the decision trace,
//! derived conditions, logical plan, and physical plan carry no wall-clock —
//! so any drift means a rewrite, costing, or lowering change that must be
//! reviewed. Run with `UPDATE_SNAPSHOTS=1` to regenerate after an
//! intentional change.

use dc_bench::harness::{setup_with_parallelism, BenchEnv};
use dc_core::Strategy;
use std::path::{Path, PathBuf};

const STRATEGIES: [Strategy; 4] = [
    Strategy::Auto,
    Strategy::Expanded,
    Strategy::JoinBack,
    Strategy::Naive,
];

fn snapshot_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(name)
}

fn assert_snapshot(name: &str, actual: &str) {
    let path = snapshot_path(name);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing snapshot {} — run `UPDATE_SNAPSHOTS=1 cargo test --test explain_snapshots` \
             to create it",
            path.display()
        )
    });
    if expected != actual {
        let diff_at = expected
            .lines()
            .zip(actual.lines())
            .position(|(e, a)| e != a)
            .unwrap_or_else(|| expected.lines().count().min(actual.lines().count()));
        panic!(
            "snapshot {} is stale (first differing line {}).\n\
             --- expected ---\n{expected}\n--- actual ---\n{actual}\n\
             If the plan change is intentional, regenerate with \
             `UPDATE_SNAPSHOTS=1 cargo test --test explain_snapshots`.",
            path.display(),
            diff_at + 1
        );
    }
}

fn env() -> BenchEnv {
    // Same small deterministic database as tests/parallel_equivalence.rs.
    setup_with_parallelism(3, 10.0, 7, 1)
}

/// EXPLAIN every strategy for one workload, concatenated into one document.
fn explain_all_strategies(env: &BenchEnv, sql: &str) -> String {
    let mut out = String::new();
    for strategy in STRATEGIES {
        out.push_str(&format!("== strategy {strategy:?} ==\n"));
        match env.system.explain("rules-3", sql, strategy) {
            Ok(text) => out.push_str(&text),
            Err(e) => out.push_str(&format!("error: {e}")),
        }
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

#[test]
fn q1_explain_snapshot() {
    let env = env();
    let sql = env.dataset.q1(env.dataset.rtime_quantile(0.10));
    assert_snapshot("explain_q1.txt", &explain_all_strategies(&env, &sql));
}

#[test]
fn q2_explain_snapshot() {
    let env = env();
    let sql = env.dataset.q2(env.dataset.rtime_quantile(0.90), 2);
    assert_snapshot("explain_q2.txt", &explain_all_strategies(&env, &sql));
}

#[test]
fn q2_prime_explain_snapshot() {
    let env = env();
    let sql = env.dataset.q2_prime(env.dataset.rtime_quantile(0.90), 3);
    assert_snapshot("explain_q2_prime.txt", &explain_all_strategies(&env, &sql));
}

/// The cleansed-sequence cache is visible in EXPLAIN ANALYZE: a cold
/// join-back run records only misses, the warm rerun answers every
/// sequence from the cache.
#[test]
fn q1_joinback_cache_snapshot() {
    let env = env();
    let sql = env.dataset.q1(env.dataset.rtime_quantile(0.10));
    let mut out = String::new();
    for pass in ["cold", "warm"] {
        let report = env
            .system
            .explain_report("rules-3", &sql, Strategy::JoinBack, true)
            .unwrap();
        out.push_str(&format!("== {pass} ==\n"));
        out.push_str(&report.text());
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out.push('\n');
    }
    assert!(out.contains("cleanse cache: hits="), "{out}");
    assert_snapshot("explain_analyze_q1_cache.txt", &out);
}

/// EXPLAIN ANALYZE is deterministic too once timing is excluded: the
/// per-operator row counts come from a fixed (scale, seed) database.
#[test]
fn q1_explain_analyze_snapshot() {
    let env = env();
    let sql = env.dataset.q1(env.dataset.rtime_quantile(0.10));
    let report = env
        .system
        .explain_report("rules-3", &sql, Strategy::Auto, true)
        .unwrap();
    let mut text = report.text();
    if !text.ends_with('\n') {
        text.push('\n');
    }
    assert_snapshot("explain_analyze_q1.txt", &text);
}
