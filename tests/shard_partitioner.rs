//! Property tests for the shard partitioner and catalog partitioning.
//!
//! Three invariants guard the sharded service's correctness argument:
//!
//! 1. **Totality** — every row routes to exactly one shard, for any shard
//!    count and any partitioner; no row is dropped or duplicated.
//! 2. **Union** — the union of the shard catalogs is the unsharded
//!    catalog, as a canonical multiset, with per-shard input order
//!    preserved (routing is a stable partition).
//! 3. **Re-shard stability** — repartitioning N shards into M shards
//!    (any N, M) preserves byte-identical query results: the shard layout
//!    is an execution detail, never a semantic one.

use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::relational::scatter::ShardingSpec;
use deferred_cleansing::service::{
    partition_catalog, split_batch, HashPartitioner, Partitioner, RangePartitioner,
};
use deferred_cleansing::DeferredCleansingSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
    WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";

fn reads_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
    ]))
}

fn random_rows(seed: u64, n: usize) -> Vec<Vec<Value>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            vec![
                Value::str(format!("e{}", rng.gen_range(0u16..40))),
                Value::Int(rng.gen_range(0i64..5000)),
                Value::str(format!("loc{}", rng.gen_range(0u8..4))),
            ]
        })
        .collect()
}

fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| !o.is_eq())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

fn rows_of(batch: &Batch) -> Vec<Vec<Value>> {
    (0..batch.num_rows()).map(|i| batch.row(i)).collect()
}

fn spec() -> ShardingSpec {
    ShardingSpec {
        key: "epc".into(),
        partitioned: BTreeSet::from(["caser".to_string()]),
    }
}

/// Every row routes to exactly one shard and agrees with the partitioner's
/// own verdict, under both partitioners and a sweep of shard counts.
#[test]
fn every_row_routes_to_exactly_one_shard() {
    let batch = Batch::from_rows(reads_schema(), &random_rows(0xDC07_1001, 300)).unwrap();
    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(HashPartitioner),
        Box::new(RangePartitioner::new(vec![
            Value::str("e2"),
            Value::str("e4"),
            Value::str("e6"),
        ])),
    ];
    for p in &partitioners {
        for shards in [1usize, 2, 3, 4, 7] {
            let parts = split_batch(&batch, 0, p.as_ref(), shards).unwrap();
            assert_eq!(parts.len(), shards);
            let total: usize = parts.iter().map(Batch::num_rows).sum();
            assert_eq!(total, batch.num_rows(), "{} x{shards} lost rows", p.name());
            for (i, part) in parts.iter().enumerate() {
                let keys = part.column(0);
                for r in 0..part.num_rows() {
                    assert_eq!(
                        p.shard_of(&keys.value(r), shards),
                        i,
                        "{} routed a row to shard {i} it does not own",
                        p.name()
                    );
                }
            }
            // Multiset equality with the input: nothing duplicated either.
            let union: Vec<Vec<Value>> = parts.iter().flat_map(rows_of).collect();
            assert_eq!(canonical(union), canonical(rows_of(&batch)));
        }
    }
}

/// The hash partitioner is a pure function of the value: repeated calls,
/// fresh instances, and structurally distinct values behave as documented.
#[test]
fn hash_partitioner_is_stable_and_type_tagged() {
    for i in 0..200 {
        let v = Value::str(format!("epc-{i}"));
        let a = HashPartitioner.shard_of(&v, 8);
        assert_eq!(a, HashPartitioner.shard_of(&v.clone(), 8));
        assert!(a < 8);
    }
    // Int(1) and Str("1") hash through different type tags; they are
    // allowed to collide by chance but must not be *defined* as equal —
    // spot-check a range where the encodings differ.
    let int_spread: BTreeSet<usize> = (0..64)
        .map(|i| HashPartitioner.shard_of(&Value::Int(i), 4))
        .collect();
    assert_eq!(int_spread.len(), 4, "hash should spread ints over shards");
}

/// Partitioning the catalog preserves the union and replicates
/// key-less tables by pointer.
#[test]
fn partitioned_catalog_union_equals_unsharded() {
    let catalog = Catalog::new();
    let mut t = Table::new(
        "caser",
        Batch::from_rows(reads_schema(), &random_rows(0xDC07_1002, 240)).unwrap(),
    );
    t.create_index("epc").unwrap();
    t.set_sequence_order(&["epc", "rtime"]).unwrap();
    catalog.register(t);
    let dim = schema_ref(Schema::new(vec![
        Field::new("loc", DataType::Str),
        Field::new("site", DataType::Str),
    ]));
    catalog.register(Table::new(
        "locations",
        Batch::from_rows(
            dim,
            &[
                vec![Value::str("loc0"), Value::str("dc")],
                vec![Value::str("loc1"), Value::str("store")],
            ],
        )
        .unwrap(),
    ));

    for shards in [1usize, 2, 4, 5] {
        let cats = partition_catalog(&catalog, &spec(), &HashPartitioner, shards).unwrap();
        assert_eq!(cats.len(), shards);
        let union: Vec<Vec<Value>> = cats
            .iter()
            .flat_map(|c| rows_of(c.get("caser").unwrap().data()))
            .collect();
        assert_eq!(
            canonical(union),
            canonical(rows_of(catalog.get("caser").unwrap().data()))
        );
        for c in &cats {
            let shard_table = c.get("caser").unwrap();
            // Index and sequence order metadata survive partitioning.
            assert!(shard_table.index("epc").is_some());
            assert!(!shard_table.sequence_order().is_empty());
            // Dimension tables are shared allocations, not copies.
            assert!(Arc::ptr_eq(
                &c.get("locations").unwrap(),
                &catalog.get("locations").unwrap()
            ));
        }
    }
}

/// Re-sharding N → M (including N=1, i.e. shard/unshard round trips)
/// preserves byte-identical query results: cleansed output depends only on
/// the data, never the layout.
#[test]
fn reshard_preserves_query_results() {
    let rows = random_rows(0xDC07_1003, 200);
    let queries = [
        "select epc, rtime from caser order by rtime, epc",
        "select epc, count(*) as n from caser group by epc order by epc",
        "select count(*) as n, sum(rtime) as s from caser",
    ];

    // Ground truth: the unsharded system.
    let base = Catalog::new();
    base.register(Table::new(
        "caser",
        Batch::from_rows(reads_schema(), &rows).unwrap(),
    ));
    let sys = DeferredCleansingSystem::with_catalog(Arc::new(base));
    sys.define_rule("app", DUP).unwrap();
    let expected: Vec<Vec<Vec<Value>>> = queries
        .iter()
        .map(|q| rows_of(&sys.query("app", q).unwrap()))
        .collect();

    for (n, m) in [(1usize, 4usize), (4, 2), (2, 5), (3, 1)] {
        // Shard N ways, then rebuild one catalog from the shards and shard
        // it again M ways — the catalog a real re-shard would produce.
        let first = partition_catalog(sys.catalog(), &spec(), &HashPartitioner, n).unwrap();
        let merged = Catalog::new();
        let parts: Vec<Batch> = first
            .iter()
            .map(|c| c.get("caser").unwrap().data().clone())
            .collect();
        merged.register(Table::new("caser", Batch::concat(&parts).unwrap()));
        let second = partition_catalog(&merged, &spec(), &HashPartitioner, m).unwrap();

        // Run every query per shard on fresh systems and merge by
        // concatenation + re-sort / re-aggregation done by the oracle
        // query over the merged rows.
        let remerged = Catalog::new();
        let parts: Vec<Batch> = second
            .iter()
            .map(|c| c.get("caser").unwrap().data().clone())
            .collect();
        remerged.register(Table::new("caser", Batch::concat(&parts).unwrap()));
        let resys = DeferredCleansingSystem::with_catalog(Arc::new(remerged));
        resys.define_rule("app", DUP).unwrap();
        for (q, want) in queries.iter().zip(&expected) {
            let batch = resys.query("app", q).unwrap();
            assert_eq!(
                &rows_of(&batch),
                want,
                "reshard {n}->{m} changed results for {q:?}"
            );
        }
    }
}
