//! Table 1 of the paper, asserted programmatically: the expanded (context)
//! conditions derived for q1 and q2 with respect to each of the five rules.
//!
//! Paper values (with t1 = 5, t2 = 5, t3 = 20 minutes; see DESIGN.md for the
//! t2 discrepancy in the paper):
//!
//! | rule      | q1                    | q2                       |
//! |-----------|-----------------------|--------------------------|
//! | reader    | rtime <= T1 + 5 min   | rtime >= T2              |
//! | duplicate | rtime <= T1           | rtime >= T2 - 5 min (*)  |
//! | replacing | rtime <= T1 + 20 min  | rtime >= T2              |
//! | cycle     | {}                    | {}                       |
//! | missing   | {}                    | rtime >= T2 (**)         |
//!
//! (*) the paper prints "T2+10min", which cannot be a sound lower bound for
//! a context preceding the target; we assert the sound derivation.
//! (**) the paper's missing rule gets its q2 condition from sub-rule r2; our
//! analysis derives exactly that for r2 and is conservatively infeasible for
//! r1 (its sequence-key constraint sits under an OR — see DESIGN.md).

use dc_bench::experiments::table1;

#[test]
fn table1_matches_paper() {
    let rows = table1(3, 2006);
    let find = |name: &str| rows.iter().find(|r| r.rule == name).unwrap();

    // reader / q1: rtime < T1 + 300 AND reader = 'readerX'.
    let reader = find("reader");
    let q1 = reader.q1_condition.as_ref().unwrap();
    assert!(q1.contains("readerX"), "{q1}");
    assert!(q1.contains("rtime <"), "{q1}");
    // reader / q2: rtime >= T2 (plus the reader conjunct).
    let q2 = reader.q2_condition.as_ref().unwrap();
    assert!(q2.contains("rtime >="), "{q2}");

    // duplicate / q1: rtime <= T1.
    let dup = find("duplicate");
    assert!(dup.q1_condition.as_ref().unwrap().contains("rtime <="));
    // duplicate / q2: rtime > T2 - 300 (sound version of the paper's cell).
    assert!(dup.q2_condition.as_ref().unwrap().contains("rtime >"));

    // replacing: bounded on both sides.
    let rep = find("replacing");
    assert!(rep.q1_condition.is_some());
    assert!(rep.q2_condition.is_some());

    // cycle: infeasible for both (the context following the target is
    // unbounded for q1; the one preceding it is unbounded for q2).
    let cycle = find("cycle");
    assert!(cycle.q1_condition.is_none());
    assert!(cycle.q2_condition.is_none());

    // missing r2: infeasible for q1, rtime >= T2 for q2.
    let r2 = find("missing_r2");
    assert!(r2.q1_condition.is_none());
    assert!(r2.q2_condition.as_ref().unwrap().contains("rtime >="));
}

#[test]
fn offsets_match_rule_constants() {
    // Verify the numeric offsets: reader expands by exactly t2 = 300 s and
    // replacing by t3 = 1200 s beyond T1.
    let rows = table1(3, 7);
    let reader_q1 = rows
        .iter()
        .find(|r| r.rule == "reader")
        .unwrap()
        .q1_condition
        .as_ref()
        .unwrap()
        .clone();
    let replacing_q1 = rows
        .iter()
        .find(|r| r.rule == "replacing")
        .unwrap()
        .q1_condition
        .as_ref()
        .unwrap()
        .clone();
    let extract = |s: &str| -> i64 {
        s.split(['<', '='])
            .filter_map(|t| t.trim().trim_end_matches(')').parse::<i64>().ok())
            .next_back()
            .unwrap()
    };
    let t_reader = extract(&reader_q1);
    let t_replacing = extract(&replacing_q1);
    assert_eq!(t_replacing - t_reader, 1200 - 300);
}
