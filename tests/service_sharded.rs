//! Scatter-gather equivalence suite for the sharded query service.
//!
//! K reader threads hammer a sharded [`QueryService`] (per-shard cleanse
//! caches enabled, mixed strategies) while one appender publishes routed
//! epochs. Every reply records the [`EpochVector`] it ran against;
//! afterwards each reply is re-executed **serially and unsharded** on a
//! fresh, cache-free system over the union of the shard snapshots at that
//! exact epoch vector, and the rows must match — byte for byte under
//! ORDER BY, as a canonical multiset otherwise (concatenation order across
//! shards is explicitly unspecified). That single oracle covers the whole
//! sharded contract:
//!
//! * per-shard snapshot isolation — no shard executor ever sees a torn
//!   catalog;
//! * scatter soundness — decomposed plans (partial aggregates, merge
//!   sorts, limit pushdown) reproduce the unsharded answer;
//! * shard-salted cache safety — a shard-local cleanse cache never serves
//!   rows cleansed on another shard or another epoch;
//! * routing totality — every appended row lands on exactly one shard and
//!   the union of the shards is the unsharded catalog.
//!
//! The shard and worker counts are CI-matrix knobs: `DC_TEST_SHARDS`
//! (comma list, default `1,2,4`) and `DC_TEST_WORKERS` (default `4`).

use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::rewrite::Strategy;
use deferred_cleansing::service::{
    DurableOptions, EpochVector, QueryRequest, QueryService, ServiceConfig, ShardConfig, Snapshot,
};
use deferred_cleansing::DeferredCleansingSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, Mutex};

const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
    WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B";

/// Query pool spanning every scatter decomposition: shard-complete scans,
/// key-grouped aggregates (shard-complete), global aggregates (partial
/// lowering), ORDER BY (k-way merge), LIMIT pushdown, and a rule-free
/// application.
const POOL: &[(&str, &str)] = &[
    ("app", "select epc, rtime from caser"),
    ("app", "select epc, rtime from caser where rtime < 900"),
    (
        "app",
        "select epc, count(*) as n from caser group by epc order by epc",
    ),
    ("app", "select epc, rtime from caser order by rtime, epc"),
    (
        "app",
        "select count(*) as n, sum(rtime) as s, avg(rtime) as a from caser",
    ),
    (
        "app",
        "select epc, rtime from caser where rtime < 1500 order by rtime, epc limit 7",
    ),
    ("norules", "select epc, rtime from caser where rtime < 600"),
];

const STRATEGIES: &[Strategy] = &[Strategy::Auto, Strategy::Expanded, Strategy::JoinBack];

fn env_usize_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn reads_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
    ]))
}

fn seed_rows(rng: &mut StdRng, n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|_| {
            vec![
                Value::str(format!("e{}", rng.gen_range(0u8..8))),
                Value::Int(rng.gen_range(0i64..2000)),
                Value::str(format!("loc{}", rng.gen_range(0u8..3))),
            ]
        })
        .collect()
}

fn rows_of(batch: &Batch) -> Vec<Vec<Value>> {
    (0..batch.num_rows()).map(|i| batch.row(i)).collect()
}

/// One observed reply: which query, which strategy, which epoch vector,
/// what rows.
struct Observation {
    pool_idx: usize,
    strategy: Strategy,
    epochs: EpochVector,
    rows: Vec<Vec<Value>>,
}

/// The unsharded catalog equivalent to the shard snapshots at one epoch
/// vector: shard-major concatenation of the partitioned table over shared
/// dimension tables. This is exactly the data the scattered query saw.
fn union_catalog(snaps: &[Arc<Snapshot>]) -> CatalogRef {
    let cat = snaps[0].catalog.overlay();
    let parts: Vec<Batch> = snaps
        .iter()
        .map(|s| s.catalog.get("caser").unwrap().data().clone())
        .collect();
    cat.register(Table::new("caser", Batch::concat(&parts).unwrap()));
    Arc::new(cat)
}

/// Serial oracle: a fresh, cache-free, **unsharded** system over the union
/// of the recorded shard snapshots.
fn serial_replay(union: &CatalogRef, pool_idx: usize, strategy: Strategy) -> Vec<Vec<Value>> {
    let sys = DeferredCleansingSystem::with_catalog(Arc::clone(union));
    sys.define_rule("app", DUP).unwrap();
    let (app, sql) = POOL[pool_idx];
    let (batch, _) = sys.query_with_strategy(app, sql, strategy).unwrap();
    rows_of(&batch)
}

fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| !o.is_eq())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

fn run_session(shards: usize, workers: usize, seed: u64, total_rounds: usize, appends: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = Arc::new(Catalog::new());
    catalog.register(Table::new(
        "caser",
        Batch::from_rows(reads_schema(), &seed_rows(&mut rng, 60)).unwrap(),
    ));
    let sys = DeferredCleansingSystem::with_catalog(catalog);
    sys.define_rule("app", DUP).unwrap();

    let svc = Arc::new(
        QueryService::start_sharded(
            sys,
            ServiceConfig {
                workers,
                queue_capacity: 2 * workers + appends,
                ..ServiceConfig::default()
            },
            ShardConfig::new(shards, "epc").with_cleanse_cache(256),
        )
        .unwrap(),
    );
    assert_eq!(svc.shard_count(), shards);

    // Per-shard snapshot registries, epoch -> frozen snapshot. The
    // appender is the only publisher, so after each append it can record
    // every shard's current snapshot without missing an epoch.
    let registries: Arc<Vec<Mutex<Vec<Arc<Snapshot>>>>> = Arc::new(
        (0..shards)
            .map(|i| Mutex::new(vec![svc.shard_snapshot(i)]))
            .collect(),
    );

    // The appender: publishes `appends` routed batches, recording each
    // shard's snapshot history and the rows it appended.
    let appender = {
        let svc = Arc::clone(&svc);
        let registries = Arc::clone(&registries);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA11E_17D0);
        std::thread::spawn(move || {
            let mut appended = Vec::new();
            for _ in 0..appends {
                let n = rng.gen_range(1usize..6);
                let rows = seed_rows(&mut rng, n);
                let batch = Batch::from_rows(reads_schema(), &rows).unwrap();
                svc.append("caser", batch).unwrap();
                for (i, reg) in registries.iter().enumerate() {
                    let snap = svc.shard_snapshot(i);
                    let mut reg = reg.lock().unwrap();
                    if reg.last().unwrap().epoch < snap.epoch {
                        reg.push(snap);
                    }
                }
                appended.push(rows);
                std::thread::yield_now();
            }
            appended
        })
    };

    // K readers, each issuing its share of the seeded rounds.
    let rounds_per_reader = total_rounds.div_ceil(workers);
    let readers: Vec<_> = (0..workers)
        .map(|r| {
            let svc = Arc::clone(&svc);
            let mut rng = StdRng::seed_from_u64(seed ^ (0xBEAD_0000 + r as u64));
            std::thread::spawn(move || {
                let mut observed = Vec::new();
                for _ in 0..rounds_per_reader {
                    let pool_idx = rng.gen_range(0usize..POOL.len());
                    // The expanded rewrite needs a selective predicate to
                    // derive a context condition; unfiltered queries only
                    // run under Auto / JoinBack.
                    let strategy = if POOL[pool_idx].1.contains("where") {
                        STRATEGIES[rng.gen_range(0usize..STRATEGIES.len())]
                    } else {
                        [Strategy::Auto, Strategy::JoinBack][rng.gen_range(0usize..2)]
                    };
                    let (app, sql) = POOL[pool_idx];
                    let resp = svc
                        .execute(QueryRequest::new(app, sql).with_strategy(strategy))
                        .unwrap();
                    assert_eq!(resp.service.epochs.shards(), svc.shard_count());
                    observed.push(Observation {
                        pool_idx,
                        strategy,
                        epochs: resp.service.epochs.clone(),
                        rows: rows_of(&resp.batch),
                    });
                }
                observed
            })
        })
        .collect();

    let appended = appender.join().unwrap();
    let observations: Vec<Observation> = readers
        .into_iter()
        .flat_map(|r| r.join().unwrap())
        .collect();
    assert!(observations.len() >= total_rounds);
    assert_eq!(svc.counters().appends, appends as u64);

    // Per-shard epochs are dense and fully recorded.
    for (i, reg) in registries.iter().enumerate() {
        let reg = reg.lock().unwrap();
        assert_eq!(reg.last().unwrap().epoch, svc.shard_snapshot(i).epoch);
        for (e, s) in reg.iter().enumerate() {
            assert_eq!(s.epoch, e as u64, "shard {i} epoch history not dense");
        }
    }

    // The oracle: every concurrent reply must match a serial, unsharded,
    // cache-free re-execution at its recorded epoch vector.
    for (i, obs) in observations.iter().enumerate() {
        let snaps: Vec<Arc<Snapshot>> = obs
            .epochs
            .0
            .iter()
            .enumerate()
            .map(|(s, &e)| Arc::clone(&registries[s].lock().unwrap()[e as usize]))
            .collect();
        let union = union_catalog(&snaps);
        let expected = serial_replay(&union, obs.pool_idx, obs.strategy);
        let (_, sql) = POOL[obs.pool_idx];
        if sql.contains("order by") {
            assert_eq!(
                obs.rows, expected,
                "reply {i} diverged from serial replay (exact order): \
                 shards={shards} workers={workers} seed={seed} epochs={} \
                 query={:?} strategy={:?}",
                obs.epochs, POOL[obs.pool_idx], obs.strategy
            );
        } else {
            assert_eq!(
                canonical(obs.rows.clone()),
                canonical(expected),
                "reply {i} diverged from serial replay (canonical): \
                 shards={shards} workers={workers} seed={seed} epochs={} \
                 query={:?} strategy={:?}",
                obs.epochs,
                POOL[obs.pool_idx],
                obs.strategy
            );
        }
    }

    // Routing totality: the final union of the shards equals the seed rows
    // plus every appended batch, as a canonical multiset.
    let finals: Vec<Arc<Snapshot>> = (0..shards).map(|i| svc.shard_snapshot(i)).collect();
    let union = union_catalog(&finals);
    let got = canonical(rows_of(union.get("caser").unwrap().data()));
    let mut want_rows = {
        let mut rng = StdRng::seed_from_u64(seed);
        seed_rows(&mut rng, 60)
    };
    for rows in &appended {
        want_rows.extend(rows.iter().cloned());
    }
    assert_eq!(got, canonical(want_rows));
}

#[test]
fn sharded_replay_matches_serial_oracle() {
    let workers = env_usize("DC_TEST_WORKERS", 4);
    for shards in env_usize_list("DC_TEST_SHARDS", &[1, 2, 4]) {
        run_session(shards, workers, 0xDC07_0000 + shards as u64, 60, 10);
    }
}

/// Live A/B: a sharded and an unsharded service fed identical appends must
/// agree on every pool query at quiescence.
#[test]
fn sharded_and_unsharded_services_agree_live() {
    let workers = env_usize("DC_TEST_WORKERS", 4);
    for shards in env_usize_list("DC_TEST_SHARDS", &[1, 2, 4]) {
        let seed = 0xDC07_AB00 + shards as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = seed_rows(&mut rng, 80);
        let build = || {
            let catalog = Arc::new(Catalog::new());
            catalog.register(Table::new(
                "caser",
                Batch::from_rows(reads_schema(), &rows).unwrap(),
            ));
            let sys = DeferredCleansingSystem::with_catalog(catalog);
            sys.define_rule("app", DUP).unwrap();
            sys
        };
        let sharded = QueryService::start_sharded(
            build(),
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
            ShardConfig::new(shards, "epc").with_cleanse_cache(128),
        )
        .unwrap();
        let unsharded = QueryService::start(
            build(),
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        );
        for _ in 0..4 {
            let extra = seed_rows(&mut rng, 7);
            let batch = Batch::from_rows(reads_schema(), &extra).unwrap();
            sharded.append("caser", batch.clone()).unwrap();
            unsharded.append("caser", batch).unwrap();
        }
        for (pool_idx, (app, sql)) in POOL.iter().enumerate() {
            let a = sharded.execute(QueryRequest::new(*app, *sql)).unwrap();
            let b = unsharded.execute(QueryRequest::new(*app, *sql)).unwrap();
            if sql.contains("order by") {
                assert_eq!(
                    rows_of(&a.batch),
                    rows_of(&b.batch),
                    "shards={shards} pool={pool_idx}"
                );
            } else {
                assert_eq!(
                    canonical(rows_of(&a.batch)),
                    canonical(rows_of(&b.batch)),
                    "shards={shards} pool={pool_idx}"
                );
            }
        }
    }
}

/// Shard-local cleanse caches warm up and stay correct: the same join-back
/// query twice must hit at least one shard cache the second time, and both
/// replies must agree with an uncached run.
#[test]
fn shard_caches_warm_and_stay_correct() {
    let mut rng = StdRng::seed_from_u64(0xDC07_CACE);
    let rows = seed_rows(&mut rng, 60);
    let catalog = Arc::new(Catalog::new());
    catalog.register(Table::new(
        "caser",
        Batch::from_rows(reads_schema(), &rows).unwrap(),
    ));
    let sys = DeferredCleansingSystem::with_catalog(catalog);
    sys.define_rule("app", DUP).unwrap();
    let svc = QueryService::start_sharded(
        sys,
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
        ShardConfig::new(3, "epc").with_cleanse_cache(256),
    )
    .unwrap();

    let req = || {
        QueryRequest::new("app", "select epc, rtime from caser where rtime < 1200")
            .with_strategy(Strategy::JoinBack)
    };
    let cold = svc.execute(req()).unwrap();
    let warm = svc.execute(req()).unwrap();
    assert_eq!(
        canonical(rows_of(&cold.batch)),
        canonical(rows_of(&warm.batch))
    );
    let hits: u64 = (0..svc.shard_count())
        .map(|i| {
            svc.shard_system(i)
                .cleanse_cache_stats()
                .map_or(0, |s| s.hits)
        })
        .sum();
    assert!(hits > 0, "warm run should hit at least one shard cache");
    // Warm replies agree with the hit counters' own run.
    assert!(warm.report.stats.seq_cache_hits > 0);
}

/// Time-travel equivalence on a durable service: for **every** committed
/// global epoch `E` — unsharded and 4-way sharded, per-shard cleanse
/// caches on — `query_as_of(E)` and the SQL `... AS OF EPOCH E` form must
/// both equal the serial, unsharded, cache-free oracle over the union of
/// the shard snapshots recorded at `E`'s epoch vector. The same holds
/// after the service restarts via [`QueryService::recover`], whose
/// historical catalogs are rebuilt from segment files instead of live
/// memory.
#[test]
fn as_of_queries_match_serial_replay_at_every_epoch() {
    for shards in [1usize, 4] {
        let seed = 0xDC07_A50F + shards as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = Arc::new(Catalog::new());
        catalog.register(Table::new(
            "caser",
            Batch::from_rows(reads_schema(), &seed_rows(&mut rng, 40)).unwrap(),
        ));
        let sys = DeferredCleansingSystem::with_catalog(catalog);
        sys.define_rule("app", DUP).unwrap();

        let dir = std::env::temp_dir().join(format!("dc-asof-{shards}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = || ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        };
        let svc = if shards == 1 {
            QueryService::start_durable(sys, config(), DurableOptions::new(&dir)).unwrap()
        } else {
            QueryService::start_sharded_durable(
                sys,
                config(),
                ShardConfig::new(shards, "epc").with_cleanse_cache(64),
                DurableOptions::new(&dir),
            )
            .unwrap()
        };

        // Record each shard's dense snapshot history plus the epoch
        // vector bound to every global commit — the appender is the only
        // publisher, so nothing is missed.
        let mut registries: Vec<Vec<Arc<Snapshot>>> =
            (0..shards).map(|i| vec![svc.shard_snapshot(i)]).collect();
        let mut vectors: Vec<EpochVector> = vec![svc.epoch_vector()];
        for _ in 0..6 {
            let rows = seed_rows(&mut rng, 3);
            svc.append("caser", Batch::from_rows(reads_schema(), &rows).unwrap())
                .unwrap();
            for (i, reg) in registries.iter_mut().enumerate() {
                let snap = svc.shard_snapshot(i);
                if reg.last().unwrap().epoch < snap.epoch {
                    reg.push(snap);
                }
            }
            vectors.push(svc.epoch_vector());
        }

        let check = |svc: &QueryService, phase: &str| {
            for (e, vector) in vectors.iter().enumerate() {
                let snaps: Vec<Arc<Snapshot>> = vector
                    .0
                    .iter()
                    .enumerate()
                    .map(|(s, &se)| Arc::clone(&registries[s][se as usize]))
                    .collect();
                let union = union_catalog(&snaps);
                for (pool_idx, (app, sql)) in POOL.iter().enumerate() {
                    let expected = serial_replay(&union, pool_idx, Strategy::Auto);
                    let via_api = svc
                        .query_as_of(&QueryRequest::new(*app, *sql), e as u64)
                        .unwrap();
                    let via_sql = svc
                        .execute(QueryRequest::new(*app, format!("{sql} as of epoch {e}")))
                        .unwrap();
                    for (form, rows) in [
                        ("query_as_of", rows_of(&via_api.batch)),
                        ("AS OF sql", rows_of(&via_sql.batch)),
                    ] {
                        let ctx =
                            format!("{phase} {form}: shards={shards} epoch={e} pool={pool_idx}");
                        if sql.contains("order by") {
                            assert_eq!(rows, expected, "{ctx}");
                        } else {
                            assert_eq!(canonical(rows), canonical(expected.clone()), "{ctx}");
                        }
                    }
                }
            }
            // One past the committed history is a typed refusal.
            let beyond = vectors.len() as u64;
            assert!(svc
                .query_as_of(&QueryRequest::new("app", POOL[0].1), beyond)
                .is_err());
        };
        check(&svc, "live");
        drop(svc);

        let recovered = QueryService::recover(DurableOptions::new(&dir), config()).unwrap();
        assert_eq!(recovered.shard_count(), shards);
        assert_eq!(
            recovered.durable_stats().unwrap().epochs_recovered,
            vectors.len() as u64
        );
        check(&recovered, "recovered");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
