//! Multi-application behaviour, rule lifecycle, and persistence — the
//! operational story of §1: several applications define anomalies on the
//! same data differently, evolve them over time, and never touch the data.

use deferred_cleansing::relational::batch::{schema_ref, Batch};
use deferred_cleansing::relational::schema::{Field, Schema};
use deferred_cleansing::relational::table::{Catalog, Table};
use deferred_cleansing::relational::value::{DataType, Value};
use deferred_cleansing::DeferredCleansingSystem;
use std::sync::Arc;

fn catalog() -> Arc<Catalog> {
    let catalog = Arc::new(Catalog::new());
    let schema = schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
        Field::new("reader", DataType::Str),
    ]));
    let rows: Vec<Vec<Value>> = (0..50)
        .map(|i| {
            vec![
                Value::str(format!("e{}", i % 5)),
                Value::Int(i * 100),
                Value::str(if i % 7 == 0 { "locA" } else { "locB" }),
                Value::str("r1"),
            ]
        })
        .collect();
    let mut t = Table::new("caser", Batch::from_rows(schema, &rows).unwrap());
    t.create_index("rtime").unwrap();
    t.create_index("epc").unwrap();
    catalog.register(t);
    catalog
}

const DUP: &str = "DEFINE duplicate ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
    WHERE A.biz_loc = B.biz_loc ACTION DELETE B";
const CYCLE: &str = "DEFINE cycle ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B, C) \
    WHERE A.biz_loc = C.biz_loc and A.biz_loc != B.biz_loc ACTION DELETE B";

#[test]
fn applications_are_isolated() {
    let sys = DeferredCleansingSystem::with_catalog(catalog());
    sys.define_rule("app_a", DUP).unwrap();
    sys.define_rule("app_b", CYCLE).unwrap();

    let sql = "select count(*) as n from caser";
    let a = sys.query("app_a", sql).unwrap().row(0)[0].as_int().unwrap();
    let b = sys.query("app_b", sql).unwrap().row(0)[0].as_int().unwrap();
    let raw = sys.query_dirty(sql).unwrap().row(0)[0].as_int().unwrap();
    assert_eq!(raw, 50);
    assert!(a < raw);
    assert!(b < raw);
    assert_ne!(a, b, "different rules should clean differently here");
    // The stored data is untouched.
    assert_eq!(
        sys.query_dirty(sql).unwrap().row(0)[0].as_int().unwrap(),
        50
    );
}

#[test]
fn rules_evolve_at_query_time() {
    let sys = DeferredCleansingSystem::with_catalog(catalog());
    let sql = "select count(*) as n from caser";
    let before = sys.query("app", sql).unwrap().row(0)[0].as_int().unwrap();
    assert_eq!(before, 50);

    sys.define_rule("app", DUP).unwrap();
    let with_dup = sys.query("app", sql).unwrap().row(0)[0].as_int().unwrap();
    assert!(with_dup < before);

    sys.define_rule("app", CYCLE).unwrap();
    let with_both = sys.query("app", sql).unwrap().row(0)[0].as_int().unwrap();
    assert!(with_both <= with_dup);

    sys.drop_rule("app", "duplicate").unwrap();
    sys.drop_rule("app", "cycle").unwrap();
    let after = sys.query("app", sql).unwrap().row(0)[0].as_int().unwrap();
    assert_eq!(after, 50);
}

#[test]
fn persisted_rules_survive_restart() {
    let catalog = catalog();
    let json = {
        let sys = DeferredCleansingSystem::with_catalog(Arc::clone(&catalog));
        sys.define_rule("app_a", DUP).unwrap();
        sys.define_rule("app_b", CYCLE).unwrap();
        sys.rules_to_json()
    };
    // "Restart": a fresh system restores the rules table from JSON.
    let mut sys = DeferredCleansingSystem::with_catalog(catalog);
    sys.load_rules_from_json(&json).unwrap();
    assert_eq!(sys.rules().len(), 2);
    let sql = "select count(*) as n from caser";
    assert!(sys.query("app_a", sql).unwrap().row(0)[0].as_int().unwrap() < 50);
    // The stored SQL/OLAP template is inspectable (Figure 1, step 2).
    let entries = sys.rules().entries_for("app_a");
    assert!(entries[0].sql_template.contains("partition by epc"));
}

#[test]
fn rule_validation_errors_are_actionable() {
    let sys = DeferredCleansingSystem::with_catalog(catalog());
    // Unknown table.
    let err = sys
        .define_rule(
            "app",
            "DEFINE r ON nosuch CLUSTER BY epc SEQUENCE BY rtime \
            AS (A, B) WHERE A.rtime = B.rtime ACTION DELETE B",
        )
        .unwrap_err();
    assert!(err.to_string().contains("nosuch"));
    // Set reference in the middle.
    let err = sys
        .define_rule(
            "app",
            "DEFINE r ON caseR CLUSTER BY epc SEQUENCE BY rtime \
            AS (A, *B, C) WHERE A.rtime = C.rtime ACTION DELETE A",
        )
        .unwrap_err();
    assert!(err.to_string().contains("beginning or end"));
    // Unknown key column.
    let err = sys
        .define_rule(
            "app",
            "DEFINE r ON caseR CLUSTER BY tag SEQUENCE BY rtime \
            AS (A, B) WHERE A.rtime = B.rtime ACTION DELETE B",
        )
        .unwrap_err();
    assert!(err.to_string().contains("tag"));
    assert!(sys.rules().is_empty());
}

#[test]
fn queries_not_touching_reads_table_are_rejected_cleanly() {
    let catalog = catalog();
    let locs = schema_ref(Schema::new(vec![Field::new("gln", DataType::Str)]));
    catalog.register(Table::new(
        "locs",
        Batch::from_rows(locs, &[vec![Value::str("locA")]]).unwrap(),
    ));
    let sys = DeferredCleansingSystem::with_catalog(catalog);
    sys.define_rule("app", DUP).unwrap();
    // A query over locs only does not involve the rule's table.
    let err = sys.query("app", "select gln from locs").unwrap_err();
    assert!(err.to_string().contains("does not reference"));
    // ... but runs fine for an application without rules.
    assert!(sys.query("norules", "select gln from locs").is_ok());
}
