//! Chunked execution vs the materialized oracle, and typed kernels vs the
//! per-row `Value` oracle.
//!
//! The vectorized pipeline must be *transparent*: for any plan, running in
//! 1-, 7-, or 1024-row morsels produces batches byte-identical to the fully
//! materialized path (`chunk_rows == 0`), with identical work counters
//! (modulo the chunk-bookkeeping counters themselves, and limit plans,
//! where early exit legitimately does less upstream work). Likewise
//! [`Expr::evaluate`] (typed kernels, selection-aware) must agree with
//! [`Expr::evaluate_rowwise`] (the retained `Value`-boxing oracle) on every
//! expression shape, selection density, and NULL mix — and stay
//! parallelism-invariant at P ∈ {1, 2, 8}.

use dc_relational::expr::filter_chunk;
use dc_relational::physical::DEFAULT_CHUNK_ROWS;
use dc_relational::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 0 is the materialized oracle; the rest are morsel sizes.
const CHUNK_SIZES: [usize; 4] = [0, 1, 7, DEFAULT_CHUNK_ROWS];
const PARALLELISMS: [usize; 3] = [1, 2, 8];
const CASES: u64 = 48;

fn rows_of(b: &Batch) -> Vec<Vec<Value>> {
    (0..b.num_rows()).map(|i| b.row(i)).collect()
}

/// The chunk-bookkeeping counters differ across chunk sizes by design;
/// every other counter must match the materialized run exactly.
fn normalized(mut s: ExecStats) -> ExecStats {
    s.batches_processed = 0;
    s.selection_avoided_copies = 0;
    s
}

/// Run `property` for `CASES` deterministic seeds, reporting the failing
/// seed on panic (mirrors tests/parallel_equivalence.rs).
fn check(name: &str, mut property: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let seed = 0x5e1e_c700 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(e) = result {
            eprintln!("property '{name}' failed at case {case} (seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

fn test_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
        Field::new("weight", DataType::Double),
        Field::new("qty", DataType::Int),
    ]))
}

/// Random rows with NULLs mixed into `rtime` and `weight`.
fn random_rows(rng: &mut StdRng, n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|_| {
            vec![
                Value::str(format!("e{}", rng.gen_range(0..6u32))),
                if rng.gen_bool(0.08) {
                    Value::Null
                } else {
                    Value::Int(rng.gen_range(0..500i64))
                },
                Value::str(format!("loc{}", rng.gen_range(0..4u32))),
                if rng.gen_bool(0.15) {
                    Value::Null
                } else {
                    Value::Double(rng.gen_range(0..1000i64) as f64 / 10.0)
                },
                Value::Int(rng.gen_range(0..50i64)),
            ]
        })
        .collect()
}

fn random_catalog(rng: &mut StdRng) -> Catalog {
    // Sometimes bigger than a default morsel so 1024-row chunking splits.
    let n = if rng.gen_bool(0.2) {
        rng.gen_range(1100..1600usize)
    } else {
        rng.gen_range(0..=300usize)
    };
    let rows = random_rows(rng, n);
    let b = Batch::from_rows(test_schema(), &rows).unwrap();
    let mut t = Table::new("r", b);
    if rng.gen_bool(0.5) {
        t.create_index("rtime").unwrap();
    }
    let cat = Catalog::new();
    cat.register(t);
    cat
}

/// A random boolean predicate of bounded depth over the test schema.
fn random_predicate(rng: &mut StdRng, depth: usize) -> Expr {
    if depth > 0 && rng.gen_bool(0.45) {
        let l = random_predicate(rng, depth - 1);
        let r = random_predicate(rng, depth - 1);
        return match rng.gen_range(0..3u32) {
            0 => l.and(r),
            1 => l.or(r),
            _ => Expr::Not(Box::new(l)),
        };
    }
    match rng.gen_range(0..7u32) {
        0 => Expr::col("rtime").lt(Expr::lit(rng.gen_range(0..500i64))),
        1 => Expr::col("weight").gt(Expr::lit(rng.gen_range(0..1000i64) as f64 / 10.0)),
        2 => Expr::col("epc").eq(Expr::lit(format!("e{}", rng.gen_range(0..6u32)))),
        3 => Expr::binary(
            Expr::binary(Expr::col("qty"), BinaryOp::Plus, Expr::col("rtime")),
            BinaryOp::LtEq,
            Expr::lit(rng.gen_range(0..550i64)),
        ),
        4 => Expr::IsNull {
            expr: Box::new(Expr::col(if rng.gen_bool(0.5) {
                "rtime"
            } else {
                "weight"
            })),
            negated: rng.gen_bool(0.5),
        },
        5 => Expr::InList {
            expr: Box::new(Expr::col("biz_loc")),
            list: (0..rng.gen_range(1..4u32))
                .map(|k| Value::str(format!("loc{k}")))
                .collect(),
            negated: rng.gen_bool(0.3),
        },
        _ => Expr::binary(
            Expr::col("biz_loc"),
            BinaryOp::NotEq,
            Expr::lit(format!("loc{}", rng.gen_range(0..4u32))),
        ),
    }
}

/// A random scalar (projection) expression.
fn random_scalar(rng: &mut StdRng) -> Expr {
    match rng.gen_range(0..6u32) {
        0 => Expr::col("rtime"),
        1 => Expr::binary(Expr::col("qty"), BinaryOp::Multiply, Expr::lit(3i64)),
        2 => Expr::binary(Expr::col("rtime"), BinaryOp::Minus, Expr::col("qty")),
        3 => Expr::binary(
            Expr::col("weight"),
            BinaryOp::Plus,
            Expr::lit(rng.gen_range(0..100i64) as f64),
        ),
        4 => Expr::Case {
            branches: vec![(random_predicate(rng, 0), Expr::col("qty"))],
            else_expr: if rng.gen_bool(0.5) {
                Some(Box::new(Expr::lit(-1i64)))
            } else {
                None
            },
        },
        _ => Expr::col("epc"),
    }
}

/// A random streaming-friendly plan: scan → [filter] → [project] →
/// [sort | aggregate | distinct] → [limit]. Returns the plan and whether it
/// contains a limit (which legitimately changes upstream work).
fn random_plan(rng: &mut StdRng) -> (LogicalPlan, bool) {
    let mut plan = LogicalPlan::scan("r");
    if rng.gen_bool(0.7) {
        plan = plan.filter(random_predicate(rng, 2));
    }
    if rng.gen_bool(0.5) {
        let n = rng.gen_range(1..=3usize);
        let exprs = (0..n)
            .map(|i| (random_scalar(rng), format!("p{i}")))
            .collect::<Vec<_>>();
        // Keep group/sort keys addressable: always carry a couple of
        // base columns through the projection.
        let mut all = vec![
            (Expr::col("epc"), "epc".to_string()),
            (Expr::col("biz_loc"), "biz_loc".to_string()),
            (Expr::col("rtime"), "rtime".to_string()),
        ];
        all.extend(exprs);
        plan = plan.project(all);
    }
    match rng.gen_range(0..4u32) {
        0 => {
            plan = plan.sort(vec![
                SortKey::asc(Expr::col("rtime")),
                SortKey::asc(Expr::col("epc")),
            ]);
        }
        1 => {
            plan = plan.aggregate(
                vec![(Expr::col("biz_loc"), "biz_loc".into())],
                vec![
                    AggExpr {
                        func: AggFunc::CountStar,
                        alias: "n".into(),
                    },
                    AggExpr {
                        func: AggFunc::Min(Expr::col("rtime")),
                        alias: "min_rt".into(),
                    },
                ],
            );
        }
        2 => plan = plan.distinct(),
        _ => {}
    }
    let limited = rng.gen_bool(0.3);
    if limited {
        plan = plan.limit(rng.gen_range(0..40usize));
    }
    (plan, limited)
}

/// Chunked execution at every morsel size produces batches byte-identical
/// to the materialized oracle, with identical work counters (limit plans
/// excepted: early exit does less upstream work, never more).
#[test]
fn chunked_matches_materialized_on_random_plans() {
    check("chunked vs materialized", |rng| {
        let cat = random_catalog(rng);
        let (plan, limited) = random_plan(rng);
        let mut baseline: Option<(Vec<Vec<Value>>, ExecStats)> = None;
        for &chunk in &CHUNK_SIZES {
            let opts = ExecOptions::with_parallelism(1).with_chunk_rows(chunk);
            let mut ex = Executor::with_options(&cat, opts);
            let batch = ex.execute(&plan).unwrap_or_else(|e| {
                panic!(
                    "plan failed at chunk_rows={chunk}: {e}\n{}",
                    plan.display_indent()
                )
            });
            match &baseline {
                None => baseline = Some((rows_of(&batch), ex.stats)),
                Some((rows, stats)) => {
                    assert_eq!(
                        &rows_of(&batch),
                        rows,
                        "rows differ at chunk_rows={chunk}\n{}",
                        plan.display_indent()
                    );
                    if !limited {
                        assert_eq!(
                            normalized(ex.stats),
                            normalized(*stats),
                            "work counters differ at chunk_rows={chunk}\n{}",
                            plan.display_indent()
                        );
                    }
                }
            }
        }
    });
}

/// Build a random batch, optionally carrying a selection vector of random
/// density over the physical rows.
fn random_chunk(rng: &mut StdRng) -> Batch {
    let n = rng.gen_range(0..=200usize);
    let rows = random_rows(rng, n);
    let base = Batch::from_rows(test_schema(), &rows).unwrap();
    if rng.gen_bool(0.3) {
        return base; // flat chunk, no selection
    }
    let density = [1.0, 0.5, 0.1, 0.0][rng.gen_range(0..4usize)];
    let sel: Vec<u32> = (0..n as u32).filter(|_| rng.gen_bool(density)).collect();
    base.with_selection(sel)
}

/// Typed-kernel evaluation agrees with the per-row `Value` oracle on every
/// expression shape, selection density, and NULL mix.
#[test]
fn kernels_match_rowwise_oracle_on_random_exprs() {
    check("kernel vs rowwise oracle", |rng| {
        let chunk = random_chunk(rng);
        let expr = if rng.gen_bool(0.5) {
            random_predicate(rng, 2)
        } else {
            random_scalar(rng)
        };
        let kernel = expr.evaluate(&chunk);
        let oracle = expr.evaluate_rowwise(&chunk);
        match (&kernel, &oracle) {
            (Ok(k), Ok(o)) => {
                assert_eq!(k.len(), o.len(), "lengths differ for {expr}");
                for i in 0..k.len() {
                    assert_eq!(
                        k.value(i),
                        o.value(i),
                        "row {i} differs for {expr} (kernel {:?} vs oracle {:?})",
                        k.data_type(),
                        o.data_type()
                    );
                }
            }
            (Err(_), Err(_)) => {}
            (k, o) => panic!(
                "kernel/oracle disagree on feasibility for {expr}: kernel {:?} oracle {:?}",
                k.as_ref().map(|_| ()),
                o.as_ref().map(|_| ())
            ),
        }
    });
}

/// `filter_chunk` survivor sets agree with filtering the compacted batch
/// through the oracle, mapped back to physical row ids.
#[test]
fn filter_chunk_matches_compacted_oracle() {
    check("filter_chunk vs compacted oracle", |rng| {
        let chunk = random_chunk(rng);
        let pred = random_predicate(rng, 2);
        let outcome = match filter_chunk(&pred, &chunk) {
            Ok(o) => o,
            Err(_) => {
                assert!(
                    pred.evaluate_rowwise(&chunk).is_err(),
                    "kernel filter failed but the oracle succeeds for {pred}"
                );
                return;
            }
        };
        let col = pred.evaluate_rowwise(&chunk).expect("oracle eval");
        let sel = chunk.selection();
        let expected: Vec<u32> = (0..col.len())
            .filter(|&k| !col.is_null(k) && col.value(k) == Value::Bool(true))
            .map(|k| sel.map_or(k as u32, |rows| rows[k]))
            .collect();
        assert_eq!(outcome.selected, expected, "survivors differ for {pred}");
    });
}

/// Chunked execution stays parallelism-invariant: batches, merged stats,
/// and the deterministic per-operator metrics are identical at P ∈ {1,2,8}
/// for each chunk size.
#[test]
fn chunked_execution_parallelism_invariant() {
    check("chunked parallelism invariance", |rng| {
        let cat = random_catalog(rng);
        let (plan, _) = random_plan(rng);
        for &chunk in &[7usize, DEFAULT_CHUNK_ROWS] {
            let mut baseline: Option<(Vec<Vec<Value>>, ExecStats, Option<DeterministicMetrics>)> =
                None;
            for &p in &PARALLELISMS {
                let opts = ExecOptions::with_parallelism(p).with_chunk_rows(chunk);
                let mut ex = Executor::with_options(&cat, opts);
                let batch = ex.execute(&plan).unwrap();
                let metrics = ex.metrics.as_ref().map(|m| m.deterministic());
                match &baseline {
                    None => baseline = Some((rows_of(&batch), ex.stats, metrics)),
                    Some((rows, stats, metrics1)) => {
                        assert_eq!(
                            &rows_of(&batch),
                            rows,
                            "rows differ at P={p} chunk_rows={chunk}"
                        );
                        assert_eq!(&ex.stats, stats, "stats differ at P={p} chunk_rows={chunk}");
                        assert_eq!(
                            &metrics, metrics1,
                            "operator metrics differ at P={p} chunk_rows={chunk}"
                        );
                    }
                }
            }
        }
    });
}
