//! Normalized-key hash machinery vs the retained `Vec<Value>` oracle.
//!
//! The vectorized hash path (batch key encoding + [`RawKeyTable`]) must be
//! *transparent*: for any plan built from joins, GROUP BY aggregation, and
//! DISTINCT, running with `rowwise_hash == false` produces rows identical
//! to the `HashMap<Vec<Value>, _>` oracle (`rowwise_hash == true`) at every
//! chunk size, every selection density the filters induce, and every NULL
//! mix — and the hash path stays parallelism-invariant at P ∈ {1, 2, 8}
//! with identical deterministic operator metrics. A direct adversarial
//! test drives [`RawKeyTable`] with distinct keys sharing one 64-bit hash
//! and checks that memcmp disambiguates while the collision counter ticks.

use dc_relational::physical::DEFAULT_CHUNK_ROWS;
use dc_relational::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// 0 is the materialized oracle; the rest are morsel sizes.
const CHUNK_SIZES: [usize; 4] = [0, 1, 7, DEFAULT_CHUNK_ROWS];
const PARALLELISMS: [usize; 3] = [1, 2, 8];
const CASES: u64 = 48;

fn rows_of(b: &Batch) -> Vec<Vec<Value>> {
    (0..b.num_rows()).map(|i| b.row(i)).collect()
}

/// The oracle spends no hash-kernel work, so those counters are zeroed
/// before comparing; everything else must match exactly.
fn sans_hash(mut s: ExecStats) -> ExecStats {
    s.hash_ops = 0;
    s.hash_collisions = 0;
    s.probe_memcmps = 0;
    s.key_bytes_encoded = 0;
    s
}

/// Run `property` for `CASES` deterministic seeds, reporting the failing
/// seed on panic (mirrors tests/vectorized_equivalence.rs).
fn check(name: &str, mut property: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let seed = 0x4a5b_3c00 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(e) = result {
            eprintln!("property '{name}' failed at case {case} (seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

fn reads_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("weight", DataType::Double),
        Field::new("qty", DataType::Int),
        Field::new("ok", DataType::Bool),
    ]))
}

fn dim_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("gln", DataType::Str),
        Field::new("code", DataType::Int),
        Field::new("descr", DataType::Str),
    ]))
}

/// Random fact rows: every key-typed column carries NULLs so join keys hit
/// the non-joinable path and group keys hit NULL-as-its-own-group.
fn random_reads(rng: &mut StdRng, n: usize) -> Vec<Vec<Value>> {
    (0..n)
        .map(|_| {
            vec![
                if rng.gen_bool(0.06) {
                    Value::Null
                } else {
                    Value::str(format!("e{}", rng.gen_range(0..7u32)))
                },
                if rng.gen_bool(0.1) {
                    Value::Null
                } else {
                    Value::Int(rng.gen_range(0..300i64))
                },
                if rng.gen_bool(0.15) {
                    Value::Null
                } else {
                    Value::Double(rng.gen_range(0..400i64) as f64 / 8.0)
                },
                Value::Int(rng.gen_range(0..9i64)),
                if rng.gen_bool(0.08) {
                    Value::Null
                } else {
                    Value::Bool(rng.gen_bool(0.5))
                },
            ]
        })
        .collect()
}

fn random_catalog(rng: &mut StdRng) -> Catalog {
    // Sometimes bigger than a default morsel so 1024-row chunking splits.
    let n = if rng.gen_bool(0.2) {
        rng.gen_range(1100..1500usize)
    } else {
        rng.gen_range(0..=250usize)
    };
    let reads = random_reads(rng, n);
    let dims: Vec<Vec<Value>> = (0..rng.gen_range(0..12u32))
        .map(|i| {
            vec![
                if rng.gen_bool(0.1) {
                    Value::Null
                } else {
                    Value::str(format!("e{}", i % 9))
                },
                Value::Int((i % 10) as i64),
                Value::str(format!("site {i}")),
            ]
        })
        .collect();
    let cat = Catalog::new();
    cat.register(Table::new(
        "r",
        Batch::from_rows(reads_schema(), &reads).unwrap(),
    ));
    cat.register(Table::new(
        "d",
        Batch::from_rows(dim_schema(), &dims).unwrap(),
    ));
    cat
}

/// A random filter to induce selection vectors of varying density on the
/// hash operators' inputs.
fn random_filter(rng: &mut StdRng) -> Expr {
    match rng.gen_range(0..4u32) {
        0 => Expr::col("rtime").lt(Expr::lit(rng.gen_range(0..300i64))),
        1 => Expr::col("qty").gt(Expr::lit(rng.gen_range(0..9i64))),
        2 => Expr::IsNull {
            expr: Box::new(Expr::col("weight")),
            negated: true,
        },
        _ => Expr::col("epc").eq(Expr::lit(format!("e{}", rng.gen_range(0..7u32)))),
    }
}

/// A random plan exercising one of the hash consumers: inner join, semi
/// join, GROUP BY aggregation (Str / Int / Double / Bool and multi-column
/// keys), or DISTINCT.
fn random_hash_plan(rng: &mut StdRng) -> LogicalPlan {
    let mut plan = LogicalPlan::scan("r");
    if rng.gen_bool(0.6) {
        plan = plan.filter(random_filter(rng));
    }
    match rng.gen_range(0..7u32) {
        // Str join keys (NULLs on both sides).
        0 => plan.join(
            LogicalPlan::scan("d"),
            vec![Expr::col("epc")],
            vec![Expr::col("gln")],
            JoinType::Inner,
        ),
        // Int join keys.
        1 => plan.join(
            LogicalPlan::scan("d"),
            vec![Expr::col("qty")],
            vec![Expr::col("code")],
            JoinType::Inner,
        ),
        2 => plan.join(
            LogicalPlan::scan("d"),
            vec![Expr::col("epc")],
            vec![Expr::col("gln")],
            JoinType::LeftSemi,
        ),
        // Multi-column compound join key.
        3 => plan.join(
            LogicalPlan::scan("d"),
            vec![Expr::col("epc"), Expr::col("qty")],
            vec![Expr::col("gln"), Expr::col("code")],
            JoinType::Inner,
        ),
        4 => {
            let keys: Vec<(Expr, String)> = match rng.gen_range(0..4u32) {
                0 => vec![(Expr::col("epc"), "epc".into())],
                1 => vec![(Expr::col("weight"), "weight".into())],
                2 => vec![(Expr::col("ok"), "ok".into())],
                _ => vec![
                    (Expr::col("epc"), "epc".into()),
                    (Expr::col("qty"), "qty".into()),
                    (Expr::col("ok"), "ok".into()),
                ],
            };
            plan.aggregate(
                keys,
                vec![
                    AggExpr {
                        func: AggFunc::CountStar,
                        alias: "n".into(),
                    },
                    AggExpr {
                        func: AggFunc::Sum(Expr::col("rtime")),
                        alias: "s".into(),
                    },
                    AggExpr {
                        func: AggFunc::Min(Expr::col("weight")),
                        alias: "m".into(),
                    },
                ],
            )
        }
        // Global aggregate (zero key columns).
        5 => plan.aggregate(
            vec![],
            vec![AggExpr {
                func: AggFunc::CountStar,
                alias: "n".into(),
            }],
        ),
        // DISTINCT over all columns (mixed types + NULLs).
        _ => {
            if rng.gen_bool(0.5) {
                plan = plan.project(vec![
                    (Expr::col("epc"), "epc".into()),
                    (Expr::col("qty"), "qty".into()),
                ]);
            }
            plan.distinct()
        }
    }
}

/// The normalized-key path produces rows identical to the `Vec<Value>`
/// oracle at every chunk size, with all non-hash work counters equal. The
/// oracle never spends hash-kernel work; the vectorized path always does
/// once the build side is non-empty.
#[test]
fn hash_path_matches_rowwise_oracle_on_random_plans() {
    check("hash path vs rowwise oracle", |rng| {
        let cat = random_catalog(rng);
        let plan = random_hash_plan(rng);
        for &chunk in &CHUNK_SIZES {
            let base = ExecOptions::with_parallelism(1).with_chunk_rows(chunk);
            let mut oracle = Executor::with_options(&cat, base.with_rowwise_hash(true));
            let expected = oracle.execute(&plan).unwrap_or_else(|e| {
                panic!(
                    "oracle failed at chunk_rows={chunk}: {e}\n{}",
                    plan.display_indent()
                )
            });
            let mut vectorized = Executor::with_options(&cat, base.with_rowwise_hash(false));
            let got = vectorized.execute(&plan).unwrap_or_else(|e| {
                panic!(
                    "hash path failed at chunk_rows={chunk}: {e}\n{}",
                    plan.display_indent()
                )
            });
            assert_eq!(
                rows_of(&got),
                rows_of(&expected),
                "rows differ at chunk_rows={chunk}\n{}",
                plan.display_indent()
            );
            assert_eq!(
                oracle.stats.hash_ops, 0,
                "the rowwise oracle must not touch the hash kernels"
            );
            assert_eq!(
                sans_hash(vectorized.stats),
                sans_hash(oracle.stats),
                "non-hash work counters differ at chunk_rows={chunk}\n{}",
                plan.display_indent()
            );
        }
    });
}

/// The hash path stays parallelism-invariant: rows, merged stats (hash
/// counters included), and deterministic per-operator metrics are
/// identical at P ∈ {1, 2, 8} for each chunk size.
#[test]
fn hash_path_parallelism_invariant() {
    check("hash path parallelism invariance", |rng| {
        let cat = random_catalog(rng);
        let plan = random_hash_plan(rng);
        for &chunk in &[7usize, DEFAULT_CHUNK_ROWS] {
            let mut baseline: Option<(Vec<Vec<Value>>, ExecStats, Option<DeterministicMetrics>)> =
                None;
            for &p in &PARALLELISMS {
                let opts = ExecOptions::with_parallelism(p).with_chunk_rows(chunk);
                let mut ex = Executor::with_options(&cat, opts);
                let batch = ex.execute(&plan).unwrap();
                let metrics = ex.metrics.as_ref().map(|m| m.deterministic());
                match &baseline {
                    None => baseline = Some((rows_of(&batch), ex.stats, metrics)),
                    Some((rows, stats, metrics1)) => {
                        assert_eq!(
                            &rows_of(&batch),
                            rows,
                            "rows differ at P={p} chunk_rows={chunk}"
                        );
                        assert_eq!(&ex.stats, stats, "stats differ at P={p} chunk_rows={chunk}");
                        assert_eq!(
                            &metrics, metrics1,
                            "operator metrics differ at P={p} chunk_rows={chunk}"
                        );
                    }
                }
            }
        }
    });
}

/// Distinct keys that share one 64-bit hash land in distinct slots: the
/// memcmp on the normalized bytes disambiguates, every disambiguation is
/// counted as a collision, and lookups still find the right entry.
#[test]
fn equal_hash_distinct_keys_disambiguate_by_memcmp() {
    let mut stats = HashStats::default();
    let mut table = RawKeyTable::with_capacity(4);
    const H: u64 = 0xdead_beef_cafe_f00d;
    let keys: Vec<Vec<u8>> = (0..32u8).map(|i| vec![i, i ^ 0x55, 7, i]).collect();
    for (i, k) in keys.iter().enumerate() {
        let (slot, fresh) = table.insert(H, k, &mut stats);
        assert!(fresh, "key {i} wrongly matched an earlier key");
        assert_eq!(slot, i, "slots must follow first-insert order");
    }
    for (i, k) in keys.iter().enumerate() {
        assert_eq!(
            table.get(H, k, &mut stats),
            Some(i),
            "lookup of colliding key {i} found the wrong slot"
        );
    }
    assert_eq!(table.get(H, b"absent", &mut stats), None);
    assert!(
        stats.hash_collisions > 0,
        "hash-equal, byte-unequal probes must be counted as collisions"
    );
    assert!(
        stats.probe_memcmps as usize >= keys.len(),
        "every successful probe pays at least one memcmp"
    );
}
