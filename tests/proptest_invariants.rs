//! Property-based tests on the engine's core invariants:
//!
//! * window lag agrees with a reference implementation on random sequences,
//! * index range scans agree with naive filtering,
//! * implied bounds are sound over-approximations of arbitrary predicates,
//! * Φ for the duplicate rule agrees with a reference imperative cleaner,
//! * and the crown jewel: expanded / join-back / naive rewrites all agree
//!   with the materialized-Φ gold standard on random reads tables, random
//!   rules, and random threshold queries.

use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::rewrite::Strategy;
use deferred_cleansing::DeferredCleansingSystem;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;
use std::sync::Arc;

fn reads_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
        Field::new("reader", DataType::Str),
    ]))
}

/// Strategy generating a small reads table: up to 4 EPCs, up to 12 reads
/// each, small time/location domains so anomalies and boundary collisions
/// are frequent.
fn arb_reads() -> impl proptest::strategy::Strategy<Value = Vec<(String, i64, String, String)>> {
    proptest::collection::vec(
        (
            0u8..4,                    // epc
            0i64..2000,                // rtime
            0u8..3,                    // biz_loc
            prop::bool::ANY,           // readerX?
        ),
        1..40,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(e, t, l, rx)| {
                (
                    format!("e{e}"),
                    t,
                    format!("loc{l}"),
                    if rx { "readerX".into() } else { "r0".to_string() },
                )
            })
            .collect()
    })
}

fn catalog_from(rows: &[(String, i64, String, String)]) -> Catalog {
    let data: Vec<Vec<Value>> = rows
        .iter()
        .map(|(e, t, l, r)| {
            vec![
                Value::str(e.as_str()),
                Value::Int(*t),
                Value::str(l.as_str()),
                Value::str(r.as_str()),
            ]
        })
        .collect();
    let cat = Catalog::new();
    let mut t = Table::new("caser", Batch::from_rows(reads_schema(), &data).unwrap());
    t.create_index("rtime").unwrap();
    t.create_index("epc").unwrap();
    cat.register(t);
    cat
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Window "previous row" aggregates agree with a scan-based reference.
    #[test]
    fn window_lag_matches_reference(rows in arb_reads()) {
        let cat = catalog_from(&rows);
        let plan = LogicalPlan::scan("caser").window(
            vec![Expr::col("epc")],
            vec![SortKey::asc(Expr::col("rtime"))],
            vec![WindowExpr {
                func: WindowFuncKind::Max,
                arg: Some(Expr::col("rtime")),
                frame: Frame::rows(FrameBound::Preceding(1), FrameBound::Preceding(1)),
                alias: "prev".into(),
            }],
        );
        let out = Executor::new(&cat).execute(&plan).unwrap();

        // Reference: sort rows by (epc, rtime) stably and compute lags.
        let mut sorted: Vec<(String, i64)> = rows
            .iter()
            .map(|(e, t, _, _)| (e.clone(), *t))
            .collect();
        sorted.sort();
        let mut expect: Vec<(String, i64, Option<i64>)> = Vec::new();
        for (i, (e, t)) in sorted.iter().enumerate() {
            let prev = if i > 0 && &sorted[i - 1].0 == e {
                Some(sorted[i - 1].1)
            } else {
                None
            };
            expect.push((e.clone(), *t, prev));
        }
        let mut got: Vec<(String, i64, Option<i64>)> = (0..out.num_rows())
            .map(|i| {
                let r = out.row(i);
                (
                    r[0].as_str().unwrap().to_string(),
                    r[1].as_int().unwrap(),
                    r[4].as_int(),
                )
            })
            .collect();
        got.sort();
        expect.sort();
        // Ties on (epc, rtime) make prev ambiguous; compare only when the
        // sorted keys are unique.
        let mut keys: Vec<(String, i64)> = sorted.clone();
        keys.dedup();
        if keys.len() == sorted.len() {
            prop_assert_eq!(got, expect);
        }
    }

    /// RANGE window frames agree with a brute-force reference: for each row,
    /// the count of same-sequence rows with skey in (t+1 ..= t+W).
    #[test]
    fn range_window_matches_reference(rows in arb_reads(), window in 1i64..500) {
        let cat = catalog_from(&rows);
        let plan = LogicalPlan::scan("caser").window(
            vec![Expr::col("epc")],
            vec![SortKey::asc(Expr::col("rtime"))],
            vec![WindowExpr {
                func: WindowFuncKind::Count,
                arg: None,
                frame: Frame::range(FrameBound::Following(1), FrameBound::Following(window)),
                alias: "n_after".into(),
            }],
        );
        let out = Executor::new(&cat).execute(&plan).unwrap();
        for i in 0..out.num_rows() {
            let r = out.row(i);
            let (epc, t) = (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap());
            let expect = rows
                .iter()
                .filter(|(e, rt, _, _)| *e == epc && *rt > t && *rt <= t + window)
                .count() as i64;
            // Empty frames yield count 0 in our engine.
            let got = r[4].as_int().unwrap_or(0);
            prop_assert_eq!(got, expect, "epc {} t {} window {}", epc, t, window);
        }
    }

    /// Index range scans return exactly the rows a full filter would.
    #[test]
    fn index_scan_equals_filter(rows in arb_reads(), lo in 0i64..2000, width in 1i64..800) {
        let cat = catalog_from(&rows);
        let hi = lo + width;
        let pred = Expr::col("rtime")
            .gt_eq(Expr::lit(lo))
            .and(Expr::col("rtime").lt(Expr::lit(hi)));
        // Through the index (pushed filter)...
        let indexed = LogicalPlan::Scan {
            table: "caser".into(),
            alias: None,
            filter: Some(pred.clone()),
        };
        let mut ex = Executor::new(&cat);
        let a = ex.execute(&indexed).unwrap();
        // ...vs a full-scan filter.
        let full = LogicalPlan::scan("caser").filter(pred);
        let cfg = OptimizerConfig { enable_pushdown: false, enable_order_sharing: false };
        let b = Executor::new(&cat)
            .execute(&optimize(full, &cat, &cfg))
            .unwrap();
        prop_assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    /// `implied_bounds` is a sound over-approximation: every row satisfying
    /// the predicate also satisfies every implied bound.
    #[test]
    fn implied_bounds_sound(rows in arb_reads(), t1 in 0i64..2000, t2 in 0i64..2000) {
        let cat = catalog_from(&rows);
        let pred = Expr::col("rtime")
            .lt_eq(Expr::lit(t1))
            .or(Expr::col("reader")
                .eq(Expr::lit("readerX"))
                .and(Expr::col("rtime").lt(Expr::lit(t2))));
        let table = cat.get("caser").unwrap();
        let batch = table.data();
        let sat = pred.filter_indices(batch).unwrap();
        for (ci, interval) in
            deferred_cleansing::relational::constraint::implied_bounds_resolved(
                &pred,
                batch.schema(),
            )
        {
            for conj in interval.to_constraints(&ColumnRef::new(batch.schema().field(ci).name.clone())) {
                let keep = conj.to_expr().filter_indices(batch).unwrap();
                for i in &sat {
                    prop_assert!(keep.contains(i), "row {i} satisfies pred but not bound {conj}");
                }
            }
        }
    }

    /// Φ for the timed duplicate rule agrees with an imperative reference.
    #[test]
    fn duplicate_rule_matches_reference(rows in arb_reads()) {
        // Skip inputs with (epc, rtime) ties — adjacency is ambiguous.
        let mut keys: Vec<(&String, i64)> = rows.iter().map(|(e, t, _, _)| (e, *t)).collect();
        keys.sort();
        let unique = keys.windows(2).all(|w| w[0] != w[1]);
        prop_assume!(unique);

        let cat = catalog_from(&rows);
        let sys = DeferredCleansingSystem::with_catalog(Arc::new(Catalog::new()));
        drop(sys); // (facade unused here; direct rule application below)

        let template = deferred_cleansing::rules::compile_rule(
            &deferred_cleansing::sqlts::parse_rule(
                "DEFINE dup ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
                 WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B",
            )
            .unwrap(),
        )
        .unwrap();
        let phi = deferred_cleansing::rules::apply_rule(
            LogicalPlan::scan("caser"),
            &template,
            &cat,
        )
        .unwrap();
        let got = Executor::new(&cat).execute(&phi).unwrap();

        // Reference: sort per epc; drop a row if its predecessor has the
        // same biz_loc and is < 300 s earlier (single simultaneous pass).
        let mut sorted = rows.clone();
        sorted.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        let mut expect = 0usize;
        for (i, r) in sorted.iter().enumerate() {
            let dup = i > 0
                && sorted[i - 1].0 == r.0
                && sorted[i - 1].2 == r.2
                && r.1 - sorted[i - 1].1 < 300;
            if !dup {
                expect += 1;
            }
        }
        prop_assert_eq!(got.num_rows(), expect);
    }

    /// All rewrite strategies agree with the materialized gold standard for
    /// a random rule pick and a random threshold query.
    #[test]
    fn rewrites_agree_with_gold(
        rows in arb_reads(),
        threshold in 0i64..2000,
        upper in prop::bool::ANY,
        rule_pick in 0usize..5,
    ) {
        let rules = [
            "DEFINE reader ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
             WHERE B.reader = 'readerX' and B.rtime - A.rtime < 5 mins ACTION DELETE A",
            "DEFINE dup ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B",
            "DEFINE dup_untimed ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.biz_loc = B.biz_loc ACTION DELETE B",
            "DEFINE cycle ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B, C) \
             WHERE A.biz_loc = C.biz_loc and A.biz_loc != B.biz_loc ACTION DELETE B",
            // The §4.3 count() extension: two readerX reads required.
            "DEFINE reader2 ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
             WHERE count(B.reader = 'readerX') >= 2 and B.rtime - A.rtime < 5 mins \
             ACTION DELETE A",
        ];
        let catalog = Arc::new(catalog_from(&rows));
        let sys = DeferredCleansingSystem::with_catalog(Arc::clone(&catalog));
        sys.define_rule("app", rules[rule_pick]).unwrap();

        // Gold: materialize Φ(R) and run the query on it.
        let template = deferred_cleansing::rules::compile_rule(
            &deferred_cleansing::sqlts::parse_rule(rules[rule_pick]).unwrap(),
        )
        .unwrap();
        let phi = deferred_cleansing::rules::apply_rule(
            LogicalPlan::scan("caser"),
            &template,
            &catalog,
        )
        .unwrap();
        let cleaned = Executor::new(&catalog).execute(&phi).unwrap();
        let gold_cat = Catalog::new();
        gold_cat.register(Table::new("caser", cleaned));
        let op = if upper { "<=" } else { ">=" };
        let sql = format!("select epc, rtime, biz_loc from caser where rtime {op} {threshold}");
        let expect = deferred_cleansing::relational::sql::run_sql(&sql, &gold_cat)
            .unwrap()
            .sorted_rows();

        for strategy in [Strategy::Auto, Strategy::Naive, Strategy::JoinBack, Strategy::Expanded] {
            match sys.query_with_strategy("app", &sql, strategy) {
                Ok((batch, report)) => prop_assert_eq!(
                    batch.sorted_rows(),
                    expect.clone(),
                    "strategy {:?} (chosen {}) diverged for rule {} query {}",
                    strategy, report.chosen, rule_pick, sql
                ),
                Err(_) => prop_assert!(matches!(strategy, Strategy::Expanded)),
            }
        }
    }
}
