//! Randomized property tests on the engine's core invariants:
//!
//! * window lag agrees with a reference implementation on random sequences,
//! * RANGE window frames agree with a brute-force reference,
//! * index range scans agree with naive filtering,
//! * implied bounds are sound over-approximations of arbitrary predicates,
//! * Φ for the duplicate rule agrees with a reference imperative cleaner,
//! * and the crown jewel: expanded / join-back / naive rewrites all agree
//!   with the materialized-Φ gold standard on random reads tables, random
//!   rules, and random threshold queries.
//!
//! The offline build has no proptest; each property runs a fixed number of
//! seeded random cases drawn from the vendored `rand` shim, so failures are
//! reproducible from the printed case seed.

use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::rewrite::Strategy;
use deferred_cleansing::DeferredCleansingSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const CASES: u64 = 64;

/// Run `CASES` seeded iterations of a property, printing the failing seed.
fn check(name: &str, mut property: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        // Derive a per-case seed so any failure names the exact case.
        let seed = 0xDC00_0000 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut rng)));
        if let Err(panic) = result {
            eprintln!("property '{name}' failed at case {case} (seed {seed})");
            std::panic::resume_unwind(panic);
        }
    }
}

type ReadRow = (String, i64, String, String);

/// A small random reads table: up to 4 EPCs, small time/location domains so
/// anomalies and boundary collisions are frequent.
fn arb_reads(rng: &mut StdRng) -> Vec<ReadRow> {
    let n = rng.gen_range(1usize..40);
    (0..n)
        .map(|_| {
            (
                format!("e{}", rng.gen_range(0u8..4)),
                rng.gen_range(0i64..2000),
                format!("loc{}", rng.gen_range(0u8..3)),
                if rng.gen_bool(0.5) {
                    "readerX".to_string()
                } else {
                    "r0".to_string()
                },
            )
        })
        .collect()
}

fn reads_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
        Field::new("reader", DataType::Str),
    ]))
}

fn catalog_from(rows: &[ReadRow]) -> Catalog {
    let data: Vec<Vec<Value>> = rows
        .iter()
        .map(|(e, t, l, r)| {
            vec![
                Value::str(e.as_str()),
                Value::Int(*t),
                Value::str(l.as_str()),
                Value::str(r.as_str()),
            ]
        })
        .collect();
    let cat = Catalog::new();
    let mut t = Table::new("caser", Batch::from_rows(reads_schema(), &data).unwrap());
    t.create_index("rtime").unwrap();
    t.create_index("epc").unwrap();
    cat.register(t);
    cat
}

/// Window "previous row" aggregates agree with a scan-based reference.
#[test]
fn window_lag_matches_reference() {
    check("window_lag_matches_reference", |rng| {
        let rows = arb_reads(rng);
        let cat = catalog_from(&rows);
        let plan = LogicalPlan::scan("caser").window(
            vec![Expr::col("epc")],
            vec![SortKey::asc(Expr::col("rtime"))],
            vec![WindowExpr {
                func: WindowFuncKind::Max,
                arg: Some(Expr::col("rtime")),
                frame: Frame::rows(FrameBound::Preceding(1), FrameBound::Preceding(1)),
                alias: "prev".into(),
            }],
        );
        let out = Executor::new(&cat).execute(&plan).unwrap();

        // Reference: sort rows by (epc, rtime) stably and compute lags.
        let mut sorted: Vec<(String, i64)> =
            rows.iter().map(|(e, t, _, _)| (e.clone(), *t)).collect();
        sorted.sort();
        let mut expect: Vec<(String, i64, Option<i64>)> = Vec::new();
        for (i, (e, t)) in sorted.iter().enumerate() {
            let prev = if i > 0 && &sorted[i - 1].0 == e {
                Some(sorted[i - 1].1)
            } else {
                None
            };
            expect.push((e.clone(), *t, prev));
        }
        let mut got: Vec<(String, i64, Option<i64>)> = (0..out.num_rows())
            .map(|i| {
                let r = out.row(i);
                (
                    r[0].as_str().unwrap().to_string(),
                    r[1].as_int().unwrap(),
                    r[4].as_int(),
                )
            })
            .collect();
        got.sort();
        expect.sort();
        // Ties on (epc, rtime) make prev ambiguous; compare only when the
        // sorted keys are unique.
        let mut keys: Vec<(String, i64)> = sorted.clone();
        keys.dedup();
        if keys.len() == sorted.len() {
            assert_eq!(got, expect);
        }
    });
}

/// RANGE window frames agree with a brute-force reference: for each row,
/// the count of same-sequence rows with skey in (t+1 ..= t+W).
#[test]
fn range_window_matches_reference() {
    check("range_window_matches_reference", |rng| {
        let rows = arb_reads(rng);
        let window = rng.gen_range(1i64..500);
        let cat = catalog_from(&rows);
        let plan = LogicalPlan::scan("caser").window(
            vec![Expr::col("epc")],
            vec![SortKey::asc(Expr::col("rtime"))],
            vec![WindowExpr {
                func: WindowFuncKind::Count,
                arg: None,
                frame: Frame::range(FrameBound::Following(1), FrameBound::Following(window)),
                alias: "n_after".into(),
            }],
        );
        let out = Executor::new(&cat).execute(&plan).unwrap();
        for i in 0..out.num_rows() {
            let r = out.row(i);
            let (epc, t) = (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap());
            let expect = rows
                .iter()
                .filter(|(e, rt, _, _)| *e == epc && *rt > t && *rt <= t + window)
                .count() as i64;
            // Empty frames yield count 0 in our engine.
            let got = r[4].as_int().unwrap_or(0);
            assert_eq!(got, expect, "epc {epc} t {t} window {window}");
        }
    });
}

/// Index range scans return exactly the rows a full filter would.
#[test]
fn index_scan_equals_filter() {
    check("index_scan_equals_filter", |rng| {
        let rows = arb_reads(rng);
        let lo = rng.gen_range(0i64..2000);
        let width = rng.gen_range(1i64..800);
        let cat = catalog_from(&rows);
        let hi = lo + width;
        let pred = Expr::col("rtime")
            .gt_eq(Expr::lit(lo))
            .and(Expr::col("rtime").lt(Expr::lit(hi)));
        // Through the index (pushed filter)...
        let indexed = LogicalPlan::Scan {
            table: "caser".into(),
            alias: None,
            filter: Some(pred.clone()),
        };
        let mut ex = Executor::new(&cat);
        let a = ex.execute(&indexed).unwrap();
        // ...vs a full-scan filter.
        let full = LogicalPlan::scan("caser").filter(pred);
        let cfg = OptimizerConfig {
            enable_pushdown: false,
            enable_order_sharing: false,
        };
        let b = Executor::new(&cat)
            .execute(&optimize(full, &cat, &cfg))
            .unwrap();
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    });
}

/// `implied_bounds` is a sound over-approximation: every row satisfying
/// the predicate also satisfies every implied bound.
#[test]
fn implied_bounds_sound() {
    check("implied_bounds_sound", |rng| {
        let rows = arb_reads(rng);
        let t1 = rng.gen_range(0i64..2000);
        let t2 = rng.gen_range(0i64..2000);
        let cat = catalog_from(&rows);
        let pred = Expr::col("rtime")
            .lt_eq(Expr::lit(t1))
            .or(Expr::col("reader")
                .eq(Expr::lit("readerX"))
                .and(Expr::col("rtime").lt(Expr::lit(t2))));
        let table = cat.get("caser").unwrap();
        let batch = table.data();
        let sat = pred.filter_indices(batch).unwrap();
        for (ci, interval) in deferred_cleansing::relational::constraint::implied_bounds_resolved(
            &pred,
            batch.schema(),
        ) {
            for conj in
                interval.to_constraints(&ColumnRef::new(batch.schema().field(ci).name.clone()))
            {
                let keep = conj.to_expr().filter_indices(batch).unwrap();
                for i in &sat {
                    assert!(
                        keep.contains(i),
                        "row {i} satisfies pred but not bound {conj}"
                    );
                }
            }
        }
    });
}

/// Φ for the timed duplicate rule agrees with an imperative reference.
#[test]
fn duplicate_rule_matches_reference() {
    check("duplicate_rule_matches_reference", |rng| {
        let rows = arb_reads(rng);
        // Skip inputs with (epc, rtime) ties — adjacency is ambiguous.
        let mut keys: Vec<(&String, i64)> = rows.iter().map(|(e, t, _, _)| (e, *t)).collect();
        keys.sort();
        let unique = keys.windows(2).all(|w| w[0] != w[1]);
        if !unique {
            return;
        }

        let cat = catalog_from(&rows);
        let template = deferred_cleansing::rules::compile_rule(
            &deferred_cleansing::sqlts::parse_rule(
                "DEFINE dup ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
                 WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B",
            )
            .unwrap(),
        )
        .unwrap();
        let phi =
            deferred_cleansing::rules::apply_rule(LogicalPlan::scan("caser"), &template, &cat)
                .unwrap();
        let got = Executor::new(&cat).execute(&phi).unwrap();

        // Reference: sort per epc; drop a row if its predecessor has the
        // same biz_loc and is < 300 s earlier (single simultaneous pass).
        let mut sorted = rows.clone();
        sorted.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        let mut expect = 0usize;
        for (i, r) in sorted.iter().enumerate() {
            let dup = i > 0
                && sorted[i - 1].0 == r.0
                && sorted[i - 1].2 == r.2
                && r.1 - sorted[i - 1].1 < 300;
            if !dup {
                expect += 1;
            }
        }
        assert_eq!(got.num_rows(), expect);
    });
}

/// All rewrite strategies agree with the materialized gold standard for
/// a random rule pick and a random threshold query.
#[test]
fn rewrites_agree_with_gold() {
    check("rewrites_agree_with_gold", |rng| {
        let rows = arb_reads(rng);
        let threshold = rng.gen_range(0i64..2000);
        let upper = rng.gen_bool(0.5);
        let rule_pick = rng.gen_range(0usize..5);
        let rules = [
            "DEFINE reader ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
             WHERE B.reader = 'readerX' and B.rtime - A.rtime < 5 mins ACTION DELETE A",
            "DEFINE dup ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.biz_loc = B.biz_loc and B.rtime - A.rtime < 5 mins ACTION DELETE B",
            "DEFINE dup_untimed ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B) \
             WHERE A.biz_loc = B.biz_loc ACTION DELETE B",
            "DEFINE cycle ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, B, C) \
             WHERE A.biz_loc = C.biz_loc and A.biz_loc != B.biz_loc ACTION DELETE B",
            // The §4.3 count() extension: two readerX reads required.
            "DEFINE reader2 ON caseR CLUSTER BY epc SEQUENCE BY rtime AS (A, *B) \
             WHERE count(B.reader = 'readerX') >= 2 and B.rtime - A.rtime < 5 mins \
             ACTION DELETE A",
        ];
        let catalog = Arc::new(catalog_from(&rows));
        let sys = DeferredCleansingSystem::with_catalog(Arc::clone(&catalog));
        sys.define_rule("app", rules[rule_pick]).unwrap();

        // Gold: materialize Φ(R) and run the query on it.
        let template = deferred_cleansing::rules::compile_rule(
            &deferred_cleansing::sqlts::parse_rule(rules[rule_pick]).unwrap(),
        )
        .unwrap();
        let phi =
            deferred_cleansing::rules::apply_rule(LogicalPlan::scan("caser"), &template, &catalog)
                .unwrap();
        let cleaned = Executor::new(&catalog).execute(&phi).unwrap();
        let gold_cat = Catalog::new();
        gold_cat.register(Table::new("caser", cleaned));
        let op = if upper { "<=" } else { ">=" };
        let sql = format!("select epc, rtime, biz_loc from caser where rtime {op} {threshold}");
        let expect = deferred_cleansing::relational::sql::run_sql(&sql, &gold_cat)
            .unwrap()
            .sorted_rows();

        for strategy in [
            Strategy::Auto,
            Strategy::Naive,
            Strategy::JoinBack,
            Strategy::Expanded,
        ] {
            match sys.query_with_strategy("app", &sql, strategy) {
                Ok((batch, report)) => assert_eq!(
                    batch.sorted_rows(),
                    expect.clone(),
                    "strategy {strategy:?} (chosen {}) diverged for rule {rule_pick} query {sql}",
                    report.chosen
                ),
                Err(_) => assert!(matches!(strategy, Strategy::Expanded)),
            }
        }
    });
}
