//! The missing-read compensation pipeline (paper §4.3 Example 5 / §6.3),
//! including the *query-time derived input*: instead of materializing
//! caseR ∪ R′, the application registers a plan computing it, and every
//! rewrite evaluates (and filters!) that plan on the fly — σ_ec pushes into
//! both union branches.

use deferred_cleansing::relational::agg::{AggExpr, AggFunc};
use deferred_cleansing::relational::prelude::*;
use deferred_cleansing::rewrite::Strategy;
use deferred_cleansing::DeferredCleansingSystem;
use std::sync::Arc;

fn reads_schema() -> SchemaRef {
    schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
    ]))
}

/// caseR: case c1 travels L1 -> L2 -> L3 with its pallet, but its read at L2
/// is MISSING. palletR has all three pallet reads. parent links c1 -> p1.
fn catalog() -> Arc<Catalog> {
    let catalog = Arc::new(Catalog::new());
    let case_rows = vec![
        vec![Value::str("c1"), Value::Int(1_010), Value::str("L1")],
        // (missing read at L2, t≈5_000)
        vec![Value::str("c1"), Value::Int(9_010), Value::str("L3")],
        // A fully-read case for contrast.
        vec![Value::str("c2"), Value::Int(1_020), Value::str("L1")],
        vec![Value::str("c2"), Value::Int(5_020), Value::str("L2")],
        vec![Value::str("c2"), Value::Int(9_020), Value::str("L3")],
    ];
    let mut caser = Table::new(
        "caser",
        Batch::from_rows(reads_schema(), &case_rows).unwrap(),
    );
    caser.create_index("rtime").unwrap();
    caser.create_index("epc").unwrap();
    catalog.register(caser);

    let pallet_rows = vec![
        vec![Value::str("p1"), Value::Int(1_000), Value::str("L1")],
        vec![Value::str("p1"), Value::Int(5_000), Value::str("L2")],
        vec![Value::str("p1"), Value::Int(9_000), Value::str("L3")],
    ];
    let mut palletr = Table::new(
        "palletr",
        Batch::from_rows(reads_schema(), &pallet_rows).unwrap(),
    );
    palletr.create_index("rtime").unwrap();
    catalog.register(palletr);

    let parent_schema = schema_ref(Schema::new(vec![
        Field::new("child_epc", DataType::Str),
        Field::new("parent_epc", DataType::Str),
    ]));
    catalog.register(Table::new(
        "parent",
        Batch::from_rows(
            parent_schema,
            &[
                vec![Value::str("c1"), Value::str("p1")],
                vec![Value::str("c2"), Value::str("p1")],
            ],
        )
        .unwrap(),
    ));
    catalog
}

/// The derived input as a *plan*: caseR (is_pallet=0) UNION the expected
/// case reads from palletR ⋈ parent (is_pallet=1, epc := child_epc).
fn derived_input_plan() -> LogicalPlan {
    let cases = LogicalPlan::scan("caser").project(vec![
        (Expr::col("epc"), "epc".into()),
        (Expr::col("rtime"), "rtime".into()),
        (Expr::col("biz_loc"), "biz_loc".into()),
        (Expr::lit(0i64), "is_pallet".into()),
    ]);
    let expected = LogicalPlan::scan("palletr")
        .join(
            LogicalPlan::scan("parent"),
            vec![Expr::col("epc")],
            vec![Expr::col("parent_epc")],
            JoinType::Inner,
        )
        .project(vec![
            (Expr::col("child_epc"), "epc".into()),
            (Expr::col("rtime"), "rtime".into()),
            (Expr::col("biz_loc"), "biz_loc".into()),
            (Expr::lit(1i64), "is_pallet".into()),
        ]);
    LogicalPlan::Union {
        inputs: vec![cases, expected],
    }
}

const R1: &str = "DEFINE missing_r1 ON caseR FROM r_union CLUSTER BY epc SEQUENCE BY rtime \
    AS (X, A, Y) \
    WHERE A.is_pallet = 1 and \
      ((X.is_pallet = 0 and A.biz_loc = X.biz_loc and X.rtime - A.rtime < 1 mins) or \
       (Y.is_pallet = 0 and A.biz_loc = Y.biz_loc and Y.rtime - A.rtime < 1 mins)) \
    ACTION MODIFY A.has_case_nearby = 1";
const R2: &str = "DEFINE missing_r2 ON caseR FROM r_union CLUSTER BY epc SEQUENCE BY rtime \
    AS (A, *B) \
    WHERE A.is_pallet = 0 or (A.has_case_nearby = 0 and B.has_case_nearby = 1) \
    ACTION KEEP A";

fn system() -> DeferredCleansingSystem {
    let catalog = catalog();
    // Register an empty stand-in table so rule validation can check the
    // derived input's schema, then register the real plan with the engine.
    let union_schema = schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
        Field::new("is_pallet", DataType::Int),
    ]));
    catalog.register(Table::new("r_union", Batch::empty(union_schema)));
    let sys = DeferredCleansingSystem::with_catalog(catalog);
    sys.register_derived_input("r_union", derived_input_plan());
    sys.define_rule("app", R1).unwrap();
    sys.define_rule("app", R2).unwrap();
    sys
}

#[test]
fn missing_read_is_compensated() {
    let sys = system();
    // Dirty: c1 has 2 reads. Cleansed: 3 — the pallet read at L2 survives as
    // the compensating "expected" read, because c1 is seen with p1 again
    // later (so it was missed, not stolen).
    let sql = "select epc, count(*) as n from caser group by epc order by epc";
    let dirty = sys.query_dirty(sql).unwrap();
    assert_eq!(dirty.row(0), vec![Value::str("c1"), Value::Int(2)]);
    let clean = sys.query("app", sql).unwrap();
    assert_eq!(clean.row(0), vec![Value::str("c1"), Value::Int(3)]);
    // c2 was fully read: all pallet copies have cases nearby and are
    // dropped, so the count stays 3.
    assert_eq!(clean.row(1), vec![Value::str("c2"), Value::Int(3)]);
}

#[test]
fn compensated_read_carries_pallet_location() {
    let sys = system();
    let clean = sys
        .query("app", "select rtime, biz_loc from caser where epc = 'c1'")
        .unwrap();
    let rows = clean.sorted_rows();
    assert_eq!(rows.len(), 3);
    // The middle read is the compensating pallet read at L2, t=5000.
    assert_eq!(rows[1], vec![Value::Int(5_000), Value::str("L2")]);
}

#[test]
fn all_strategies_agree_over_derived_input() {
    let sys = system();
    let sql = "select epc, rtime, biz_loc from caser where rtime >= 4000";
    let mut results = Vec::new();
    for strategy in [Strategy::Auto, Strategy::Naive, Strategy::JoinBack] {
        let (batch, _) = sys.query_with_strategy("app", sql, strategy).unwrap();
        results.push(batch.sorted_rows());
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
    // The compensated L2 read at t=5000 is in range and present.
    assert!(results[0]
        .iter()
        .any(|r| r[0] == Value::str("c1") && r[1] == Value::Int(5_000)));
}

#[test]
fn filter_pushes_into_union_branches() {
    // σ_ec over the derived input must reach both branch scans (caseR and
    // palletR) through the Union and the Projects — otherwise deferred
    // cleansing over derived inputs would always scan everything.
    let catalog = catalog();
    let plan = derived_input_plan().filter(Expr::col("rtime").lt(Expr::lit(2_000i64)));
    let optimized = optimize_default(plan, &catalog);
    let rendered = optimized.display_indent();
    // Both base scans carry a pushed rtime bound.
    let pushed_scans = rendered
        .lines()
        .filter(|l| l.contains("Scan") && l.contains("pushed") && l.contains("rtime"))
        .count();
    assert_eq!(pushed_scans, 2, "plan:\n{rendered}");
    // And the scan uses the index: only 3 of 8 rows fetched.
    let mut ex = Executor::new(&catalog);
    let out = ex.execute(&optimized).unwrap();
    // c1@1010, c2@1020, and p1@1000 expanded once per child (c1, c2) = 4.
    assert_eq!(out.num_rows(), 4);
}

#[test]
fn dirty_aggregate_vs_clean_aggregate() {
    // A q1-flavoured check: average dwell per location pair changes once the
    // missing read is compensated.
    let sys = system();
    let sql = "with v1 as (select epc, rtime, \
        max(rtime) over (partition by epc order by rtime \
          rows between 1 preceding and 1 preceding) as prev \
        from caser) \
        select count(*) as hops, avg(rtime - prev) as dwell from v1 \
        where prev is not null";
    let dirty = sys.query_dirty(sql).unwrap();
    let clean = sys.query("app", sql).unwrap();
    // Dirty: c1 contributes one 8000-second hop; clean: two 4000-ish hops.
    assert_eq!(dirty.row(0)[0], Value::Int(3));
    assert_eq!(clean.row(0)[0], Value::Int(4));
    let dirty_dwell = dirty.row(0)[1].as_double().unwrap();
    let clean_dwell = clean.row(0)[1].as_double().unwrap();
    assert!(clean_dwell < dirty_dwell);
}

#[test]
fn aggregate_helper_types() {
    // Guard against accidental API regressions used by this test file.
    let _ = AggExpr {
        func: AggFunc::CountStar,
        alias: "n".into(),
    };
}
