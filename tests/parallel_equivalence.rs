//! Serial vs partition-parallel equivalence.
//!
//! Partition-parallel Φ_C cleansing must be *transparent*: at any
//! parallelism the result batches are byte-identical (same rows, same
//! order) and the merged [`ExecStats`] — including window work, sort
//! counts, and `partitions_executed` — are equal to the serial run. This
//! suite checks that for every repro workload and for randomly generated
//! window plans.

use dc_bench::harness::setup_with_parallelism;
use dc_core::Strategy;
use dc_relational::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const PARALLELISMS: [usize; 3] = [1, 2, 8];

fn rows_of(b: &Batch) -> Vec<Vec<Value>> {
    (0..b.num_rows()).map(|i| b.row(i)).collect()
}

/// Every repro workload (q1/q2/q2' × every strategy) produces byte-identical
/// batches and identical stats at parallelism 1, 2, and 8.
#[test]
fn repro_workloads_equivalent_across_parallelism() {
    // The same (scale, anomaly, seed) generates the same database, so the
    // three environments differ only in parallelism.
    let envs: Vec<_> = PARALLELISMS
        .iter()
        .map(|&p| setup_with_parallelism(3, 10.0, 7, p))
        .collect();
    let ds = &envs[0].dataset;
    let workloads = [
        ("q1@10%", ds.q1(ds.rtime_quantile(0.10))),
        ("q2@10%", ds.q2(ds.rtime_quantile(0.90), 2)),
        ("q2'@10%", ds.q2_prime(ds.rtime_quantile(0.90), 3)),
    ];
    let strategies = [
        Strategy::Auto,
        Strategy::Expanded,
        Strategy::JoinBack,
        Strategy::Naive,
    ];
    for (name, sql) in &workloads {
        for n_rules in [1, 3] {
            let app = format!("rules-{n_rules}");
            for strategy in strategies {
                let mut outcomes = Vec::new();
                for (env, &p) in envs.iter().zip(&PARALLELISMS) {
                    match env.system.query_with_strategy(&app, sql, strategy) {
                        Ok((batch, report)) => {
                            assert_eq!(report.parallelism, p, "{name} {app} {strategy:?}");
                            // The timing-free view of the operator metrics
                            // tree is part of the deterministic contract too.
                            let metrics = report.metrics.as_ref().map(|m| m.deterministic());
                            assert!(
                                metrics.is_some(),
                                "{name} {app} {strategy:?}: no metrics at P={p}"
                            );
                            outcomes.push(Some((rows_of(&batch), report.stats, metrics)));
                        }
                        Err(_) => outcomes.push(None),
                    }
                }
                // Feasibility, results, and stats must not depend on P.
                let (first, rest) = outcomes.split_first().unwrap();
                for (got, &p) in rest.iter().zip(&PARALLELISMS[1..]) {
                    assert_eq!(
                        got.is_some(),
                        first.is_some(),
                        "{name} {app} {strategy:?}: feasibility differs at P={p}"
                    );
                    if let (Some((rows, stats, metrics)), Some((rows1, stats1, metrics1))) =
                        (got, first)
                    {
                        assert_eq!(rows, rows1, "{name} {app} {strategy:?}: rows at P={p}");
                        assert_eq!(stats, stats1, "{name} {app} {strategy:?}: stats at P={p}");
                        assert_eq!(
                            metrics, metrics1,
                            "{name} {app} {strategy:?}: per-operator metrics at P={p}"
                        );
                    }
                }
            }
        }
        // The dirty baseline too (its window-free path must also be stable).
        let dirty: Vec<_> = envs
            .iter()
            .map(|env| {
                let (b, r) = env.system.query_dirty_with_report(sql).unwrap();
                let metrics = r.metrics.as_ref().map(|m| m.deterministic());
                (rows_of(&b), r.stats, metrics)
            })
            .collect();
        assert!(dirty.windows(2).all(|w| w[0] == w[1]), "{name} dirty");
    }
}

/// Eager materialization (Φ over the whole reads table) is also identical
/// across parallelism.
#[test]
fn materialization_equivalent_across_parallelism() {
    let mut results = Vec::new();
    for &p in &PARALLELISMS {
        let env = setup_with_parallelism(2, 20.0, 11, p);
        let rows = env
            .system
            .materialize_cleansed("rules-3", "caser_clean")
            .unwrap();
        let batch = env
            .system
            .query_dirty("select epc, rtime, biz_loc from caser_clean")
            .unwrap();
        results.push((rows, rows_of(&batch)));
    }
    assert!(results.windows(2).all(|w| w[0] == w[1]));
}

// ---------------------------------------------------------------------------
// Property test: random window plans.
// ---------------------------------------------------------------------------

const CASES: u64 = 48;

/// Run `property` for `CASES` deterministic seeds, reporting the failing
/// seed on panic (mirrors tests/proptest_invariants.rs).
fn check(name: &str, mut property: impl FnMut(&mut StdRng)) {
    for case in 0..CASES {
        let seed = 0xDCA7_0000 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(e) = result {
            eprintln!("property '{name}' failed at case {case} (seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

fn random_catalog(rng: &mut StdRng) -> Catalog {
    let schema = schema_ref(Schema::new(vec![
        Field::new("epc", DataType::Str),
        Field::new("rtime", DataType::Int),
        Field::new("biz_loc", DataType::Str),
        Field::new("weight", DataType::Double),
    ]));
    let n = rng.gen_range(1..=60usize);
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|_| {
            vec![
                Value::str(format!("e{}", rng.gen_range(0..5u32))),
                Value::Int(rng.gen_range(0..500i64)),
                Value::str(format!("loc{}", rng.gen_range(0..3u32))),
                if rng.gen_bool(0.1) {
                    Value::Null
                } else {
                    Value::Double(rng.gen_range(0..1000i64) as f64 / 10.0)
                },
            ]
        })
        .collect();
    let b = Batch::from_rows(schema, &rows).unwrap();
    let mut t = Table::new("r", b);
    if rng.gen_bool(0.5) {
        t.create_index("rtime").unwrap();
    }
    let cat = Catalog::new();
    cat.register(t);
    cat
}

fn random_frame(rng: &mut StdRng) -> Frame {
    let bound = |rng: &mut StdRng, start: bool| match rng.gen_range(0..4u32) {
        0 => {
            if start {
                FrameBound::UnboundedPreceding
            } else {
                FrameBound::UnboundedFollowing
            }
        }
        1 => FrameBound::Preceding(rng.gen_range(0..20i64)),
        2 => FrameBound::CurrentRow,
        _ => FrameBound::Following(rng.gen_range(0..20i64)),
    };
    // Retry until the frame is well-formed (start not after end).
    loop {
        let (s, e) = (bound(rng, true), bound(rng, false));
        let order = |b: &FrameBound| match b {
            FrameBound::UnboundedPreceding => (0, 0),
            FrameBound::Preceding(n) => (1, -n),
            FrameBound::CurrentRow => (2, 0),
            FrameBound::Following(n) => (3, *n),
            FrameBound::UnboundedFollowing => (4, 0),
        };
        if order(&s) <= order(&e) {
            return if rng.gen_bool(0.5) {
                Frame::rows(s, e)
            } else {
                Frame::range(s, e)
            };
        }
    }
}

fn random_window_plan(rng: &mut StdRng) -> LogicalPlan {
    let input = if rng.gen_bool(0.5) {
        LogicalPlan::scan("r").filter(Expr::col("rtime").lt(Expr::lit(rng.gen_range(50..500i64))))
    } else {
        LogicalPlan::scan("r")
    };
    let partition_by = if rng.gen_bool(0.3) {
        vec![Expr::col("epc"), Expr::col("biz_loc")]
    } else {
        vec![Expr::col("epc")]
    };
    let n_exprs = rng.gen_range(1..=3usize);
    let exprs: Vec<WindowExpr> = (0..n_exprs)
        .map(|i| {
            let (func, arg) = match rng.gen_range(0..6u32) {
                0 => (WindowFuncKind::Count, None),
                1 => (WindowFuncKind::Count, Some(Expr::col("weight"))),
                2 => (WindowFuncKind::Sum, Some(Expr::col("rtime"))),
                3 => (WindowFuncKind::Max, Some(Expr::col("biz_loc"))),
                4 => (WindowFuncKind::Min, Some(Expr::col("rtime"))),
                _ => (WindowFuncKind::Avg, Some(Expr::col("weight"))),
            };
            WindowExpr {
                func,
                arg,
                frame: random_frame(rng),
                alias: format!("w{i}"),
            }
        })
        .collect();
    LogicalPlan::Window {
        input: Box::new(input),
        partition_by,
        order_by: vec![SortKey::asc(Expr::col("rtime"))],
        exprs,
        presorted: false,
    }
}

/// Random window plans produce byte-identical batches and identical stats
/// at parallelism 1, 2, and 8.
#[test]
fn random_plans_equivalent_across_parallelism() {
    check("parallel window equivalence", |rng| {
        let cat = random_catalog(rng);
        let plan = random_window_plan(rng);
        let mut baseline: Option<(Vec<Vec<Value>>, ExecStats, Option<DeterministicMetrics>)> = None;
        for &p in &PARALLELISMS {
            let mut ex = Executor::with_options(&cat, ExecOptions::with_parallelism(p));
            let batch = ex.execute(&plan).unwrap();
            let metrics = ex.metrics.as_ref().map(|m| m.deterministic());
            match &baseline {
                None => baseline = Some((rows_of(&batch), ex.stats, metrics)),
                Some((rows, stats, metrics1)) => {
                    assert_eq!(&rows_of(&batch), rows, "rows differ at P={p}");
                    assert_eq!(&ex.stats, stats, "stats differ at P={p}");
                    assert_eq!(&metrics, metrics1, "operator metrics differ at P={p}");
                }
            }
        }
    });
}
